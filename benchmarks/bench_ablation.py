"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Split exponent LUT vs a monolithic table (size/error trade-off).
2. The minQ-skip heuristic on/off (candidate counts on low-similarity
   queries).
3. Dynamic post-scoring threshold vs a static top-k (adaptivity to the
   score distribution, Section IV-D's argument).
4. Single-cycle comparator tree vs a log-d comparison (throughput impact,
   Section V-A).
"""

import numpy as np

from repro.core.candidate_search import greedy_candidate_search
from repro.core.post_scoring import post_scoring_select, static_top_k_select
from repro.fixedpoint.exp_lut import ExpLUT
from repro.fixedpoint.widths import PipelineWidths
from repro.hardware.config import HardwareConfig
from repro.hardware.modules import scan_cycles


def test_ablation_split_lut_vs_monolithic(run_once):
    """The split LUT pays a tiny accuracy cost for a >1000x table-size
    reduction (the paper's 65,536 -> 2x256 argument)."""

    def study():
        widths = PipelineWidths.derive(i=4, f=4, n=320, d=64)
        lut = ExpLUT(widths.shifted_dot, widths.score)
        xs = -np.linspace(0.0, 12.0, 4000)
        split_error = float(np.max(np.abs(lut(xs) - np.exp(xs))))
        # A monolithic table quantizes the input once and looks up the
        # exact exponent: its only error is output rounding.
        mono_in = np.asarray(widths.shifted_dot.quantize(xs))
        mono = np.asarray(widths.score.quantize(np.exp(mono_in)))
        mono_error = float(np.max(np.abs(mono - np.exp(xs))))
        return {
            "split_entries": lut.num_entries,
            "mono_entries": lut.monolithic_entries,
            "split_error": split_error,
            "mono_error": mono_error,
        }

    result = run_once(study)
    print()
    print(
        f"split LUT: {result['split_entries']} entries, "
        f"max err {result['split_error']:.5f}; monolithic: "
        f"{result['mono_entries']} entries, max err {result['mono_error']:.5f}"
    )
    assert result["mono_entries"] / result["split_entries"] > 1000
    assert result["split_error"] < 4 * result["mono_error"] + 0.01


def test_ablation_minq_skip_heuristic(run_once):
    """On low-similarity queries (mostly negative products) the heuristic
    must rescue candidates that the plain min stream would cancel out."""

    def study():
        rng = np.random.default_rng(1)
        with_h = without_h = 0
        queries = 50
        for _ in range(queries):
            # Mostly-dissimilar memory: products skew negative.
            key = rng.normal(loc=-0.4, scale=0.6, size=(64, 16))
            query = np.abs(rng.normal(size=16))
            on = greedy_candidate_search(key, query, m=32, min_skip_heuristic=True)
            off = greedy_candidate_search(key, query, m=32, min_skip_heuristic=False)
            with_h += on.num_candidates
            without_h += off.num_candidates
        return with_h / queries, without_h / queries

    with_heuristic, without_heuristic = run_once(study)
    print()
    print(
        "mean candidates, low-similarity queries: "
        f"with heuristic {with_heuristic:.1f}, without {without_heuristic:.1f}"
    )
    assert with_heuristic >= without_heuristic


def test_ablation_dynamic_threshold_vs_static_topk(run_once):
    """Section IV-D: a dynamic threshold adapts to the score distribution;
    a static k over-selects on peaked distributions and under-selects on
    flat ones."""

    def study():
        rng = np.random.default_rng(2)
        t_percent = 5.0
        peaked_dynamic = flat_dynamic = 0.0
        trials = 200
        for _ in range(trials):
            # Peaked: one row dominates.
            peaked = rng.normal(size=40)
            peaked[rng.integers(40)] += 8.0
            peaked_dynamic += post_scoring_select(peaked, t_percent).num_kept
            # Flat: many near-tied rows.
            flat = rng.normal(scale=0.3, size=40)
            flat_dynamic += post_scoring_select(flat, t_percent).num_kept
        static_k = static_top_k_select(rng.normal(size=40), k=5).num_kept
        return peaked_dynamic / trials, flat_dynamic / trials, static_k

    peaked_kept, flat_kept, static_kept = run_once(study)
    print()
    print(
        f"dynamic T=5% keeps {peaked_kept:.1f} rows on peaked vs "
        f"{flat_kept:.1f} on flat distributions (static k always {static_kept})"
    )
    # The dynamic scheme keeps almost nothing when one row dominates and
    # nearly everything when scores are flat; a static k cannot do both.
    assert peaked_kept < static_kept < flat_kept


def test_ablation_comparator_tree_vs_sequential(run_once):
    """Section V-A: the d-way comparator tree sustains one iteration per
    cycle (O(M)); a log-d sequential comparison would cost O(M log d)."""

    def study():
        config = HardwareConfig()
        m, n, d = 160, 320, 64
        tree_cycles = config.refill_latency + m + scan_cycles(n, config.scan_width)
        log_d = int(np.ceil(np.log2(d)))
        sequential_cycles = (
            config.refill_latency + m * log_d + scan_cycles(n, config.scan_width)
        )
        return tree_cycles, sequential_cycles

    tree, sequential = run_once(study)
    print()
    print(f"candidate selection: comparator tree {tree} cycles vs "
          f"sequential log-d {sequential} cycles")
    assert sequential > 4 * tree


def test_ablation_fraction_bits_error_scaling(run_once):
    """Halving the LSB roughly halves the worst-case attention error."""

    def study():
        from repro.fixedpoint.fixed_attention import QuantizedAttention

        rng = np.random.default_rng(3)
        key = rng.normal(size=(64, 16))
        value = rng.normal(size=(64, 16))
        queries = rng.normal(size=(20, 16))
        errors = {}
        for f in (2, 4, 6, 8):
            qa = QuantizedAttention(i=4, f=f, n=64, d=16)
            errors[f] = float(
                np.mean([qa.attend(key, value, q).max_abs_error for q in queries])
            )
        return errors

    errors = run_once(study)
    print()
    print("mean |error| by fraction bits:", {k: round(v, 5) for k, v in errors.items()})
    assert errors[8] < errors[6] < errors[4] < errors[2]
