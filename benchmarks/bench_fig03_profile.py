"""Benchmark regenerating Figure 3: attention share of inference time."""

from repro.experiments import fig03_profile


def test_fig03_attention_time_share(run_once, cache, limit):
    result = run_once(lambda: fig03_profile.run(cache, limit=limit))
    print()
    print(result.format_table())
    # The paper's observation: attention dominates the query-response time
    # of the memory-network workloads (>70% there, >35% overall).
    for row in result.rows:
        assert row["attention % (query response)"] > 35.0
