"""Benchmark regenerating Figure 11: the candidate-selection sweep."""

from repro.experiments import fig11_candidate


def test_fig11_candidate_selection_sweep(run_once, cache, limit):
    result = run_once(lambda: fig11_candidate.run(cache, limit=limit))
    print()
    print(result.format_table())
    for workload in ("MemN2N", "KV-MemN2N", "BERT"):
        rows = [r for r in result.rows if r["workload"] == workload]
        baseline = rows[0]["metric"]
        # Shape check (panel a): the smallest M degrades the metric more
        # than the largest M does.
        drop_full = baseline - rows[1]["metric"]
        drop_eighth = baseline - rows[-1]["metric"]
        assert drop_eighth >= drop_full - 0.05
        # Shape check (panel b): fewer iterations select fewer candidates.
        assert rows[-1]["candidates/n"] <= rows[1]["candidates/n"] + 1e-9
