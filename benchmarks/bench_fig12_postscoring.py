"""Benchmark regenerating Figure 12: the post-scoring threshold sweep."""

from repro.experiments import fig12_postscoring


def test_fig12_postscoring_sweep(run_once, cache, limit):
    result = run_once(lambda: fig12_postscoring.run(cache, limit=limit))
    print()
    print(result.format_table())
    for workload in ("MemN2N", "KV-MemN2N", "BERT"):
        rows = [r for r in result.rows if r["workload"] == workload]
        kept = [r["kept/n"] for r in rows[1:]]
        # Panel b: higher T keeps monotonically fewer entries.
        assert kept == sorted(kept, reverse=True)
        # Panel a: moderate thresholds barely hurt the metric.
        baseline = rows[0]["metric"]
        t5 = next(r for r in rows if r["config"] == "T=5%")
        assert t5["metric"] >= baseline - 0.1
