"""Benchmark regenerating Figure 13: the combined approximation schemes."""

from repro.experiments import fig13_combined


def test_fig13_combined_schemes(run_once, cache, limit):
    result = run_once(lambda: fig13_combined.run(cache, limit=limit))
    print()
    print(result.format_table())
    for workload in ("MemN2N", "KV-MemN2N", "BERT"):
        rows = {r["config"]: r for r in result.rows if r["workload"] == workload}
        # Panel a shape: base >= conservative >= aggressive (noise margin).
        assert rows["conservative"]["metric"] >= rows["aggressive"]["metric"] - 0.05
        assert rows["base"]["metric"] >= rows["conservative"]["metric"] - 0.05
        # Panel b shape: aggressive misses more of the true top-k.
        assert (
            rows["aggressive"]["top-k retention"]
            <= rows["conservative"]["top-k retention"] + 0.05
        )
        assert rows["base"]["top-k retention"] == 1.0
