"""Benchmark regenerating Figure 14: throughput/latency across platforms."""

from repro.experiments import fig14_performance, paper_data


def test_fig14_throughput_latency(run_once, study):
    result = run_once(lambda: fig14_performance.run(study=study))
    print()
    print(result.format_table())
    for workload in paper_data.WORKLOADS:
        rows = {r["platform"]: r for r in result.rows if r["workload"] == workload}
        base = rows["Base A3"]
        cons = rows["Approx A3 (conservative)"]
        aggr = rows["Approx A3 (aggressive)"]
        # Panel a shape: approximation improves throughput, aggressive
        # more than conservative; A3 crushes the CPU on the memory
        # networks; the GPU beats a single A3 on BERT.
        assert aggr["throughput vs base A3"] > cons["throughput vs base A3"] > 1.0
        if workload != "BERT":
            assert base["throughput vs CPU"] > 30
        else:
            assert rows["GPU"]["throughput (ops/s)"] > base["throughput (ops/s)"]
        # Panel b shape: approximation reduces latency.
        assert aggr["latency vs base A3"] < cons["latency vs base A3"] < 1.0
        # Measured ratios land within ~2x of the paper's printed ratios.
        for row, label in ((cons, "conservative"), (aggr, "aggressive")):
            paper_ratio = paper_data.FIG14_THROUGHPUT_VS_BASE[label][workload]
            assert 0.4 < row["throughput vs base A3"] / paper_ratio < 2.5
