"""Benchmark regenerating Figure 15: energy efficiency and breakdown."""

import pytest

from repro.experiments import fig15_energy, paper_data


def test_fig15a_energy_efficiency(run_once, study):
    result = run_once(lambda: fig15_energy.run(study=study))
    print()
    print(result.format_table())
    for workload in paper_data.WORKLOADS:
        rows = {r["platform"]: r for r in result.rows if r["workload"] == workload}
        # Orders of magnitude over the CPU (the paper reports >10^4 on the
        # memory networks, >10^3 for BERT's batched case).
        assert rows["Base A3"]["vs CPU"] > 1e3
        assert (
            rows["Approx A3 (aggressive)"]["vs base A3"]
            > rows["Approx A3 (conservative)"]["vs base A3"]
            > 1.0
        )
        # Within ~3x of the paper's printed ratios.
        for label in ("conservative", "aggressive"):
            measured = rows[f"Approx A3 ({label})"]["vs base A3"]
            paper_ratio = paper_data.FIG15_EFFICIENCY_VS_BASE[label][workload]
            assert 0.3 < measured / paper_ratio < 3.0


def test_fig15b_energy_breakdown(run_once, study):
    result = run_once(lambda: fig15_energy.run_breakdown(study=study))
    print()
    print(result.format_table())
    for row in result.rows:
        groups = {k: v for k, v in row.items() if k not in ("workload", "config")}
        assert sum(groups.values()) == pytest.approx(1.0, abs=1e-6)
        if row["config"] == "base":
            # Output computation dominates base A3 (big registers).
            assert groups["Output Computation"] == max(groups.values())
        else:
            # Candidate selection dominates approximate A3.
            assert groups["Candidate Sel."] == max(groups.values())
