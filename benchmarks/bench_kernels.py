"""Microbenchmarks of the software attention kernels.

These time the library primitives themselves (not the paper experiments):
exact attention, key preprocessing, all three candidate-search engines,
the combined approximate path (single-query and batched), and the
fixed-point pipeline — at the paper's largest operating point
(n=320, d=64).

The batched benchmarks sweep batch sizes 1/16/64/320 across the
``reference`` (per-query loop), ``efficient`` (heap-and-pointer), and
``vectorized`` (whole-batch NumPy) engines; ``benchmarks/run_kernels.py``
replays the same grid without pytest and emits ``BENCH_kernels.json`` so
the performance trajectory is tracked across PRs.
"""

import numpy as np
import pytest

from repro.core.approximate import ENGINES, ApproximateAttention
from repro.core.attention import attention
from repro.core.batched_search import batched_candidate_search
from repro.core.candidate_search import greedy_candidate_search
from repro.core.config import aggressive, conservative
from repro.core.efficient_search import PreprocessedKey, efficient_candidate_search
from repro.fixedpoint.fixed_attention import QuantizedAttention

N, D = 320, 64
BATCH_SIZES = (1, 16, 64, 320)


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    key = rng.normal(size=(N, D))
    value = rng.normal(size=(N, D))
    query = rng.normal(size=D)
    return key, value, query


@pytest.fixture(scope="module")
def batch_queries():
    rng = np.random.default_rng(1)
    return rng.normal(size=(max(BATCH_SIZES), D))


def test_exact_attention(benchmark, inputs):
    key, value, query = inputs
    out = benchmark(attention, key, value, query)
    assert out.shape == (D,)


def test_preprocess_key(benchmark, inputs):
    key, _, _ = inputs
    pre = benchmark(PreprocessedKey.build, key)
    assert pre.n == N


def test_candidate_search_reference_engine(benchmark, inputs):
    key, _, query = inputs
    result = benchmark(greedy_candidate_search, key, query, N // 2)
    assert result.num_candidates >= 1


def test_candidate_search_efficient_engine(benchmark, inputs):
    key, _, query = inputs
    pre = PreprocessedKey.build(key)
    result = benchmark(efficient_candidate_search, pre, query, N // 2)
    assert result.num_candidates >= 1


def test_approximate_attention_conservative(benchmark, inputs):
    key, value, query = inputs
    approx = ApproximateAttention(conservative())
    approx.preprocess(key)
    out, trace = benchmark(approx.attend, value, query)
    assert trace.num_candidates <= N


def test_approximate_attention_aggressive(benchmark, inputs):
    key, value, query = inputs
    approx = ApproximateAttention(aggressive())
    approx.preprocess(key)
    out, trace = benchmark(approx.attend, value, query)
    assert trace.num_kept <= trace.num_candidates


def test_quantized_attention(benchmark, inputs):
    key, value, query = inputs
    qa = QuantizedAttention(i=4, f=4, n=N, d=D)
    result = benchmark(qa.attend, key, value, query)
    assert result.output.shape == (D,)


def test_batched_candidate_search(benchmark, inputs, batch_queries):
    key, _, _ = inputs
    pre = PreprocessedKey.build(key)
    result = benchmark(batched_candidate_search, pre, batch_queries[:64], N // 2)
    assert result.batch == 64


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_attend_many_conservative(benchmark, inputs, batch_queries, engine, batch):
    """The multi-query hot path: one preprocessed key, many queries.

    The acceptance comparison is vectorized vs reference at each batch
    size; the preprocessing is outside the timed region (amortized, as
    in the BERT usage pattern).
    """
    key, value, _ = inputs
    approx = ApproximateAttention(conservative(), engine=engine)
    approx.preprocess(key)
    queries = batch_queries[:batch]
    outputs, traces = benchmark(approx.attend_many, value, queries)
    assert outputs.shape == (batch, D)
    assert len(traces) == batch


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_attend_many_aggressive(benchmark, inputs, batch_queries, engine, batch):
    key, value, _ = inputs
    approx = ApproximateAttention(aggressive(), engine=engine)
    approx.preprocess(key)
    queries = batch_queries[:batch]
    outputs, traces = benchmark(approx.attend_many, value, queries)
    assert outputs.shape == (batch, D)
    assert len(traces) == batch
