"""Microbenchmarks of the software attention kernels.

These time the library primitives themselves (not the paper experiments):
exact attention, key preprocessing, both candidate-search engines, the
combined approximate path, and the fixed-point pipeline — at the paper's
largest operating point (n=320, d=64).
"""

import numpy as np
import pytest

from repro.core.approximate import ApproximateAttention
from repro.core.attention import attention
from repro.core.candidate_search import greedy_candidate_search
from repro.core.config import aggressive, conservative
from repro.core.efficient_search import PreprocessedKey, efficient_candidate_search
from repro.fixedpoint.fixed_attention import QuantizedAttention

N, D = 320, 64


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    key = rng.normal(size=(N, D))
    value = rng.normal(size=(N, D))
    query = rng.normal(size=D)
    return key, value, query


def test_exact_attention(benchmark, inputs):
    key, value, query = inputs
    out = benchmark(attention, key, value, query)
    assert out.shape == (D,)


def test_preprocess_key(benchmark, inputs):
    key, _, _ = inputs
    pre = benchmark(PreprocessedKey.build, key)
    assert pre.n == N


def test_candidate_search_reference_engine(benchmark, inputs):
    key, _, query = inputs
    result = benchmark(greedy_candidate_search, key, query, N // 2)
    assert result.num_candidates >= 1


def test_candidate_search_efficient_engine(benchmark, inputs):
    key, _, query = inputs
    pre = PreprocessedKey.build(key)
    result = benchmark(efficient_candidate_search, pre, query, N // 2)
    assert result.num_candidates >= 1


def test_approximate_attention_conservative(benchmark, inputs):
    key, value, query = inputs
    approx = ApproximateAttention(conservative())
    approx.preprocess(key)
    out, trace = benchmark(approx.attend, value, query)
    assert trace.num_candidates <= N


def test_approximate_attention_aggressive(benchmark, inputs):
    key, value, query = inputs
    approx = ApproximateAttention(aggressive())
    approx.preprocess(key)
    out, trace = benchmark(approx.attend, value, query)
    assert trace.num_kept <= trace.num_candidates


def test_quantized_attention(benchmark, inputs):
    key, value, query = inputs
    qa = QuantizedAttention(i=4, f=4, n=N, d=D)
    result = benchmark(qa.attend, key, value, query)
    assert result.output.shape == (D,)
