"""Benchmark regenerating the Section VI-B quantization study."""

from repro.experiments import quantization


def test_quantization_impact(run_once, cache, limit):
    result = run_once(
        lambda: quantization.run(cache, limit=limit, f_sweep=(2, 3, 4, 6))
    )
    print()
    print(result.format_table())
    for workload in ("MemN2N", "KV-MemN2N", "BERT"):
        rows = {r["config"]: r for r in result.rows if r["workload"] == workload}
        # The paper's claim: f=4 costs almost nothing.  Synthetic
        # substrates add noise, so bound loosely but meaningfully.
        assert rows["i=4, f=4"]["degradation"] < 0.1
        # f=6 is at least as good as f=2 (more precision never hurts
        # beyond noise).
        assert rows["i=4, f=6"]["degradation"] <= rows["i=4, f=2"]["degradation"] + 0.05
