"""Scale-out benchmarks for the Section III-C mechanisms.

* Multi-unit scaling on BERT's batched self-attention — reproduces the
  claim that a handful of approximate (conservative) A3 units match the
  Titan V (Section VI-C says 6-7).
* DRAM spill for n beyond the SRAM capacity — quantifies the sequential
  prefetcher's ability to extend n (Section III-C's "Choice of n and d").
"""

from repro.hardware.baselines import GpuModel
from repro.hardware.config import HardwareConfig
from repro.hardware.dram import DramConfig, DramSpillModel
from repro.hardware.multi_unit import MultiUnitA3, MultiUnitConfig
from repro.hardware.pipeline import ApproxA3Pipeline, QueryShape


def test_multi_unit_matches_gpu_on_bert(run_once):
    def study():
        n = 320
        shape = QueryShape(n=n, m=n // 2, candidates=int(0.4 * n), kept=16)
        pipeline = ApproxA3Pipeline(HardwareConfig())
        scaler = MultiUnitA3(pipeline, MultiUnitConfig())
        gpu_qps = n / GpuModel().attention_time_s(n, 64, batch=n)
        rows = []
        for units in (1, 2, 4, 8, 16):
            result = MultiUnitA3(
                pipeline, MultiUnitConfig(units=units)
            ).run([shape] * 256)
            rows.append((units, result.throughput_qps()))
        needed = scaler.units_to_match(gpu_qps, shape)
        return rows, gpu_qps, needed

    rows, gpu_qps, needed = run_once(study)
    print()
    print(f"Titan V batched self-attention: {gpu_qps:.3e} ops/s")
    for units, qps in rows:
        print(f"  {units:2d} conservative A3 units: {qps:.3e} ops/s "
              f"({qps / gpu_qps:.2f}x GPU)")
    print(f"  units needed to match the GPU: {needed} (paper: 6-7)")
    assert needed is not None and 2 <= needed <= 10
    # Near-linear scaling across the sweep.
    assert rows[-1][1] / rows[0][1] > 12


def test_dram_spill_extends_n(run_once):
    def study():
        model = DramSpillModel()
        hbm = DramSpillModel(dram=DramConfig(bandwidth_bytes_per_s=512e9))
        rows = []
        for n in (320, 640, 1280, 2560):
            ddr = model.query_timing(n)
            fat = hbm.query_timing(n)
            rows.append((n, ddr.effective_interval_cycles, ddr.slowdown,
                         fat.effective_interval_cycles, fat.slowdown))
        return rows

    rows = run_once(study)
    print()
    print(f"{'n':>6} {'DDR4 cyc':>9} {'slowdown':>9} {'HBM cyc':>8} {'slowdown':>9}")
    for n, ddr_cycles, ddr_slow, hbm_cycles, hbm_slow in rows:
        print(f"{n:>6} {ddr_cycles:>9} {ddr_slow:>8.2f}x "
              f"{hbm_cycles:>8} {hbm_slow:>8.2f}x")
    # SRAM-resident n is free; a single DDR4 channel pays a growing
    # bandwidth penalty; HBM-class bandwidth streams stall-free.
    assert rows[0][2] == 1.0
    assert rows[-1][2] > rows[1][2] > 1.0
    assert all(slow == 1.0 for *_, slow in [(r[0], r[4]) for r in rows])
