"""Load generator and smoke tests for the dynamic-batching server.

:func:`run_load` drives a running :class:`repro.serve.AttentionServer`
— or a :class:`repro.serve.ShardedAttentionServer`; both expose the
same ``attend`` front door — with ``concurrency`` closed-loop client
threads (each fires its next request the moment the previous response
lands — the standard way to hold N queries in flight), and
:func:`serial_dispatch` measures the per-request serial baseline the
batcher is judged against: the same prepared backend, one ``attend``
per arriving query, no grouping.  :func:`make_cluster` builds the
sharded server at the benchmark's standard per-shard operating point
for the shards × in-flight sweep.

``benchmarks/run_serve.py`` wraps these in a standalone runner that
emits ``BENCH_serve.json``; the pytest tests here are a fast smoke pass
asserting the machinery works (served responses complete, batches
actually form, shards split the traffic) without pinning wall-clock
numbers that would flake on shared CI runners.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.backends import ApproximateBackend
from repro.core.config import conservative
from repro.serve import (
    AdaptiveQualityController,
    AttentionServer,
    BatchPolicy,
    ClusterConfig,
    KeyCacheManager,
    QualityPolicy,
    ServerConfig,
    ShardedAttentionServer,
)

__all__ = [
    "LoadReport",
    "run_load",
    "serial_dispatch",
    "streaming_dispatch",
    "adaptive_overload_dispatch",
    "failover_dispatch",
    "many_tenant_dispatch",
    "spill_dispatch",
    "make_server",
    "make_cluster",
]


@dataclass
class LoadReport:
    """Outcome of one closed-loop load run against a server."""

    total_requests: int
    concurrency: int
    wall_seconds: float
    errors: int
    snapshot: dict = field(repr=False)

    @property
    def throughput_qps(self) -> float:
        return self.total_requests / self.wall_seconds if self.wall_seconds else 0.0


def make_server(
    max_batch: int = 64,
    max_wait: float = 0.005,
    workers: int = 1,
    engine: str = "vectorized",
    max_queue_depth: int = 4096,
    default_tier: str = "conservative",
    trace_sample_rate: float = 0.0,
    cross_session_fusion: bool = True,
) -> AttentionServer:
    """A server at the benchmark's standard operating point."""
    return AttentionServer(
        ServerConfig(
            batch=BatchPolicy(
                max_batch_size=max_batch,
                max_wait_seconds=max_wait,
                max_queue_depth=max_queue_depth,
                overload="block",
                submit_timeout_seconds=60.0,
            ),
            num_workers=workers,
            engine=engine,
            default_tier=default_tier,
            trace_sample_rate=trace_sample_rate,
            cross_session_fusion=cross_session_fusion,
        )
    )


def make_cluster(
    shards: int,
    max_batch: int = 64,
    max_wait: float = 0.005,
    workers_per_shard: int = 1,
    spawn: bool = False,
    max_queue_depth: int = 4096,
) -> ShardedAttentionServer:
    """A sharded server whose replicas run the standard operating point.

    Each shard gets its own cache/batcher/scheduler stack (the PR 2
    single-server configuration); aggregate scaling comes from replica
    parallelism — real cores with ``spawn=True``, GIL-shared threads
    otherwise.
    """
    return ShardedAttentionServer(
        ClusterConfig(
            num_shards=shards,
            spawn=spawn,
            shard=ServerConfig(
                batch=BatchPolicy(
                    max_batch_size=max_batch,
                    max_wait_seconds=max_wait,
                    max_queue_depth=max_queue_depth,
                    overload="block",
                    submit_timeout_seconds=60.0,
                ),
                num_workers=workers_per_shard,
                engine="vectorized",
            ),
        )
    )


def run_load(
    server: AttentionServer | ShardedAttentionServer,
    session_ids: list[str],
    queries: np.ndarray,
    concurrency: int,
    timeout: float = 120.0,
    tier: str | None = None,
) -> LoadReport:
    """Fire ``queries`` from ``concurrency`` closed-loop client threads.

    Client ``c`` owns queries ``c, c + concurrency, ...`` and walks the
    sessions round-robin, blocking on each response before sending its
    next request — so exactly ``concurrency`` requests are in flight
    whenever every client has work left.  Returns wall time measured
    from a start barrier to the last join.  ``tier`` pins every request
    to one quality tier; ``None`` submits best-effort traffic that
    follows the server's live default.
    """
    total = queries.shape[0]
    concurrency = max(1, min(concurrency, total))
    errors = [0] * concurrency
    barrier = threading.Barrier(concurrency + 1)

    def client(c: int) -> None:
        barrier.wait()
        for i in range(c, total, concurrency):
            session_id = session_ids[i % len(session_ids)]
            try:
                server.attend(session_id, queries[i], timeout=timeout, tier=tier)
            except Exception:
                errors[c] += 1

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True)
        for c in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return LoadReport(
        total_requests=total,
        concurrency=concurrency,
        wall_seconds=wall,
        errors=sum(errors),
        snapshot=server.snapshot(),
    )


def serial_dispatch(
    key: np.ndarray,
    value: np.ndarray,
    queries: np.ndarray,
    engine: str = "reference",
) -> float:
    """Per-request serial baseline: one prepared backend, one ``attend``
    per query, in arrival order.  Returns wall seconds."""
    backend = ApproximateBackend(conservative(), engine=engine)
    backend.prepare(key)
    started = time.perf_counter()
    for query in queries:
        backend.attend(key, value, query)
    return time.perf_counter() - started


def streaming_dispatch(
    key: np.ndarray,
    value: np.ndarray,
    append_blocks: list[tuple[np.ndarray, np.ndarray]],
    block_queries: np.ndarray,
    *,
    incremental: bool,
    max_batch: int = 64,
    max_wait: float = 0.005,
) -> tuple[float, np.ndarray]:
    """One append-heavy streaming epoch against a running server.

    Registers a session at ``key.shape[0]`` rows, then alternates
    appending one ``(key_rows, value_rows)`` block with a burst of
    queries — the chat-style access pattern where memory grows over a
    session's lifetime.  ``incremental=True`` routes appends through
    :meth:`AttentionServer.mutator` (binary-search splice, the prepared
    cache entry survives in place); ``False`` re-registers the grown
    memory each block, forcing the cold full re-prepare that was the
    only option before mutable sessions.  Returns ``(wall_seconds,
    outputs)`` where the wall clock covers the streaming loop only and
    ``outputs`` stacks every block's responses — the two modes must
    produce bit-identical outputs (incremental prepare is exact), which
    the smoke test below asserts.
    """
    server = make_server(max_batch=max_batch, max_wait=max_wait, workers=1)
    session = "stream"
    server.register_session(session, key, value)
    grown_key, grown_value = key, value
    outputs = []
    with server:
        # Warm the prepared entry so both modes start from a hot cache.
        server.attend(session, np.zeros(key.shape[1]))
        mutator = server.mutator(session)
        started = time.perf_counter()
        for (key_rows, value_rows), queries in zip(
            append_blocks, block_queries
        ):
            if incremental:
                mutator.append_rows(key_rows, value_rows)
            else:
                grown_key = np.concatenate([grown_key, key_rows])
                grown_value = np.concatenate([grown_value, value_rows])
                server.register_session(session, grown_key, grown_value)
            outputs.append(server.attend_many(session, queries))
        wall = time.perf_counter() - started
    return wall, np.concatenate(outputs)


def adaptive_overload_dispatch(
    key: np.ndarray,
    value: np.ndarray,
    queries: np.ndarray,
    concurrency: int,
    slo_p95_seconds: float | None = None,
    max_batch: int = 64,
    max_wait: float = 0.005,
    interval_seconds: float = 0.02,
) -> tuple[LoadReport, dict | None]:
    """One overload epoch at the default (conservative) tier — with or
    without SLO-driven quality degradation.

    ``concurrency`` closed-loop clients submit *best-effort* requests
    (no tier pinned).  With ``slo_p95_seconds=None`` the server just
    eats the overload at conservative quality — the uncontrolled
    baseline.  With an SLO, an
    :class:`repro.serve.AdaptiveQualityController` samples a tight
    window and degrades the default tier to ``aggressive`` while the
    windowed p95 exceeds the SLO, so the same load is served with a
    lower p95 and **zero rejections** (the queue is deep and admission
    blocks): quality is shed, availability is not.  The ladder starts
    at conservative because that is where the *software* latency dial
    lives — the exact tier rides one BLAS GEMM and is the fastest
    wall-clock path in this reproduction (approximation saves work on
    the paper's accelerator, not against an optimized GEMM; the
    hardware model is where exact attention is priced).  Returns
    ``(report, controller_info)`` where ``controller_info`` carries the
    transition count and the downgrade counters (``None`` for the
    uncontrolled run).
    """
    server = make_server(
        max_batch=max_batch,
        max_wait=max_wait,
        workers=1,
        default_tier="conservative",
    )
    session = "adaptive"
    server.register_session(session, key, value)
    with server:
        # Warm the prepared entry so neither mode pays the cold sort.
        server.attend(session, np.zeros(key.shape[1]))
        if slo_p95_seconds is None:
            report = run_load(server, [session], queries, concurrency)
            return report, None
        controller = AdaptiveQualityController(
            server,
            QualityPolicy(
                slo_p95_seconds=slo_p95_seconds,
                interval_seconds=interval_seconds,
                queue_depth_high=max(8, concurrency // 2),
                overload_ticks=2,
                recovery_ticks=8,
            ),
        )
        with controller:
            report = run_load(server, [session], queries, concurrency)
        info = {
            "transitions": len(controller.transitions),
            "downgrades": report.snapshot["quality"]["tier_downgrades"],
            "downgraded_requests": report.snapshot["quality"][
                "downgraded_requests"
            ],
            "tier_completed": {
                tier: cell["completed"]
                for tier, cell in report.snapshot["tiers"].items()
            },
        }
    return report, info


def many_tenant_dispatch(
    keys: list[np.ndarray],
    values: list[np.ndarray],
    queries: np.ndarray,
    concurrency: int,
    *,
    fused: bool,
    max_batch: int = 64,
    max_wait: float = 0.005,
    workers: int = 2,
) -> LoadReport:
    """One many-tenant closed-loop epoch, fused or per-session.

    Registers ``len(keys)`` sessions and drives the usual round-robin
    closed loop across all of them — the pathological shape for
    per-session grouping: with N sessions sharing the in-flight budget,
    each session's group holds only ``concurrency / N`` requests, so
    dispatches degenerate toward batch one.  With ``concurrency`` equal
    to the session count, :func:`run_load` pins client ``c`` to session
    ``c`` — the realistic arrival shape where every tenant has exactly
    one request in flight and per-session grouping degenerates to
    batch one exactly.  ``fused=True`` lets equal-tier traffic from all
    sessions fuse into ragged multi-key dispatches
    (:func:`repro.core.backends.attend_many_ragged`); ``fused=False``
    pins the historical per-session grouping on an otherwise identical
    server, giving the paired baseline.
    """
    server = make_server(
        max_batch=max_batch,
        max_wait=max_wait,
        workers=workers,
        cross_session_fusion=fused,
    )
    session_ids = []
    for i, (key, value) in enumerate(zip(keys, values)):
        session_id = f"tenant-{i}"
        server.register_session(session_id, key, value)
        session_ids.append(session_id)
    with server:
        # Warm every prepared entry so neither mode pays cold sorts,
        # then reset the stats so the snapshot (fused-segment histogram
        # included) describes only the measured epoch.
        for session_id in session_ids:
            server.attend(session_id, np.zeros(keys[0].shape[1]))
        server.stats.reset()
        report = run_load(server, session_ids, queries, concurrency)
    if report.errors:
        raise RuntimeError(f"{report.errors} many-tenant serving errors")
    return report


def spill_dispatch(
    *,
    sessions: int,
    n: int,
    d: int,
    passes: int,
    two_tier: bool,
    queries_per_checkout: int = 1,
    seed: int = 0,
) -> dict:
    """Cold-tenant churn against the prepared-key cache itself.

    RAM holds two of ``sessions`` prepared entries, so a round-robin
    sweep over the tenants misses on every checkout — the many-tenants,
    small-RAM regime.  ``two_tier=True`` gives the cache a disk tier
    sized for everyone: evictions spill the prepared artifact and each
    miss promotes it back by mmap.  ``two_tier=False`` is the
    pre-spill behavior: evict means drop, and each miss pays the full
    column re-sort.  Only the ``checkout``/``release`` pair is timed
    (the attention math is identical in both modes and would dilute
    the cache signal); a warm sweep seeds the tiers first, so the
    measured passes compare promote-by-mmap against re-prepare on
    every single checkout.  Returns wall/percentile/counter stats.
    """
    rng = np.random.default_rng(seed)
    factory = lambda: ApproximateBackend(  # noqa: E731
        conservative(), engine="vectorized"
    )
    entry_nbytes = 3 * n * d * 8
    with tempfile.TemporaryDirectory(prefix="repro-spill-bench-") as tmp:
        manager = KeyCacheManager(
            factory,
            capacity_bytes=2 * entry_nbytes + 1,
            disk_capacity_bytes=(
                2 * sessions * entry_nbytes if two_tier else None
            ),
            spill_dir=tmp,
        )
        registered = {}
        for i in range(sessions):
            sid = f"tenant-{i}"
            registered[sid] = manager.register(
                sid, rng.normal(size=(n, d)), rng.normal(size=(n, d))
            )
        queries = rng.normal(size=(queries_per_checkout, d))
        latencies: list[float] = []

        def sweep(timed: bool) -> None:
            for sid, session in registered.items():
                started = time.perf_counter()
                entry = manager.checkout(sid)
                manager.release(entry)
                if timed:
                    latencies.append(time.perf_counter() - started)
                # Untimed sanity traffic: the promoted artifact must
                # actually serve attention, not just map.
                entry = manager.checkout(sid)
                try:
                    entry.backend.attend_many(
                        session.key, session.value, queries
                    )
                finally:
                    manager.release(entry)

        sweep(timed=False)  # seed both tiers with the unavoidable sorts
        for _ in range(passes):
            sweep(timed=True)
        # The wall is the sum of the miss-path checkouts alone; the
        # interleaved sanity attends cost the same in both modes and
        # would only dilute the cache signal.
        wall = float(sum(latencies))
        stats = manager.stats
        requests = max(1, stats.hits + stats.misses)
        result = {
            "two_tier": two_tier,
            "wall_seconds": wall,
            "timed_checkouts": len(latencies),
            "p50_checkout_seconds": float(np.percentile(latencies, 50)),
            "p95_checkout_seconds": float(np.percentile(latencies, 95)),
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hits / requests,
            "spills": stats.spills,
            "promotes": stats.promotes,
            "spill_reaps": stats.spill_reaps,
        }
        for sid in list(registered):
            manager.close(sid)
    return result


def _timed_load(
    server,
    session_ids: list[str],
    queries: np.ndarray,
    concurrency: int,
    on_complete=None,
    timeout: float = 120.0,
) -> tuple[list[float], int]:
    """Closed-loop load with *client-side* per-request latencies.

    Unlike :func:`run_load` (which reads the server's own reservoirs),
    each client times its ``attend`` round trip — so a request that
    rode a failover retry is charged its full stall, which is exactly
    the cost the failover benchmark wants to see.  ``on_complete`` is
    called with the running completed count from client threads (the
    kill trigger).  Returns ``(latencies_seconds, errors)``.
    """
    total = queries.shape[0]
    concurrency = max(1, min(concurrency, total))
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    count = [0]
    count_lock = threading.Lock()
    barrier = threading.Barrier(concurrency)

    def client(c: int) -> None:
        barrier.wait()
        for i in range(c, total, concurrency):
            session_id = session_ids[i % len(session_ids)]
            started = time.perf_counter()
            try:
                server.attend(session_id, queries[i], timeout=timeout)
            except Exception:
                errors[c] += 1
            else:
                latencies[c].append(time.perf_counter() - started)
            if on_complete is not None:
                with count_lock:
                    count[0] += 1
                    done = count[0]
                on_complete(done)

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True)
        for c in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [s for per_client in latencies for s in per_client], sum(errors)


def failover_dispatch(
    keys: list[np.ndarray],
    values: list[np.ndarray],
    queries: np.ndarray,
    concurrency: int,
    shards: int = 3,
    replication: int = 2,
    max_batch: int = 64,
    max_wait: float = 0.005,
) -> dict:
    """Measure the latency cost of losing a shard under live traffic.

    A thread-mode cluster (``shards`` replicas, replication factor
    ``replication``) serves two identical closed-loop epochs: a steady
    one, and one where a session's primary shard is killed (via the
    fault-injector seam — deterministic, no real process death) after a
    third of the requests have completed.  Client-side p95 over each
    epoch gives the steady baseline and the kill/recover window; the
    contract half of the story — **zero lost requests** — is part of
    the returned report and asserted by the smoke test.
    """
    cluster = ShardedAttentionServer(
        ClusterConfig(
            num_shards=shards,
            replication=replication,
            failover_backoff_seconds=0.01,
            shard=ServerConfig(
                batch=BatchPolicy(
                    max_batch_size=max_batch,
                    max_wait_seconds=max_wait,
                    max_queue_depth=4096,
                    overload="block",
                    submit_timeout_seconds=60.0,
                ),
                num_workers=1,
                engine="vectorized",
            ),
        )
    )
    session_ids = []
    for i, (key, value) in enumerate(zip(keys, values)):
        session_id = f"failover-s{i}"
        cluster.register_session(session_id, key, value)
        session_ids.append(session_id)

    def summarize(samples: list[float], errors: int) -> dict:
        arr = np.asarray(samples, dtype=float)
        return {
            "requests": int(arr.size),
            "errors": int(errors),
            "p50_ms": float(np.percentile(arr, 50) * 1e3) if arr.size else 0.0,
            "p95_ms": float(np.percentile(arr, 95) * 1e3) if arr.size else 0.0,
            "max_ms": float(arr.max() * 1e3) if arr.size else 0.0,
        }

    with cluster:
        steady_samples, steady_errors = _timed_load(
            cluster, session_ids, queries, concurrency
        )
        victim = cluster.session_shard(session_ids[0])
        trigger_at = max(1, queries.shape[0] // 3)
        fired = threading.Event()

        def maybe_kill(done: int) -> None:
            if done >= trigger_at and not fired.is_set():
                fired.set()
                cluster.kill_shard(victim)

        kill_samples, kill_errors = _timed_load(
            cluster, session_ids, queries, concurrency,
            on_complete=maybe_kill,
        )
        snapshot = cluster.snapshot()["cluster"]
    steady = summarize(steady_samples, steady_errors)
    window = summarize(kill_samples, kill_errors)
    return {
        "shards": shards,
        "replication": replication,
        "concurrency": concurrency,
        "killed_shard": victim,
        "steady": steady,
        "kill_window": window,
        "p95_degradation": (
            window["p95_ms"] / steady["p95_ms"] if steady["p95_ms"] else 0.0
        ),
        "failover": snapshot["failover"],
    }


# ----------------------------------------------------------------------
# pytest smoke pass
# ----------------------------------------------------------------------

_SMOKE_N, _SMOKE_D = 64, 16


def _smoke_data(sessions: int = 2, total: int = 48):
    rng = np.random.default_rng(0)
    keys = [rng.normal(size=(_SMOKE_N, _SMOKE_D)) for _ in range(sessions)]
    values = [rng.normal(size=(_SMOKE_N, _SMOKE_D)) for _ in range(sessions)]
    queries = rng.normal(size=(total, _SMOKE_D))
    return keys, values, queries


def test_load_generator_completes_all_requests():
    keys, values, queries = _smoke_data()
    server = make_server(max_batch=8, max_wait=0.002, workers=2)
    ids = []
    for i, (key, value) in enumerate(zip(keys, values)):
        sid = f"bench-s{i}"
        server.register_session(sid, key, value)
        ids.append(sid)
    with server:
        report = run_load(server, ids, queries, concurrency=12)
    assert report.errors == 0
    assert report.snapshot["completed"] == queries.shape[0]
    assert report.throughput_qps > 0.0


def test_concurrent_load_actually_batches():
    keys, values, queries = _smoke_data(sessions=1, total=64)
    server = make_server(max_batch=16, max_wait=0.01, workers=1)
    server.register_session("bench", keys[0], values[0])
    with server:
        report = run_load(server, ["bench"], queries, concurrency=16)
    assert report.errors == 0
    # With 16 clients in flight and batch cap 16, grouping must happen.
    assert report.snapshot["mean_batch_size"] > 1.5
    assert report.snapshot["batches"] < queries.shape[0]


def test_serial_baseline_measures_something():
    keys, values, queries = _smoke_data(sessions=1, total=16)
    seconds = serial_dispatch(keys[0], values[0], queries)
    assert seconds > 0.0


def _streaming_data(n0=48, blocks=6, append_rows=4, queries_per_block=3):
    rng = np.random.default_rng(0)
    key = rng.normal(size=(n0, _SMOKE_D))
    value = rng.normal(size=(n0, _SMOKE_D))
    append_blocks = [
        (
            rng.normal(size=(append_rows, _SMOKE_D)),
            rng.normal(size=(append_rows, _SMOKE_D)),
        )
        for _ in range(blocks)
    ]
    block_queries = rng.normal(size=(blocks, queries_per_block, _SMOKE_D))
    return key, value, append_blocks, block_queries


def test_streaming_modes_bit_identical():
    """The benchmark compares like with like: incremental splice and
    re-register re-prepare must answer every query identically."""
    key, value, append_blocks, block_queries = _streaming_data()
    _, via_mutator = streaming_dispatch(
        key, value, append_blocks, block_queries, incremental=True
    )
    _, via_reprepare = streaming_dispatch(
        key, value, append_blocks, block_queries, incremental=False
    )
    assert via_mutator.shape == (6 * 3, _SMOKE_D)
    np.testing.assert_array_equal(via_mutator, via_reprepare)


def test_streaming_dispatch_measures_something():
    key, value, append_blocks, block_queries = _streaming_data(blocks=3)
    wall, outputs = streaming_dispatch(
        key, value, append_blocks, block_queries, incremental=True
    )
    assert wall > 0.0
    assert np.isfinite(outputs).all()


def test_tiered_load_completes_per_tier():
    keys, values, queries = _smoke_data(sessions=1, total=30)
    server = make_server(max_batch=8, max_wait=0.002, workers=1)
    server.register_session("bench", keys[0], values[0])
    with server:
        for tier in ("exact", "conservative", "aggressive"):
            report = run_load(
                server, ["bench"], queries[:10], concurrency=5, tier=tier
            )
            assert report.errors == 0
    snap = server.snapshot()
    assert {t: c["completed"] for t, c in snap["tiers"].items()} == {
        "exact": 10, "conservative": 10, "aggressive": 10,
    }


def test_adaptive_overload_downgrades_without_rejecting():
    keys, values, queries = _smoke_data(sessions=1, total=384)
    # An SLO no loaded window can meet: the controller must walk the
    # default tier down, and block-mode admission must reject nothing.
    # Small batches + a fast control interval keep the epoch long
    # relative to the controller's reaction time on any machine.
    report, info = adaptive_overload_dispatch(
        keys[0], values[0], queries, concurrency=64,
        slo_p95_seconds=1e-6, max_batch=4, max_wait=0.002,
        interval_seconds=0.005,
    )
    assert report.errors == 0
    assert report.snapshot["rejected"] == 0
    assert info["downgrades"] >= 1
    assert info["downgraded_requests"] > 0


def test_spill_dispatch_spills_and_promotes():
    """The benchmark's own contract: the churn actually thrashes the
    RAM tier (every timed checkout is a miss), the two-tier mode
    spills and promotes, and the baseline never touches disk."""
    two = spill_dispatch(sessions=4, n=64, d=8, passes=2, two_tier=True)
    base = spill_dispatch(sessions=4, n=64, d=8, passes=2, two_tier=False)
    for cell in (two, base):
        assert cell["timed_checkouts"] == 4 * 2
        assert cell["misses"] >= cell["timed_checkouts"]
        assert cell["wall_seconds"] > 0.0
        assert cell["p95_checkout_seconds"] >= cell["p50_checkout_seconds"]
    assert two["spills"] > 0
    assert two["promotes"] == two["timed_checkouts"]
    assert base["spills"] == 0 and base["promotes"] == 0


def test_failover_dispatch_loses_no_requests():
    """The benchmark's own contract: killing a shard mid-epoch costs
    latency, never requests — both epochs complete everything."""
    keys, values, queries = _smoke_data(sessions=6, total=60)
    cell = failover_dispatch(
        keys, values, queries, concurrency=6,
        shards=3, replication=2, max_batch=8, max_wait=0.002,
    )
    assert cell["steady"]["errors"] == 0
    assert cell["kill_window"]["errors"] == 0
    assert cell["steady"]["requests"] == queries.shape[0]
    assert cell["kill_window"]["requests"] == queries.shape[0]
    assert cell["failover"]["failovers"] == 1
    assert cell["killed_shard"] in cell["failover"]["down_shards"]
    assert cell["steady"]["p95_ms"] > 0.0
    assert cell["kill_window"]["p95_ms"] > 0.0


def test_many_tenant_dispatch_fuses_across_sessions():
    """The benchmark's fused cell must actually fuse: with many
    sessions in flight, dispatches span several sessions, while the
    unfused baseline stays strictly per-session."""
    keys, values, queries = _smoke_data(sessions=8, total=64)
    fused = many_tenant_dispatch(
        keys, values, queries, concurrency=32,
        fused=True, max_batch=32, max_wait=0.01,
    )
    assert fused.errors == 0
    assert fused.snapshot["completed"] == queries.shape[0]
    assert fused.snapshot["fused"]["max_segments"] > 1
    unfused = many_tenant_dispatch(
        keys, values, queries, concurrency=32,
        fused=False, max_batch=32, max_wait=0.01,
    )
    assert unfused.errors == 0
    assert unfused.snapshot["fused"]["max_segments"] <= 1


def test_sharded_load_completes_and_spreads():
    keys, values, queries = _smoke_data(sessions=6, total=48)
    cluster = make_cluster(shards=2, max_batch=8, max_wait=0.002)
    ids = []
    for i, (key, value) in enumerate(zip(keys, values)):
        sid = f"bench-c{i}"
        cluster.register_session(sid, key, value)
        ids.append(sid)
    with cluster:
        report = run_load(cluster, ids, queries, concurrency=12)
    assert report.errors == 0
    aggregate = report.snapshot["cluster"]
    assert aggregate["completed"] == queries.shape[0]
    assert aggregate["num_shards"] == 2
    # Six consistent-hashed sessions over two shards: both serve work.
    assert all(
        count > 0 for count in aggregate["completed_per_shard"].values()
    )
    assert aggregate["load_imbalance"] >= 1.0
