"""Benchmark regenerating Table I: area and power characteristics."""

import pytest

from repro.experiments import table1_area_power


def test_table1_area_power(run_once):
    result = run_once(table1_area_power.run)
    print()
    print(result.format_table())
    total = result.rows[-1]
    assert total["module"] == "Total A3"
    assert total["area (mm^2)"] == pytest.approx(2.082, abs=1e-3)
    assert total["dynamic (mW)"] == pytest.approx(98.92, abs=0.01)
    assert total["static (mW)"] == pytest.approx(11.502, abs=1e-3)
