"""CI benchmark-regression gate over the committed BENCH_*.json baselines.

Compares a freshly measured report against the baseline committed in
the repo and fails (exit 1) when a gated metric regressed by more than
the threshold (default 30%).  Usage::

    PYTHONPATH=src python benchmarks/run_kernels.py -o ci_kernels.json
    PYTHONPATH=src python benchmarks/run_serve.py -o ci_serve.json
    python benchmarks/check_regression.py \\
        BENCH_kernels.json=ci_kernels.json BENCH_serve.json=ci_serve.json

Each positional argument is one ``baseline=current`` pair; a markdown
table of every comparison goes to stdout and, when running inside
GitHub Actions, to the job summary (``$GITHUB_STEP_SUMMARY``).

**What is gated.**  Only *dimensionless* metrics — speedup ratios the
benchmarks measure as interleaved pairs on one machine — are gated:
absolute throughput and latency depend on the runner's hardware, so a
committed-on-laptop baseline would make a slower CI runner fail every
build.  Those still appear in the table as informational rows.  The
shard-scaling speedup is additionally core-bound (a replica sweep on a
one-core container is pinned to ~1.0x no matter the code), so it is
extracted only from reports taken on >= 4 cores; reports from smaller
machines simply don't contribute the metric and the row shows as
skipped rather than failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

DEFAULT_THRESHOLD = 0.30
_MIN_SHARD_GATE_CORES = 4


@dataclass(frozen=True)
class Metric:
    """One extracted benchmark signal."""

    name: str
    value: float
    gated: bool


def extract_metrics(report: dict) -> list[Metric]:
    """Pull the comparable signals out of one BENCH_*.json report."""
    benchmark = report.get("benchmark", "")
    # "kernels/attend_batch" is the report id's pre-rename spelling;
    # committed baselines may still carry it.
    if benchmark in ("kernels/attend_many", "kernels/attend_batch"):
        return _kernel_metrics(report)
    if benchmark == "serve/dynamic_batching":
        return _serve_metrics(report)
    raise ValueError(f"unknown benchmark report {benchmark!r}")


def _kernel_metrics(report: dict) -> list[Metric]:
    metrics = []
    for cell in report.get("cells", []):
        label = f"kernels/{cell['config']}/batch{cell['batch']}"
        # The batched pipeline only targets batch >= 16; batch-1 cells
        # measure dispatch overhead and flake, so they stay ungated.
        gated = cell["batch"] >= 16
        metrics.append(
            Metric(
                f"{label}/vectorized_speedup_vs_reference",
                float(cell["vectorized_speedup_vs_reference"]),
                gated,
            )
        )
        metrics.append(
            Metric(
                f"{label}/vectorized_qps",
                float(cell["batch"] / cell["seconds"]["vectorized"]),
                False,
            )
        )
    return metrics


def _serve_metrics(report: dict) -> list[Metric]:
    metrics = []
    headline = report.get("headline")
    if headline:
        metrics.append(
            Metric(
                "serve/batched_speedup_vs_serial",
                float(headline["batched_speedup_vs_serial"]),
                True,
            )
        )
        metrics.append(
            Metric(
                "serve/served_throughput_qps",
                float(headline["served_throughput_qps"]),
                False,
            )
        )
    for cell in report.get("served", []):
        label = f"serve/c{cell['concurrency']}x{cell['sessions']}"
        metrics.append(
            Metric(
                f"{label}/p99_latency_seconds",
                float(cell["latency_seconds"]["p99"]),
                False,
            )
        )
        # Queue-wait vs batch-service split of the mean latency:
        # informational (absolute seconds are hardware-dependent), and
        # absent from reports older than the observability PR.
        if "mean_queue_wait_seconds" in cell:
            metrics.append(
                Metric(
                    f"{label}/mean_queue_wait_seconds",
                    float(cell["mean_queue_wait_seconds"]),
                    False,
                )
            )
            metrics.append(
                Metric(
                    f"{label}/mean_service_seconds",
                    float(cell["mean_service_seconds"]),
                    False,
                )
            )
    quality = report.get("quality_headline")
    if quality:
        # Dimensionless paired in-round ratios, gated like the other
        # headline speedups.  The conservative/aggressive ratio is the
        # serving-layer width of the paper's dial — losing it means the
        # aggressive tier stopped buying latency and the degradation
        # controller has nothing to trade.  The exact ratio sits below
        # 1 (exact = one BLAS GEMM in software); gating it still pins
        # the three tiers' relative cost against drift.
        metrics.append(
            Metric(
                "serve/quality_aggressive_speedup_vs_conservative",
                float(quality["aggressive_speedup_vs_conservative"]),
                True,
            )
        )
        metrics.append(
            Metric(
                "serve/quality_aggressive_speedup_vs_exact",
                float(quality["aggressive_speedup_vs_exact"]),
                True,
            )
        )
    for cell in report.get("quality_tiers", []):
        # Per-tier rows in the job-summary table: absolute throughput
        # and p95 per tier are hardware-dependent, informational only.
        label = f"serve/tier_{cell['tier']}"
        metrics.append(
            Metric(f"{label}/throughput_qps", float(cell["throughput_qps"]), False)
        )
        metrics.append(
            Metric(
                f"{label}/p95_latency_seconds",
                float(cell["latency_seconds"]["p95"]),
                False,
            )
        )
    adaptive = report.get("adaptive")
    if adaptive:
        # Controller benefit depends on machine speed and thread timing,
        # so the relief ratio stays informational; the benchmark itself
        # asserts the hard invariant (zero rejections) at run time.
        metrics.append(
            Metric("serve/adaptive_p95_relief", float(adaptive["p95_relief"]), False)
        )
        metrics.append(
            Metric("serve/adaptive_rejected", float(adaptive["rejected"]), False)
        )
    failover = report.get("failover")
    if failover:
        # The p95 degradation of losing a shard is timing-dependent on
        # a small container (thread-mode cluster, kill detection races
        # the epoch), so all failover rows are informational; the hard
        # contract — zero lost requests across both epochs — is
        # asserted at run time by the benchmark and by the chaos suite.
        metrics.append(
            Metric(
                "serve/failover_steady_p95_ms",
                float(failover["steady"]["p95_ms"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/failover_kill_window_p95_ms",
                float(failover["kill_window"]["p95_ms"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/failover_p95_degradation",
                float(failover["p95_degradation"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/failover_lost_requests",
                float(
                    failover["steady"]["errors"]
                    + failover["kill_window"]["errors"]
                ),
                False,
            )
        )
    observability = report.get("observability")
    if observability:
        # All informational: the disabled A/A ratio rides on the run's
        # noise floor (the benchmark records it for the <5% acceptance
        # bar, read from the committed report, not gated here), and the
        # traced/sampled overheads price an off-by-default feature.
        # Older baselines lack the section entirely — these rows then
        # show as skipped, never failing.
        metrics.append(
            Metric(
                "serve/observability_disabled_vs_headline",
                float(observability["disabled_vs_headline"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/observability_tracing_overhead",
                float(observability["tracing_overhead"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/observability_sampled_overhead",
                float(observability["sampled_overhead"]),
                False,
            )
        )
    many_tenant = report.get("many_tenant")
    if many_tenant:
        # The fused/unfused ratio is a paired in-round wall ratio on
        # one machine — dimensionless, so it gates like the other
        # headline speedups.  Absent from baselines older than the
        # cross-session-fusion PR: those rows show as skipped.
        metrics.append(
            Metric(
                "serve/many_tenant_fused_speedup_vs_unfused",
                float(many_tenant["fused_speedup_vs_unfused"]),
                True,
            )
        )
        metrics.append(
            Metric(
                "serve/many_tenant_fused_throughput_qps",
                float(many_tenant["fused_throughput_qps"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/many_tenant_max_segments",
                float(many_tenant["max_segments"]),
                False,
            )
        )
    network = report.get("network")
    if network:
        # All informational: localhost wire latency prices framing plus
        # two loopback socket hops and is entirely container-dependent.
        # The hard contract — zero request errors in the open-loop
        # drive — is asserted by the benchmark (and the CI network
        # smoke job) at run time.  Baselines older than the network PR
        # lack the section; rows then show as skipped.
        metrics.append(
            Metric(
                "serve/network_wire_overhead_ratio",
                float(network["wire_overhead_ratio"]),
                False,
            )
        )
        metrics.append(
            Metric(
                "serve/network_wire_overhead_seconds_mean",
                float(network["wire_overhead_seconds_mean"]),
                False,
            )
        )
        open_loop = network.get("open_loop")
        if open_loop:
            metrics.append(
                Metric(
                    "serve/network_open_loop_p99_seconds",
                    float(open_loop["latency_seconds"]["p99"]),
                    False,
                )
            )
            metrics.append(
                Metric(
                    "serve/network_open_loop_errors",
                    float(open_loop["errors"]),
                    False,
                )
            )
    sharded = report.get("sharded_headline")
    if sharded and int(sharded.get("cores", 1)) >= _MIN_SHARD_GATE_CORES:
        # A replica sweep on a small machine measures the core bound,
        # not the code, so such reports don't contribute the metric at
        # all — a one-sided comparison then shows as "skipped" instead
        # of gating against a meaningless baseline.
        metrics.append(
            Metric(
                f"serve/sharded_speedup_{sharded['shards']}x_vs_1",
                float(sharded["speedup_vs_one_shard"]),
                True,
            )
        )
    streaming = report.get("streaming_headline")
    if streaming:
        # Gated like the other dimensionless interleaved-pair ratios.
        # No core filter here: the streaming pair is single-threaded
        # (splice vs full re-prepare on one session), so the ratio is
        # meaningful on any machine, 1-core CI containers included.
        metrics.append(
            Metric(
                "serve/streaming_append_speedup_vs_reprepare",
                float(streaming["append_speedup_vs_reprepare"]),
                True,
            )
        )
    cell = report.get("streaming")
    if cell:
        metrics.append(
            Metric(
                "serve/streaming_append_rows_per_second",
                float(cell["append_throughput_rows_per_second"]),
                False,  # absolute throughput: informational only
            )
        )
    spill = report.get("spill_headline")
    if spill:
        # Same regime as the streaming pair: single-threaded,
        # dimensionless, paired inside each round — gated everywhere.
        metrics.append(
            Metric(
                "serve/spill_promote_speedup_vs_reprepare",
                float(spill["promote_speedup_vs_reprepare"]),
                True,
            )
        )
    return metrics


@dataclass(frozen=True)
class Row:
    """One baseline/current comparison in the report table."""

    name: str
    baseline: float | None
    current: float | None
    gated: bool
    status: str  # "ok" | "improved" | "REGRESSION" | "skipped" | "info"

    @property
    def change(self) -> float | None:
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline - 1.0


def compare(
    baseline: list[Metric],
    current: list[Metric],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Row]:
    """Pair up metrics by name and classify each comparison.

    A gated metric present on both sides fails when the current value
    drops more than ``threshold`` below the baseline (all gated metrics
    are higher-is-better speedups).  A gated metric present on only one
    side — e.g. the shard-scaling speedup when one report came from a
    small machine — is reported as skipped, never failed.
    """
    baseline_by_name = {metric.name: metric for metric in baseline}
    current_by_name = {metric.name: metric for metric in current}
    rows = []
    for name in sorted(baseline_by_name | current_by_name):
        base = baseline_by_name.get(name)
        cur = current_by_name.get(name)
        gated = (base or cur).gated and (cur or base).gated
        if base is None or cur is None:
            base_value = base.value if base else None
            current_value = cur.value if cur else None
            rows.append(Row(name, base_value, current_value, gated, "skipped"))
            continue
        if not gated:
            rows.append(Row(name, base.value, cur.value, False, "info"))
            continue
        if base.value <= 0:
            rows.append(Row(name, base.value, cur.value, True, "skipped"))
            continue
        drop = 1.0 - cur.value / base.value
        if drop > threshold:
            status = "REGRESSION"
        elif drop < -threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(Row(name, base.value, cur.value, True, status))
    return rows


def has_regressions(rows: list[Row]) -> bool:
    return any(row.status == "REGRESSION" for row in rows)


def render_table(rows: list[Row], threshold: float) -> str:
    lines = [
        f"### Benchmark regression gate (threshold {threshold:.0%})",
        "",
        "| metric | baseline | current | change | gate |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        baseline = "—" if row.baseline is None else f"{row.baseline:.3f}"
        current = "—" if row.current is None else f"{row.current:.3f}"
        change = "—" if row.change is None else f"{row.change:+.1%}"
        lines.append(
            f"| {row.name} | {baseline} | {current} | {change} "
            f"| {row.status} |"
        )
    return "\n".join(lines)


def check_pair(baseline_path: str, current_path: str, threshold: float) -> list[Row]:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(current_path) as handle:
        current = json.load(handle)
    return compare(extract_metrics(baseline), extract_metrics(current), threshold)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "pairs",
        nargs="+",
        metavar="BASELINE=CURRENT",
        help="committed baseline JSON and freshly measured JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional drop in a gated metric that fails the job "
        f"(default {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    rows: list[Row] = []
    for pair in args.pairs:
        baseline_path, sep, current_path = pair.partition("=")
        if not sep:
            parser.error(f"expected BASELINE=CURRENT, got {pair!r}")
        rows.extend(check_pair(baseline_path, current_path, args.threshold))
    table = render_table(rows, args.threshold)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")
    if has_regressions(rows):
        failing = [row.name for row in rows if row.status == "REGRESSION"]
        print(
            f"\nFAIL: {len(failing)} metric(s) regressed beyond "
            f"{args.threshold:.0%}: {', '.join(failing)}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: no gated metric regressed beyond the threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
