"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one paper table or figure.  The trained
workloads are expensive, so one session-scoped cache is shared by every
accuracy benchmark; hardware-only benchmarks need no training.

Environment knobs:

``REPRO_BENCH_SCALE``
    ``small`` (default) trains the full experiment-scale models;
    ``tiny`` runs a fast smoke pass.
``REPRO_BENCH_LIMIT``
    Cap on test examples per evaluation (default 60).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.cache import WorkloadCache
from repro.experiments.perf_common import PerformanceStudy


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def bench_limit() -> int | None:
    raw = os.environ.get("REPRO_BENCH_LIMIT", "60")
    return None if raw in ("", "none") else int(raw)


@pytest.fixture(scope="session")
def cache() -> WorkloadCache:
    return WorkloadCache(scale=bench_scale(), seed=0)


@pytest.fixture(scope="session")
def study(cache) -> PerformanceStudy:
    return PerformanceStudy(cache=cache)


@pytest.fixture(scope="session")
def limit() -> int | None:
    return bench_limit()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark.

    Accuracy experiments are deterministic given the trained model, so a
    single round both times the driver and returns its table.
    """

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
