"""Open-loop network load generation with coordinated-omission-safe
latency accounting.

Closed-loop load (each client fires its next request when the previous
response lands) systematically under-reports tail latency: while the
server stalls, the blocked clients *stop generating the arrivals the
workload would really produce*, so the stall suppresses the very
samples that should have recorded it — Gil Tene's *coordinated
omission*.  This harness avoids it twice over:

* **open-loop arrivals** — requests fire on a Poisson schedule fixed
  before the run (:func:`poisson_schedule`); the generator never waits
  for a response before sending the next request, so a server stall
  faces the backlog a real independent-client population would
  produce;
* **scheduled-send timestamps** — each request's latency is measured
  from the instant it was *scheduled* to depart, not the instant the
  generator actually managed to send it
  (:class:`OpenLoopResult.latency_seconds`).  If the generator itself
  falls behind (GIL, a slow send), the lag counts against the server's
  percentiles instead of silently vanishing.  The naive
  actual-send accounting is reported alongside
  (:class:`OpenLoopResult.naive_latency_seconds`) so the gap is
  visible.

The distinction is testable without wall clocks:
:func:`simulate_open_loop` / :func:`simulate_closed_loop` run the same
service-time sequence through a single FIFO server under each
discipline — a single injected stall inflates the open-loop p99 and
leaves the closed-loop p99 asleep (``tests/serve/test_loadgen.py``
pins this).

As a script, drives a live :class:`~repro.serve.frontend.NetworkFrontend`
(``--connect HOST:PORT``) or self-hosts one on the loopback
(``--self-host``), exits nonzero on any request error, and prints the
JSON report the CI network smoke job asserts on::

    PYTHONPATH=src python benchmarks/loadgen.py --self-host --smoke
    PYTHONPATH=src python benchmarks/loadgen.py --connect 127.0.0.1:7070 \
        --rate 200 --requests 1000
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.observability import now  # noqa: E402
from repro.serve.stats import latency_summary  # noqa: E402

DEFAULT_RATE = 200.0
DEFAULT_REQUESTS = 500
DEFAULT_SESSIONS = 4


# ----------------------------------------------------------------------
# arrival schedules
# ----------------------------------------------------------------------


def poisson_schedule(
    rate_qps: float, count: int, seed: int = 0
) -> np.ndarray:
    """``count`` Poisson arrival offsets (seconds from start) at
    ``rate_qps`` — i.i.d. exponential gaps, fixed before the run so the
    generator never adapts to the server (the open-loop property)."""
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be positive, got {rate_qps}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_qps, size=count)
    return np.cumsum(gaps)


# ----------------------------------------------------------------------
# discipline simulators (the CO fixture — no wall clock involved)
# ----------------------------------------------------------------------


def simulate_open_loop(
    schedule: np.ndarray, service_seconds: np.ndarray
) -> np.ndarray:
    """Latencies of an *open-loop* client against one FIFO server.

    Request ``i`` arrives at ``schedule[i]`` regardless of the server's
    state; the server works the queue in order, so completion is
    ``max(arrival, previous completion) + service``.  Latency is
    completion minus the **scheduled** arrival: queueing delay behind a
    stall lands in the samples.
    """
    schedule = np.asarray(schedule, dtype=np.float64)
    service_seconds = np.asarray(service_seconds, dtype=np.float64)
    if schedule.shape != service_seconds.shape:
        raise ValueError(
            f"schedule and service shapes differ: "
            f"{schedule.shape} vs {service_seconds.shape}"
        )
    completions = np.empty_like(schedule)
    clock = 0.0
    for i in range(len(schedule)):
        clock = max(clock, schedule[i]) + service_seconds[i]
        completions[i] = clock
    return completions - schedule


def simulate_closed_loop(service_seconds: np.ndarray) -> np.ndarray:
    """Latencies of a *closed-loop* client over the same service times.

    The client sends request ``i`` only after response ``i-1`` lands
    and measures from its actual send — so every sample is exactly the
    service time, and the queueing a stall would impose on an
    independent arrival stream is never observed.  This is the
    coordinated-omission failure mode the open-loop accounting exists
    to avoid.
    """
    return np.asarray(service_seconds, dtype=np.float64).copy()


# ----------------------------------------------------------------------
# live open-loop driver
# ----------------------------------------------------------------------


@dataclass
class OpenLoopResult:
    """One open-loop run: CO-safe and naive accountings side by side."""

    requests: int
    errors: int
    wall_seconds: float
    offered_rate_qps: float
    achieved_rate_qps: float
    #: completion − *scheduled* send (coordinated-omission-safe)
    latency_seconds: dict = field(default_factory=dict)
    #: completion − *actual* send (the naive accounting, for contrast)
    naive_latency_seconds: dict = field(default_factory=dict)
    #: how far the generator itself fell behind its schedule
    max_send_lag_seconds: float = 0.0
    error_kinds: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "offered_rate_qps": self.offered_rate_qps,
            "achieved_rate_qps": self.achieved_rate_qps,
            "latency_seconds": dict(self.latency_seconds),
            "naive_latency_seconds": dict(self.naive_latency_seconds),
            "max_send_lag_seconds": self.max_send_lag_seconds,
            "error_kinds": dict(self.error_kinds),
        }


def run_open_loop(
    submit,
    schedule: np.ndarray,
    *,
    offered_rate_qps: float,
    timeout_seconds: float = 60.0,
) -> OpenLoopResult:
    """Fire ``submit(i)`` (→ a Future) at each scheduled offset.

    The pacing loop sleeps to each offset and fires without waiting for
    responses; completions are timestamped by the futures' callbacks.
    Per-request latency is ``completion - scheduled_send``; the actual
    send time only feeds the contrast accounting and the
    ``max_send_lag_seconds`` generator-health figure.
    """
    count = len(schedule)
    scheduled = np.empty(count)
    actual = np.empty(count)
    completed = np.full(count, np.nan)
    failed: dict[int, str] = {}
    done = threading.Event()
    remaining = [count]
    lock = threading.Lock()

    def finish(index: int, future) -> None:
        stamp = now()
        error = future.exception()
        with lock:
            if error is not None:
                failed[index] = type(error).__name__
            completed[index] = stamp
            remaining[0] -= 1
            if remaining[0] == 0:
                done.set()

    start = now()
    for i in range(count):
        target = start + schedule[i]
        delay = target - now()
        if delay > 0:
            time.sleep(delay)
        scheduled[i] = target
        actual[i] = now()
        try:
            future = submit(i)
        except Exception as exc:  # noqa: BLE001 — synchronous reject
            stamp = now()
            with lock:
                failed[i] = type(exc).__name__
                completed[i] = stamp
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.set()
            continue
        future.add_done_callback(lambda f, i=i: finish(i, f))
    if count and not done.wait(timeout_seconds):
        with lock:
            for i in range(count):
                if np.isnan(completed[i]):
                    failed.setdefault(i, "TimeoutError")
                    completed[i] = now()
    wall = max(now() - start, 1e-12)

    ok = np.array(
        [i for i in range(count) if i not in failed], dtype=np.intp
    )
    co_safe = (completed[ok] - scheduled[ok]) if len(ok) else np.array([])
    naive = (completed[ok] - actual[ok]) if len(ok) else np.array([])
    kinds: dict[str, int] = {}
    for kind in failed.values():
        kinds[kind] = kinds.get(kind, 0) + 1
    return OpenLoopResult(
        requests=count,
        errors=len(failed),
        wall_seconds=wall,
        offered_rate_qps=offered_rate_qps,
        achieved_rate_qps=len(ok) / wall,
        latency_seconds=latency_summary(co_safe),
        naive_latency_seconds=latency_summary(naive),
        max_send_lag_seconds=(
            float(np.max(actual - scheduled)) if count else 0.0
        ),
        error_kinds=kinds,
    )


def drive_network(
    client,
    session_ids,
    queries: np.ndarray,
    schedule: np.ndarray,
    *,
    offered_rate_qps: float,
    tier: str | None = None,
    timeout_seconds: float = 60.0,
) -> OpenLoopResult:
    """Open-loop drive of an :class:`~repro.serve.client.AttentionClient`.

    Request ``i`` goes to session ``i % len(session_ids)`` with query
    row ``i % len(queries)`` — the many-tenant round-robin arrival
    shape.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))

    def submit(i: int):
        return client.submit(
            session_ids[i % len(session_ids)],
            queries[i % len(queries)],
            tier=tier,
        )

    return run_open_loop(
        submit,
        schedule,
        offered_rate_qps=offered_rate_qps,
        timeout_seconds=timeout_seconds,
    )


# ----------------------------------------------------------------------
# wire-overhead pairing (in-process vs localhost socket)
# ----------------------------------------------------------------------


def wire_overhead_pair(
    server, client, session_id: str, queries: np.ndarray
) -> dict:
    """Serial per-request latency, in-process vs over the wire.

    The *same* requests run against the *same* live server twice — once
    through :meth:`AttentionServer.attend` directly, once through the
    socket client — so the difference prices exactly the wire: framing,
    two localhost socket hops, and the frontend's event loop.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    in_process = np.empty(len(queries))
    wire = np.empty(len(queries))
    for i, query in enumerate(queries):
        t0 = now()
        server.attend(session_id, query)
        in_process[i] = now() - t0
    for i, query in enumerate(queries):
        t0 = now()
        client.attend(session_id, query)
        wire[i] = now() - t0
    in_mean = float(in_process.mean())
    wire_mean = float(wire.mean())
    return {
        "requests": int(len(queries)),
        "in_process_latency_seconds": latency_summary(in_process),
        "wire_latency_seconds": latency_summary(wire),
        "wire_overhead_seconds_mean": wire_mean - in_mean,
        "wire_overhead_ratio": wire_mean / in_mean if in_mean > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# self-contained network benchmark (the BENCH `network` cell)
# ----------------------------------------------------------------------


def network_cell(
    *,
    smoke: bool = False,
    rate_qps: float | None = None,
    requests: int | None = None,
    sessions: int | None = None,
    seed: int = 0,
) -> dict:
    """Self-hosted localhost benchmark: wire-overhead pair plus an
    open-loop many-tenant curve, as one BENCH_serve.json cell."""
    from repro.serve import AttentionServer, ServerConfig
    from repro.serve.client import AttentionClient
    from repro.serve.frontend import NetworkFrontend

    n, d = (64, 16) if smoke else (320, 64)
    count = requests if requests is not None else (64 if smoke else 500)
    tenants = sessions if sessions is not None else (2 if smoke else 4)
    overhead_requests = 32 if smoke else 128

    rng = np.random.default_rng(seed)
    server = AttentionServer(ServerConfig())
    server.start()
    ids = []
    for s in range(tenants):
        sid = f"net-s{s}"
        server.register_session(
            sid, rng.normal(size=(n, d)), rng.normal(size=(n, d))
        )
        ids.append(sid)
    queries = rng.normal(size=(count, d))

    frontend = NetworkFrontend(server)
    frontend.start()
    try:
        client = AttentionClient(frontend.address)
        try:
            overhead = wire_overhead_pair(
                server, client, ids[0], queries[:overhead_requests]
            )
            # Calibrate the offered rate to the measured serial wire
            # capacity so the cell is comparable across machines: the
            # curve probes fixed utilization fractions, not fixed QPS.
            capacity = 1.0 / max(
                overhead["wire_latency_seconds"]["mean"], 1e-9
            )
            utilizations = (0.25, 0.5) if smoke else (0.25, 0.5, 0.75)
            curve = []
            for utilization in utilizations:
                offered = (
                    rate_qps
                    if rate_qps is not None
                    else max(1.0, utilization * capacity)
                )
                schedule = poisson_schedule(offered, count, seed=seed)
                result = drive_network(
                    client,
                    ids,
                    queries,
                    schedule,
                    offered_rate_qps=offered,
                )
                if result.errors:
                    raise RuntimeError(
                        f"{result.errors} open-loop request errors "
                        f"({result.error_kinds})"
                    )
                curve.append(
                    {"utilization": utilization, **result.to_dict()}
                )
                if rate_qps is not None:
                    break
        finally:
            client.close()
    finally:
        frontend.stop()
        server.stop()

    headline = curve[len(curve) // 2]
    return {
        "transport": "tcp-localhost",
        "n": n,
        "d": d,
        "sessions": tenants,
        "requests_per_point": count,
        **{k: overhead[k] for k in (
            "in_process_latency_seconds",
            "wire_latency_seconds",
            "wire_overhead_seconds_mean",
            "wire_overhead_ratio",
        )},
        "open_loop": headline,
        "open_loop_curve": curve,
    }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--connect", metavar="HOST:PORT",
        help="drive an already-running network frontend",
    )
    target.add_argument(
        "--self-host", action="store_true",
        help="start a server + frontend on the loopback and drive it "
        "(the CI network smoke configuration)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="offered Poisson rate in q/s (default: calibrate to "
        "measured wire capacity)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help=f"requests per open-loop point (default {DEFAULT_REQUESTS})",
    )
    parser.add_argument(
        "--sessions", type=int, default=None,
        help=f"tenant sessions (default {DEFAULT_SESSIONS}; self-host "
        "registers them, --connect expects loadgen-s0..N-1 registered)",
    )
    parser.add_argument("--n", type=int, default=320, help="session rows")
    parser.add_argument("--d", type=int, default=64, help="key width")
    parser.add_argument(
        "--tier", default=None,
        choices=("exact", "conservative", "aggressive"),
        help="pin every request to one quality tier",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized pass"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the report to PATH",
    )
    args = parser.parse_args(argv)

    if args.self_host:
        report = network_cell(
            smoke=args.smoke,
            rate_qps=args.rate,
            requests=args.requests,
            sessions=args.sessions,
            seed=args.seed,
        )
        errors = sum(
            point["errors"] for point in report["open_loop_curve"]
        )
    else:
        from repro.serve.client import AttentionClient

        count = args.requests or DEFAULT_REQUESTS
        tenants = args.sessions or DEFAULT_SESSIONS
        rate = args.rate or DEFAULT_RATE
        rng = np.random.default_rng(args.seed)
        queries = rng.normal(size=(count, args.d))
        client = AttentionClient(args.connect)
        try:
            ids = []
            for s in range(tenants):
                sid = f"loadgen-s{s}"
                client.register_session(
                    sid,
                    rng.normal(size=(args.n, args.d)),
                    rng.normal(size=(args.n, args.d)),
                )
                ids.append(sid)
            schedule = poisson_schedule(rate, count, seed=args.seed)
            result = drive_network(
                client, ids, queries, schedule,
                offered_rate_qps=rate, tier=args.tier,
            )
            for sid in ids:
                client.close_session(sid)
        finally:
            client.close()
        report = {
            "transport": f"tcp-{args.connect}",
            "sessions": tenants,
            "open_loop": result.to_dict(),
        }
        errors = result.errors

    text = json.dumps(report, indent=2)
    print(text)
    if args.json:
        Path(args.json).write_text(text + "\n")
    if errors:
        print(f"FAILED: {errors} request error(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
