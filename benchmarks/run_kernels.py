"""Standalone kernel benchmark runner emitting ``BENCH_kernels.json``.

Times the same attend-batch grid as ``bench_kernels.py`` (three engines x
batch sizes x the paper's two named operating points at n=320, d=64)
without requiring pytest, and writes a JSON report so each PR's
performance trajectory can be diffed against the last:

    PYTHONPATH=src python benchmarks/run_kernels.py [-o BENCH_kernels.json]

Each grid cell reports the best-of-``repeats`` wall time; the vectorized
engine's speedup over the per-query reference loop is computed per cell.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.core.approximate import ENGINES, ApproximateAttention
from repro.core.config import aggressive, conservative
from repro.core.efficient_search import PreprocessedKey

N, D = 320, 64
BATCH_SIZES = (1, 16, 64, 320)
CONFIGS = {"conservative": conservative, "aggressive": aggressive}


def _best_seconds(fn, repeats: int) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run(repeats: int = 7) -> dict:
    rng = np.random.default_rng(0)
    key = rng.normal(size=(N, D))
    value = rng.normal(size=(N, D))
    queries = rng.normal(size=(max(BATCH_SIZES), D))

    report: dict = {
        "benchmark": "kernels/attend_many",
        "n": N,
        "d": D,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "preprocess_seconds": _best_seconds(
            lambda: PreprocessedKey.build(key), repeats
        ),
        "cells": [],
    }
    for config_name, config in CONFIGS.items():
        for batch in BATCH_SIZES:
            batch_queries = queries[:batch]
            timings = {}
            for engine in ENGINES:
                approx = ApproximateAttention(config(), engine=engine)
                approx.preprocess(key)
                scaled_repeats = max(2, repeats if batch < 320 else repeats // 2)
                timings[engine] = _best_seconds(
                    lambda a=approx: a.attend_many(value, batch_queries),
                    scaled_repeats,
                )
            report["cells"].append(
                {
                    "config": config_name,
                    "batch": batch,
                    "seconds": timings,
                    "vectorized_speedup_vs_reference": (
                        timings["reference"] / timings["vectorized"]
                    ),
                    "vectorized_speedup_vs_efficient": (
                        timings["efficient"] / timings["vectorized"]
                    ),
                }
            )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_kernels.json",
        help="output path (default: BENCH_kernels.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7,
        help="timing repeats per cell (best-of is reported)",
    )
    args = parser.parse_args()
    report = run(repeats=args.repeats)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    for cell in report["cells"]:
        print(
            f"  {cell['config']:>12} batch {cell['batch']:>4}: "
            f"ref {cell['seconds']['reference'] * 1e3:8.2f} ms  "
            f"eff {cell['seconds']['efficient'] * 1e3:8.2f} ms  "
            f"vec {cell['seconds']['vectorized'] * 1e3:8.2f} ms  "
            f"({cell['vectorized_speedup_vs_reference']:.2f}x vs reference)"
        )


if __name__ == "__main__":
    main()
