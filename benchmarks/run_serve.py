"""Standalone serving benchmark emitting ``BENCH_serve.json``.

Measures the dynamic batcher against per-request serial dispatch at the
paper's n=320, d=64 operating point (conservative approximation):

* **serial baselines** — one prepared backend, one ``attend`` per query
  in arrival order, for both the ``reference`` engine (fastest at batch
  one) and the server's own ``vectorized`` engine;
* **served cells** — a closed-loop load of N concurrent clients against
  a running :class:`repro.serve.AttentionServer` (batch 64 / 5 ms
  policy), sweeping the in-flight count;
* **sharded cells** — the same load against a
  :class:`repro.serve.ShardedAttentionServer`, sweeping the replica
  count at a high in-flight count over a multi-tenant session pool
  (the shard scaling curve);
* **streaming cell** — an append-heavy mutable session (blocks of
  appended rows interleaved with query bursts), paired per round:
  incremental splice through ``SessionMutator`` vs re-registering the
  grown memory (full re-prepare).  ``streaming_headline`` carries the
  dimensionless ``append_speedup_vs_reprepare``; it is a
  single-threaded paired ratio, so unlike the shard metric it is
  trustworthy from any core count;
* **quality-tier cells** — the identical closed-loop load pinned to
  each quality tier (``exact`` / ``conservative`` / ``aggressive``).
  ``quality_headline`` carries two paired in-round wall ratios, both
  dimensionless and gated: ``aggressive_speedup_vs_conservative`` is
  the serving-layer width of the paper's accuracy/latency dial (its
  two named operating points), and ``aggressive_speedup_vs_exact``
  pins the relative cost of the exact tier — which is *below* 1 in
  software, because exact attention is one BLAS GEMM and the
  approximation only pays on the paper's accelerator (the fig14
  hardware model), not against an optimized GEMM;
* **adaptive cell** — injected overload (all requests best-effort at
  the conservative default) served frozen vs under an
  ``AdaptiveQualityController`` whose SLO is set to half the
  uncontrolled p95 of the same round, degrading best-effort traffic to
  the aggressive tier.  Reports the p95 relief the controller buys by
  shedding quality, the downgrade counters, and the rejection count —
  which must stay zero (quality is shed, availability is not);
* **failover cell** — two identical closed-loop epochs against a
  3-shard, replication-2 thread-mode cluster: a steady baseline, and
  one where a primary shard is killed (fault-injector seam) a third of
  the way through.  Reports client-side p95 for each epoch and the
  paired degradation ratio; errors must stay zero in both epochs —
  failover costs latency, never answers.  Informational (not gated):
  the absolute ratio is timing-dependent on a one-core container;
* **many-tenant cell** — the same closed-loop machinery over a wide
  session pool (64 sessions × 5 queries each, one closed-loop client
  per session): the realistic many-tenant arrival shape, and the worst
  case for per-session grouping — each session has one request in
  flight at a time, so per-session dispatch degenerates to batch one.
  Paired in-round: cross-session ragged fusion
  (``attend_many_ragged``) vs per-session grouping pinned on an
  otherwise identical server.  ``many_tenant`` carries the
  dimensionless gated ratio ``fused_speedup_vs_unfused`` plus the
  fused-segments-per-batch histogram of the median fused round;
* **network cell** — the localhost socket frontend
  (:mod:`benchmarks.loadgen`): a paired wire-overhead measurement (the
  same requests against the same live server, in-process vs through
  the TCP client) and an open-loop Poisson many-tenant curve with
  coordinated-omission-safe percentiles (latency from *scheduled*
  send, rates calibrated to the measured wire capacity).  Both
  informational — localhost wire latency is container-dependent — but
  errors must stay zero;
* **observability cells** — the headline load with per-request tracing
  disabled / sampled at 5% / at 100%.  The disabled cell is an A/A
  control against the plain headline cell (``disabled_vs_headline``,
  the <5% disabled-overhead acceptance bar), the paired
  ``tracing_overhead`` prices full sampling, and the fully-traced
  round's span tree is exported as JSONL (``--trace-output``).  The
  served cells additionally break mean latency into queue wait vs
  batch service time.

The headline figure the acceptance gate reads is
``headline.batched_speedup_vs_serial``: served throughput at >= 64
in-flight queries over the *best* serial baseline's throughput.
``sharded_headline`` tracks the aggregate-throughput ratio of the
largest shard count over one shard; because every shard is the full
single-server stack, the ratio is bounded by the machine's cores
(recorded as ``cores``): process-backed shards scale on real cores,
while on a one-core container any mode is pinned near 1.0x — the gate
in ``check_regression.py`` therefore only trusts this metric from
reports taken on >= 4 cores.

    PYTHONPATH=src python benchmarks/run_serve.py [-o BENCH_serve.json]
    PYTHONPATH=src python benchmarks/run_serve.py --smoke   # CI-sized
    PYTHONPATH=src python benchmarks/run_serve.py --shard-mode process

Measurements are *interleaved*: every round runs the serial baselines
and the served cells back to back, cells report the median wall over
``--repeats`` rounds, and the headline speedup is the median of the
per-round serial/served ratios — so machine-speed drift between rounds
(easily ±20% here) hits both sides of each compared pair equally
instead of skewing the trajectory tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serve import (  # noqa: E402
    adaptive_overload_dispatch,
    failover_dispatch,
    make_cluster,
    make_server,
    many_tenant_dispatch,
    run_load,
    serial_dispatch,
    spill_dispatch,
    streaming_dispatch,
)
from loadgen import network_cell  # noqa: E402

N, D = 320, 64
TOTAL_REQUESTS = 320
CONCURRENCIES = (8, 64, 320)
MAX_BATCH = 64
MAX_WAIT = 0.005
HEADLINE_CONCURRENCY = 64
SHARD_COUNTS = (1, 2, 4)
SHARD_SESSIONS = 16
SHARD_CONCURRENCY = 320
SHARD_TOTAL_REQUESTS = 640
# Append-heavy streaming cell: a session born at STREAM_N0 rows grows
# by STREAM_APPEND_ROWS per block with a small query burst in between.
# The paired comparison is incremental splice (SessionMutator) vs
# re-registering the grown memory every block (full re-prepare) — the
# splice advantage grows with n, so the cell runs above the paper's
# n=320 point where the win is unambiguous.
STREAM_N0 = 1024
STREAM_BLOCKS = 24
STREAM_APPEND_ROWS = 8
STREAM_QUERIES_PER_BLOCK = 2
# Quality-tier cells: the same closed-loop load pinned to each tier —
# the serving-layer rendering of the paper's accuracy/latency dial.
# The adaptive cell injects overload (every request best-effort, SLO
# set to half the uncontrolled p95 measured in the same round) and
# compares p95 with and without the AdaptiveQualityController.
QUALITY_TIERS = ("exact", "conservative", "aggressive")
ADAPTIVE_TOTAL = 1920
ADAPTIVE_CONCURRENCY = 320
# Failover cell: two identical closed-loop epochs against a 3-shard,
# replication-2 thread-mode cluster — a steady baseline and one where a
# primary shard is killed a third of the way in.  Client-side p95 over
# each epoch gives the latency cost of a shard death; zero lost
# requests is the contract (errors in either epoch abort the run).
FAILOVER_SESSIONS = 6
FAILOVER_TOTAL = 240
FAILOVER_CONCURRENCY = 24
FAILOVER_SHARDS = 3
FAILOVER_REPLICATION = 2
# Many-tenant fusion pair: one closed-loop client per session (each
# tenant fires its next query when the previous response lands), the
# realistic many-tenant arrival shape and the worst case for
# per-session grouping — every session has exactly one request in
# flight, so per-session dispatch degenerates to batch one.  The same
# load runs fused (cross-session ragged dispatch) vs unfused
# (per-session grouping pinned) back to back; the paired in-round wall
# ratio is the dimensionless headline the gate tracks.
MANY_TENANT_SESSIONS = 64
MANY_TENANT_QUERIES_PER_SESSION = 5
# Two-tier spill pair: round-robin churn over more tenants than the
# prepared-key cache's RAM tier holds (capacity = two entries), so
# every checkout is a miss.  With the disk tier on, an eviction spills
# the prepared artifact and the next miss promotes it back by mmap;
# with it off, every miss re-pays the full column sort.  Runs at a
# large n (the sort is what the tier amortizes), times the
# checkout/release pair only, and the paired in-round wall ratio is
# the dimensionless headline the gate tracks.
SPILL_SESSIONS = 6
SPILL_N = 2048
SPILL_D = 64
SPILL_PASSES = 2
# Observability overhead pair: the identical headline closed-loop load
# with tracing disabled (0.0 — the A/A control, and the configuration
# whose overhead the <5% acceptance bar constrains), at a realistic
# production sampling rate (0.05), and at 100% sampling (every request
# grows a full span tree — the worst case, and the source of the
# exported trace JSONL).
OBSERVABILITY_RATES = (0.0, 0.05, 1.0)


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _served_once(key, value, queries, concurrency, sessions=1, tier=None):
    server = make_server(
        max_batch=MAX_BATCH, max_wait=MAX_WAIT, workers=max(1, sessions)
    )
    ids = []
    for s in range(sessions):
        sid = f"bench-s{s}"
        server.register_session(sid, key, value)
        ids.append(sid)
    with server:
        report = run_load(
            server, ids, queries, concurrency=concurrency, tier=tier
        )
    if report.errors:
        raise RuntimeError(f"{report.errors} serving errors")
    return report


def _traced_once(key, value, queries, concurrency, rate):
    """One served round with tracing at ``rate``; returns the load
    report and the spans the run produced (drained, exportable)."""
    server = make_server(
        max_batch=MAX_BATCH, max_wait=MAX_WAIT, trace_sample_rate=rate
    )
    server.register_session("bench-s0", key, value)
    with server:
        report = run_load(
            server, ["bench-s0"], queries, concurrency=concurrency
        )
    if report.errors:
        raise RuntimeError(f"{report.errors} traced serving errors")
    return report, server.trace_spans()


def _sharded_once(key, value, queries, shards, spawn, concurrency, sessions):
    cluster = make_cluster(
        shards,
        max_batch=MAX_BATCH,
        max_wait=MAX_WAIT,
        workers_per_shard=1,
        spawn=spawn,
    )
    ids = []
    for s in range(sessions):
        sid = f"bench-shard-s{s}"
        cluster.register_session(sid, key, value)
        ids.append(sid)
    with cluster:
        report = run_load(cluster, ids, queries, concurrency=concurrency)
    if report.errors:
        raise RuntimeError(f"{report.errors} sharded serving errors")
    return report


def _sharded_cell(walls, reports, shards, mode, concurrency, sessions):
    wall = _median(walls)
    report = reports[walls.index(wall)]
    aggregate = report.snapshot["cluster"]
    return {
        "shards": shards,
        "mode": mode,
        "sessions": sessions,
        "concurrency": concurrency,
        "workers_per_shard": 1,
        "max_batch_size": MAX_BATCH,
        "max_wait_seconds": MAX_WAIT,
        "seconds": wall,
        "throughput_qps": report.total_requests / wall,
        "load_imbalance": aggregate["load_imbalance"],
        "sessions_per_shard": aggregate["sessions_per_shard"],
        "completed_per_shard": aggregate["completed_per_shard"],
        "latency_seconds": aggregate["latency_seconds"],
    }


def _quality_cell(tier, walls, reports, concurrency):
    wall = _median(walls)
    report = reports[walls.index(wall)]
    snap = report.snapshot
    return {
        "tier": tier,
        "concurrency": concurrency,
        "max_batch_size": MAX_BATCH,
        "max_wait_seconds": MAX_WAIT,
        "seconds": wall,
        "throughput_qps": report.total_requests / wall,
        "mean_batch_size": snap["mean_batch_size"],
        "latency_seconds": snap["latency_seconds"],
    }


def _served_cell(walls, reports, concurrency, sessions):
    wall = _median(walls)
    report = reports[walls.index(wall)]
    snap = report.snapshot
    return {
        "concurrency": concurrency,
        "sessions": sessions,
        "workers": max(1, sessions),
        "max_batch_size": MAX_BATCH,
        "max_wait_seconds": MAX_WAIT,
        "seconds": wall,
        "throughput_qps": report.total_requests / wall,
        "mean_batch_size": snap["mean_batch_size"],
        "batch_size_histogram": snap["batch_size_histogram"],
        "latency_seconds": snap["latency_seconds"],
        # Where the latency went: time queued before a worker claimed
        # the request vs time inside the claimed batch's service.
        "mean_queue_wait_seconds": snap["mean_queue_wait_seconds"],
        "mean_service_seconds": snap["mean_service_seconds"],
        "cache_hit_rate": snap["cache"]["hit_rate"],
    }


def run(
    repeats: int = 5,
    smoke: bool = False,
    shard_mode: str = "auto",
    trace_output: str | None = None,
) -> dict:
    n, d, total = (64, 16, 64) if smoke else (N, D, TOTAL_REQUESTS)
    concurrencies = (8, 16) if smoke else CONCURRENCIES
    repeats = 1 if smoke else max(1, repeats)
    cores = os.cpu_count() or 1
    if shard_mode == "auto":
        # Spawned shards only pay off with real cores to land on; on a
        # one-core container the pipe hops just add latency.
        shard_mode = "process" if cores > 1 and not smoke else "thread"
    shard_counts = (1, 2) if smoke else SHARD_COUNTS
    shard_sessions = 4 if smoke else SHARD_SESSIONS
    shard_concurrency = 16 if smoke else SHARD_CONCURRENCY
    shard_total = 64 if smoke else SHARD_TOTAL_REQUESTS
    stream_n0 = 128 if smoke else STREAM_N0
    stream_blocks = 6 if smoke else STREAM_BLOCKS
    adaptive_total = 192 if smoke else ADAPTIVE_TOTAL
    adaptive_concurrency = 48 if smoke else ADAPTIVE_CONCURRENCY
    fo_sessions = 4 if smoke else FAILOVER_SESSIONS
    fo_total = 60 if smoke else FAILOVER_TOTAL
    fo_concurrency = 6 if smoke else FAILOVER_CONCURRENCY
    mt_sessions = 8 if smoke else MANY_TENANT_SESSIONS
    mt_per_session = 4 if smoke else MANY_TENANT_QUERIES_PER_SESSION
    spill_n = 256 if smoke else SPILL_N
    spill_sessions = 4 if smoke else SPILL_SESSIONS
    spill_passes = 1 if smoke else SPILL_PASSES
    # One closed-loop client per tenant session: run_load pins client c
    # to session c when concurrency equals the session count.
    mt_concurrency = mt_sessions

    rng = np.random.default_rng(0)
    key = rng.normal(size=(n, d))
    value = rng.normal(size=(n, d))
    queries = rng.normal(size=(total, d))
    shard_queries = rng.normal(size=(shard_total, d))
    stream_key = rng.normal(size=(stream_n0, d))
    stream_value = rng.normal(size=(stream_n0, d))
    stream_blocks_data = [
        (
            rng.normal(size=(STREAM_APPEND_ROWS, d)),
            rng.normal(size=(STREAM_APPEND_ROWS, d)),
        )
        for _ in range(stream_blocks)
    ]
    stream_queries = rng.normal(
        size=(stream_blocks, STREAM_QUERIES_PER_BLOCK, d)
    )
    adaptive_queries = rng.normal(size=(adaptive_total, d))
    fo_keys = [rng.normal(size=(n, d)) for _ in range(fo_sessions)]
    fo_values = [rng.normal(size=(n, d)) for _ in range(fo_sessions)]
    fo_queries = rng.normal(size=(fo_total, d))
    mt_keys = [rng.normal(size=(n, d)) for _ in range(mt_sessions)]
    mt_values = [rng.normal(size=(n, d)) for _ in range(mt_sessions)]
    mt_queries = rng.normal(size=(mt_sessions * mt_per_session, d))

    headline_concurrency = min(
        (c for c in concurrencies if c >= HEADLINE_CONCURRENCY),
        default=max(concurrencies),
    )

    # Every measurement of round r runs back to back, so each round's
    # serial-vs-served comparison sees the same machine conditions; the
    # cells report median walls and the headline reports the median of
    # the per-round paired speedups, which machine-speed drift between
    # rounds cannot skew.
    serial_walls = {engine: [] for engine in ("reference", "vectorized")}
    served_walls = {c: [] for c in concurrencies}
    served_reports = {c: [] for c in concurrencies}
    multi_walls, multi_reports = [], []
    sharded_walls = {s: [] for s in shard_counts}
    sharded_reports = {s: [] for s in shard_counts}
    paired_speedups = []
    paired_shard_speedups = {s: [] for s in shard_counts}
    stream_inc_walls, stream_rep_walls, paired_stream_speedups = [], [], []
    quality_walls = {tier: [] for tier in QUALITY_TIERS}
    quality_reports = {tier: [] for tier in QUALITY_TIERS}
    paired_quality_speedups, paired_dial_speedups = [], []
    adaptive_slos, adaptive_p95_pairs, paired_relief = [], [], []
    adaptive_infos, adaptive_rejected = [], 0
    failover_cells, paired_fo_degradations = [], []
    mt_fused_walls, mt_unfused_walls = [], []
    mt_fused_reports, paired_mt_speedups = [], []
    spill_two_cells, spill_base_cells, paired_spill_speedups = [], [], []
    obs_walls = {rate: [] for rate in OBSERVABILITY_RATES}
    obs_disabled_vs_headline, obs_overheads = [], []
    obs_traced_spans = []
    spawn = shard_mode == "process"
    for _ in range(repeats):
        for engine in serial_walls:
            serial_walls[engine].append(
                serial_dispatch(key, value, queries, engine=engine)
            )
        for concurrency in concurrencies:
            report = _served_once(key, value, queries, concurrency)
            served_walls[concurrency].append(report.wall_seconds)
            served_reports[concurrency].append(report)
        # Two-tenant round: distinct sessions on parallel workers.
        report = _served_once(
            key, value, queries, max(concurrencies), sessions=2
        )
        multi_walls.append(report.wall_seconds)
        multi_reports.append(report)
        round_best_serial = min(
            serial_walls[engine][-1] for engine in serial_walls
        )
        paired_speedups.append(
            round_best_serial / served_walls[headline_concurrency][-1]
        )
        # Observability overhead pair: the identical headline load with
        # tracing disabled / sampled / at 100%, back to back.  The
        # disabled cell doubles as an A/A control against the headline
        # served cell of the same round (its wall ratio is the noise
        # floor the <5% disabled-overhead acceptance bar is read
        # against), and traced/disabled is the full-sampling cost.
        round_obs = {}
        for rate in OBSERVABILITY_RATES:
            obs_report, spans = _traced_once(
                key, value, queries, headline_concurrency, rate
            )
            obs_walls[rate].append(obs_report.wall_seconds)
            round_obs[rate] = obs_report.wall_seconds
            if rate == 1.0:
                obs_traced_spans.append(spans)
        obs_disabled_vs_headline.append(
            round_obs[0.0] / served_walls[headline_concurrency][-1]
        )
        obs_overheads.append(
            {
                rate: round_obs[rate] / round_obs[0.0]
                for rate in OBSERVABILITY_RATES
                if rate > 0.0
            }
        )
        # Shard scaling sweep: the same multi-tenant closed-loop load
        # against 1, 2, ... replicas, paired within the round.
        for shards in shard_counts:
            report = _sharded_once(
                key,
                value,
                shard_queries,
                shards,
                spawn,
                shard_concurrency,
                shard_sessions,
            )
            sharded_walls[shards].append(report.wall_seconds)
            sharded_reports[shards].append(report)
        for shards in shard_counts:
            paired_shard_speedups[shards].append(
                sharded_walls[shard_counts[0]][-1]
                / sharded_walls[shards][-1]
            )
        # Streaming mutable-session pair: incremental splice vs full
        # re-prepare, back to back inside the round so machine drift
        # hits both sides of the ratio equally.
        inc_wall, _ = streaming_dispatch(
            stream_key,
            stream_value,
            stream_blocks_data,
            stream_queries,
            incremental=True,
            max_batch=STREAM_QUERIES_PER_BLOCK,
            max_wait=MAX_WAIT,
        )
        rep_wall, _ = streaming_dispatch(
            stream_key,
            stream_value,
            stream_blocks_data,
            stream_queries,
            incremental=False,
            max_batch=STREAM_QUERIES_PER_BLOCK,
            max_wait=MAX_WAIT,
        )
        stream_inc_walls.append(inc_wall)
        stream_rep_walls.append(rep_wall)
        paired_stream_speedups.append(rep_wall / inc_wall)
        # Quality-tier cells: the identical load pinned to each tier,
        # back to back inside the round — the aggressive/exact wall
        # ratio is the dimensionless dial width the gate tracks.
        for tier in QUALITY_TIERS:
            report = _served_once(
                key, value, queries, headline_concurrency, tier=tier
            )
            quality_walls[tier].append(report.wall_seconds)
            quality_reports[tier].append(report)
        paired_quality_speedups.append(
            quality_walls["exact"][-1] / quality_walls["aggressive"][-1]
        )
        paired_dial_speedups.append(
            quality_walls["conservative"][-1] / quality_walls["aggressive"][-1]
        )
        # Adaptive overload pair: the same injected overload served at
        # a frozen conservative default vs under the SLO controller (SLO =
        # half the uncontrolled p95 of this very round, so the
        # controller always has a violation to react to).
        base_report, _ = adaptive_overload_dispatch(
            key, value, adaptive_queries, adaptive_concurrency,
            max_batch=MAX_BATCH, max_wait=MAX_WAIT,
        )
        p95_uncontrolled = base_report.snapshot["latency_seconds"]["p95"]
        slo = p95_uncontrolled / 2
        ctrl_report, info = adaptive_overload_dispatch(
            key, value, adaptive_queries, adaptive_concurrency,
            slo_p95_seconds=slo, max_batch=MAX_BATCH, max_wait=MAX_WAIT,
        )
        p95_controlled = ctrl_report.snapshot["latency_seconds"]["p95"]
        if base_report.errors or ctrl_report.errors:
            raise RuntimeError(
                f"{base_report.errors + ctrl_report.errors} adaptive-cell "
                "serving errors (degradation must not fail requests)"
            )
        adaptive_slos.append(slo)
        adaptive_p95_pairs.append((p95_uncontrolled, p95_controlled))
        paired_relief.append(p95_uncontrolled / p95_controlled)
        adaptive_infos.append(info)
        adaptive_rejected += (
            base_report.snapshot["rejected"]
            + ctrl_report.snapshot["rejected"]
        )
        # Failover pair: a steady epoch and a kill epoch against a
        # fresh replicated cluster, back to back inside the round; the
        # p95 degradation ratio is paired (machine-drift-immune) and
        # errors must stay zero — a shard death costs latency, never
        # answers.
        fo_cell = failover_dispatch(
            fo_keys,
            fo_values,
            fo_queries,
            fo_concurrency,
            shards=FAILOVER_SHARDS,
            replication=FAILOVER_REPLICATION,
            max_batch=MAX_BATCH,
            max_wait=MAX_WAIT,
        )
        lost = fo_cell["steady"]["errors"] + fo_cell["kill_window"]["errors"]
        if lost:
            raise RuntimeError(
                f"{lost} failover-cell serving errors "
                "(failover must not lose requests)"
            )
        failover_cells.append(fo_cell)
        paired_fo_degradations.append(fo_cell["p95_degradation"])
        # Many-tenant fusion pair: identical load, fused vs unfused,
        # back to back inside the round so the speedup is paired.
        fused_report = many_tenant_dispatch(
            mt_keys, mt_values, mt_queries, mt_concurrency,
            fused=True, max_batch=MAX_BATCH, max_wait=MAX_WAIT,
        )
        unfused_report = many_tenant_dispatch(
            mt_keys, mt_values, mt_queries, mt_concurrency,
            fused=False, max_batch=MAX_BATCH, max_wait=MAX_WAIT,
        )
        mt_fused_walls.append(fused_report.wall_seconds)
        mt_unfused_walls.append(unfused_report.wall_seconds)
        mt_fused_reports.append(fused_report)
        paired_mt_speedups.append(
            unfused_report.wall_seconds / fused_report.wall_seconds
        )
        # Two-tier spill pair: identical cold-tenant churn with the
        # disk tier on vs off, back to back inside the round.
        spill_two = spill_dispatch(
            sessions=spill_sessions,
            n=spill_n,
            d=SPILL_D,
            passes=spill_passes,
            two_tier=True,
        )
        spill_base = spill_dispatch(
            sessions=spill_sessions,
            n=spill_n,
            d=SPILL_D,
            passes=spill_passes,
            two_tier=False,
        )
        spill_two_cells.append(spill_two)
        spill_base_cells.append(spill_base)
        paired_spill_speedups.append(
            spill_base["wall_seconds"] / spill_two["wall_seconds"]
        )

    report = {
        "benchmark": "serve/dynamic_batching",
        "smoke": smoke,
        "n": n,
        "d": d,
        "total_requests": total,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "serial": [
            {
                "engine": engine,
                "seconds": _median(walls),
                "throughput_qps": total / _median(walls),
            }
            for engine, walls in serial_walls.items()
        ],
        "cores": cores,
        "served": [
            _served_cell(
                served_walls[c], served_reports[c], c, sessions=1
            )
            for c in concurrencies
        ]
        + [
            _served_cell(
                multi_walls, multi_reports, max(concurrencies), sessions=2
            )
        ],
        "sharded": [
            {
                **_sharded_cell(
                    sharded_walls[s],
                    sharded_reports[s],
                    s,
                    shard_mode,
                    shard_concurrency,
                    shard_sessions,
                ),
                "speedup_vs_one_shard": _median(paired_shard_speedups[s]),
            }
            for s in shard_counts
        ],
    }

    best_serial = max(c["throughput_qps"] for c in report["serial"])
    headline_cell = next(
        c
        for c in report["served"]
        if c["concurrency"] == headline_concurrency and c["sessions"] == 1
    )
    report["headline"] = {
        "concurrency": headline_cell["concurrency"],
        "served_throughput_qps": headline_cell["throughput_qps"],
        "best_serial_throughput_qps": best_serial,
        "batched_speedup_vs_serial": _median(paired_speedups),
        "paired_speedups_per_round": paired_speedups,
    }
    report["quality_tiers"] = [
        _quality_cell(
            tier,
            quality_walls[tier],
            quality_reports[tier],
            headline_concurrency,
        )
        for tier in QUALITY_TIERS
    ]
    report["quality_headline"] = {
        "concurrency": headline_concurrency,
        # Both paired in-round wall ratios are dimensionless and
        # machine-drift-immune, and both are gated.  The *dial* ratio
        # (conservative/aggressive — the paper's two operating points)
        # is the one the degradation controller trades along, and is
        # > 1 in software.  The exact ratio is < 1 here: the exact tier
        # is a single BLAS GEMM, which no software approximation beats
        # at these sizes — approximation pays on the paper's
        # accelerator (see the fig14 hardware model), not against an
        # optimized GEMM.  Gating it still pins the relative cost of
        # the three tiers against drift.
        "aggressive_speedup_vs_exact": _median(paired_quality_speedups),
        "aggressive_speedup_vs_conservative": _median(paired_dial_speedups),
        "paired_speedups_per_round": paired_quality_speedups,
        "paired_dial_speedups_per_round": paired_dial_speedups,
    }
    relief = _median(paired_relief)
    median_round = paired_relief.index(relief)
    report["adaptive"] = {
        "requests": adaptive_total,
        "concurrency": adaptive_concurrency,
        "slo_p95_seconds": adaptive_slos[median_round],
        "p95_uncontrolled_seconds": adaptive_p95_pairs[median_round][0],
        "p95_controlled_seconds": adaptive_p95_pairs[median_round][1],
        # > 1.0 means the controller lowered p95 under the injected
        # overload; informational (controller benefit is timing- and
        # machine-dependent), but `rejected` must stay 0 — quality is
        # shed, availability is not.
        "p95_relief": relief,
        "paired_relief_per_round": paired_relief,
        "rejected": adaptive_rejected,
        "controller": adaptive_infos[median_round],
    }
    fo_degradation = _median(paired_fo_degradations)
    fo_median_cell = failover_cells[
        paired_fo_degradations.index(fo_degradation)
    ]
    report["failover"] = {
        **fo_median_cell,
        "sessions": fo_sessions,
        "requests_per_epoch": fo_total,
        # Informational (thread-mode latency under a 1-core container
        # is timing-dependent); the hard contract — zero lost requests
        # — is enforced above and by the chaos suite.
        "p95_degradation": fo_degradation,
        "degradation_per_round": paired_fo_degradations,
    }
    mt_speedup = _median(paired_mt_speedups)
    mt_median_report = mt_fused_reports[
        paired_mt_speedups.index(mt_speedup)
    ]
    mt_snap = mt_median_report.snapshot
    report["many_tenant"] = {
        "sessions": mt_sessions,
        "queries_per_session": mt_per_session,
        "total_requests": mt_sessions * mt_per_session,
        "concurrency": mt_concurrency,
        "max_batch_size": MAX_BATCH,
        "max_wait_seconds": MAX_WAIT,
        "fused_seconds": _median(mt_fused_walls),
        "unfused_seconds": _median(mt_unfused_walls),
        "fused_throughput_qps": (
            mt_sessions * mt_per_session / _median(mt_fused_walls)
        ),
        "unfused_throughput_qps": (
            mt_sessions * mt_per_session / _median(mt_unfused_walls)
        ),
        # Paired in-round wall ratio (dimensionless, gated): how much
        # cross-session ragged fusion buys over the degenerate
        # per-session grouping under the same many-tenant load.
        "fused_speedup_vs_unfused": mt_speedup,
        "paired_speedups_per_round": paired_mt_speedups,
        # Fusion telemetry of the median fused round, from the PR 7
        # metrics surface: segments-per-batch histogram and headline
        # counters.
        "fused_batches": mt_snap["fused"]["fused_batches"],
        "max_segments": mt_snap["fused"]["max_segments"],
        "fused_segments_histogram": mt_snap["fused"]["segment_histogram"],
        "mean_batch_size": mt_snap["mean_batch_size"],
        "latency_seconds": mt_snap["latency_seconds"],
    }
    disabled_wall = _median(obs_walls[0.0])
    traced_overhead = _median([cell[1.0] for cell in obs_overheads])
    median_obs_round = [cell[1.0] for cell in obs_overheads].index(
        traced_overhead
    )
    exported = 0
    if trace_output is not None:
        spans = obs_traced_spans[median_obs_round]
        with open(trace_output, "w") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        exported = len(spans)
    report["observability"] = {
        "concurrency": headline_concurrency,
        "cells": [
            {
                "trace_sample_rate": rate,
                "seconds": _median(obs_walls[rate]),
                "throughput_qps": total / _median(obs_walls[rate]),
            }
            for rate in OBSERVABILITY_RATES
        ],
        # A/A control: the disabled cell against the plain headline
        # served cell of the same round.  This is the ratio the <5%
        # disabled-overhead acceptance bar constrains — both sides run
        # the identical configuration, so it also measures the noise
        # floor every other ratio in this file lives on.
        "disabled_vs_headline": _median(obs_disabled_vs_headline),
        "disabled_vs_headline_per_round": obs_disabled_vs_headline,
        # Full-sampling cost, paired in-round: wall at rate r over wall
        # with tracing disabled.  Informational — the span machinery is
        # off by default and the disabled ratio is the one that gates.
        "tracing_overhead": traced_overhead,
        "sampled_overhead": _median(
            [cell[0.05] for cell in obs_overheads]
        ),
        "overheads_per_round": obs_overheads,
        "trace_spans_exported": exported,
        "trace_output": str(trace_output) if trace_output else None,
    }
    appended = stream_blocks * STREAM_APPEND_ROWS
    report["streaming"] = {
        "n0": stream_n0,
        "d": d,
        "blocks": stream_blocks,
        "append_rows": STREAM_APPEND_ROWS,
        "queries_per_block": STREAM_QUERIES_PER_BLOCK,
        "final_rows": stream_n0 + appended,
        "incremental_seconds": _median(stream_inc_walls),
        "reprepare_seconds": _median(stream_rep_walls),
        "append_throughput_rows_per_second": appended
        / _median(stream_inc_walls),
    }
    report["streaming_headline"] = {
        "n0": stream_n0,
        "blocks": stream_blocks,
        "append_rows": STREAM_APPEND_ROWS,
        # Single-threaded paired ratio: unlike the shard sweep this is
        # not core-bound, so the gate trusts it from any machine.
        "append_speedup_vs_reprepare": _median(paired_stream_speedups),
        "paired_speedups_per_round": paired_stream_speedups,
    }
    def _spill_mode_cell(cells):
        return {
            "wall_seconds": _median([c["wall_seconds"] for c in cells]),
            "p50_checkout_seconds": _median(
                [c["p50_checkout_seconds"] for c in cells]
            ),
            "p95_checkout_seconds": _median(
                [c["p95_checkout_seconds"] for c in cells]
            ),
            # Counter semantics are deterministic (same churn every
            # round), so any round's counts describe them all.
            "hit_rate": cells[-1]["hit_rate"],
            "spills": cells[-1]["spills"],
            "promotes": cells[-1]["promotes"],
        }

    report["spill"] = {
        "sessions": spill_sessions,
        "n": spill_n,
        "d": SPILL_D,
        "passes": spill_passes,
        "ram_capacity_entries": 2,
        "two_tier": _spill_mode_cell(spill_two_cells),
        "reprepare": _spill_mode_cell(spill_base_cells),
    }
    report["spill_headline"] = {
        "sessions": spill_sessions,
        "n": spill_n,
        # Single-threaded paired ratio (promote-by-mmap vs full
        # re-sort on every checkout) — meaningful on any machine,
        # 1-core CI containers included.
        "promote_speedup_vs_reprepare": _median(paired_spill_speedups),
        "paired_speedups_per_round": paired_spill_speedups,
    }
    # Network cell: localhost socket frontend vs in-process dispatch
    # (the wire-overhead pair) plus the open-loop many-tenant curve
    # with coordinated-omission-safe percentiles.  One round: the
    # overhead pair is internally paired (same server, same requests,
    # back to back) and the open-loop points are rate-calibrated to
    # the measured wire capacity, so machine drift cancels within the
    # cell the same way the repeat-median protects the others.
    report["network"] = network_cell(smoke=smoke)
    top_shards = shard_counts[-1]
    report["sharded_headline"] = {
        "shards": top_shards,
        "mode": shard_mode,
        "cores": cores,
        "concurrency": shard_concurrency,
        "sessions": shard_sessions,
        "speedup_vs_one_shard": _median(paired_shard_speedups[top_shards]),
        "paired_speedups_per_round": paired_shard_speedups[top_shards],
        # Replica scaling is core-bound: every shard runs the full
        # single-server stack, so a one-core container pins this near
        # 1.0x regardless of mode (see the module docstring).
        "core_bound": cores < top_shards,
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_serve.json",
        help="output path (default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="runs per cell (the median is reported)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI-sized pass (n=64, d=16, 64 requests)",
    )
    parser.add_argument(
        "--shard-mode", choices=("auto", "thread", "process"),
        default="auto",
        help="shard backing for the scaling sweep: spawned processes "
        "(true parallelism), threads, or auto (processes when the "
        "machine has more than one core)",
    )
    parser.add_argument(
        "--trace-output", default="trace_serve.jsonl",
        help="JSONL path for the spans of the fully-traced "
        "observability cell (default: trace_serve.jsonl); 'none' "
        "disables the export",
    )
    args = parser.parse_args()
    trace_output = (
        None if args.trace_output.lower() == "none" else args.trace_output
    )
    report = run(
        repeats=args.repeats,
        smoke=args.smoke,
        shard_mode=args.shard_mode,
        trace_output=trace_output,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.output}")
    for cell in report["serial"]:
        print(
            f"  serial {cell['engine']:>11}: {cell['seconds'] * 1e3:8.2f} ms "
            f"({cell['throughput_qps']:8.0f} q/s)"
        )
    for cell in report["served"]:
        print(
            f"  served c={cell['concurrency']:>4} x{cell['sessions']} "
            f"sessions: {cell['seconds'] * 1e3:8.2f} ms "
            f"({cell['throughput_qps']:8.0f} q/s, "
            f"mean batch {cell['mean_batch_size']:.1f}, "
            f"p99 {cell['latency_seconds']['p99'] * 1e3:.2f} ms)"
        )
    for cell in report["sharded"]:
        print(
            f"  sharded x{cell['shards']} ({cell['mode']}): "
            f"{cell['seconds'] * 1e3:8.2f} ms "
            f"({cell['throughput_qps']:8.0f} q/s, "
            f"{cell['speedup_vs_one_shard']:.2f}x vs 1 shard, "
            f"imbalance {cell['load_imbalance']:.2f})"
        )
    for cell in report["quality_tiers"]:
        print(
            f"  tier {cell['tier']:>12}: {cell['seconds'] * 1e3:8.2f} ms "
            f"({cell['throughput_qps']:8.0f} q/s, "
            f"p95 {cell['latency_seconds']['p95'] * 1e3:.2f} ms)"
        )
    quality = report["quality_headline"]
    print(
        f"  quality headline: aggressive "
        f"{quality['aggressive_speedup_vs_conservative']:.2f}x over "
        f"conservative ({quality['aggressive_speedup_vs_exact']:.2f}x vs "
        f"exact-GEMM) at {quality['concurrency']} in flight"
    )
    adaptive = report["adaptive"]
    print(
        f"  adaptive (SLO {adaptive['slo_p95_seconds'] * 1e3:.1f} ms, "
        f"{adaptive['concurrency']} in flight): p95 "
        f"{adaptive['p95_uncontrolled_seconds'] * 1e3:.2f} ms uncontrolled vs "
        f"{adaptive['p95_controlled_seconds'] * 1e3:.2f} ms controlled "
        f"({adaptive['p95_relief']:.2f}x relief, "
        f"{adaptive['controller']['downgrades']} downgrade(s), "
        f"{adaptive['rejected']} rejected)"
    )
    failover = report["failover"]
    print(
        f"  failover x{failover['shards']} R={failover['replication']}: "
        f"steady p95 {failover['steady']['p95_ms']:.2f} ms vs kill-window "
        f"p95 {failover['kill_window']['p95_ms']:.2f} ms "
        f"({failover['p95_degradation']:.2f}x, "
        f"{failover['failover']['failovers']} failover(s), "
        f"{failover['steady']['errors'] + failover['kill_window']['errors']} "
        f"lost)"
    )
    tenants = report["many_tenant"]
    print(
        f"  many-tenant x{tenants['sessions']} sessions "
        f"(c={tenants['concurrency']}): fused "
        f"{tenants['fused_seconds'] * 1e3:8.2f} ms vs unfused "
        f"{tenants['unfused_seconds'] * 1e3:8.2f} ms "
        f"({tenants['fused_speedup_vs_unfused']:.2f}x, "
        f"max {tenants['max_segments']} segments/batch)"
    )
    streaming = report["streaming"]
    print(
        f"  streaming n0={streaming['n0']} +{streaming['append_rows']}x"
        f"{streaming['blocks']} rows: incremental "
        f"{streaming['incremental_seconds'] * 1e3:8.2f} ms vs re-prepare "
        f"{streaming['reprepare_seconds'] * 1e3:8.2f} ms "
        f"({report['streaming_headline']['append_speedup_vs_reprepare']:.2f}x)"
    )
    obs = report["observability"]
    print(
        f"  observability c={obs['concurrency']}: disabled-vs-headline "
        f"{obs['disabled_vs_headline']:.3f}x (A/A), sampled@0.05 "
        f"{obs['sampled_overhead']:.3f}x, traced@1.0 "
        f"{obs['tracing_overhead']:.3f}x, "
        f"{obs['trace_spans_exported']} spans exported"
    )
    network = report["network"]
    open_loop = network["open_loop"]
    print(
        f"  network ({network['transport']}): wire overhead "
        f"{network['wire_overhead_seconds_mean'] * 1e3:.3f} ms/req "
        f"({network['wire_overhead_ratio']:.2f}x in-process); open-loop "
        f"@{open_loop['offered_rate_qps']:.0f} q/s CO-safe p99 "
        f"{open_loop['latency_seconds']['p99'] * 1e3:.2f} ms "
        f"({open_loop['errors']} errors)"
    )
    headline = report["headline"]
    print(
        f"  headline: {headline['batched_speedup_vs_serial']:.2f}x over the "
        f"best serial baseline at {headline['concurrency']} in flight"
    )
    sharded = report["sharded_headline"]
    bound = " (core-bound)" if sharded["core_bound"] else ""
    print(
        f"  sharded headline: {sharded['speedup_vs_one_shard']:.2f}x at "
        f"{sharded['shards']} shards on {sharded['cores']} core(s), "
        f"{sharded['mode']} mode{bound}"
    )


if __name__ == "__main__":
    main()
