"""bAbI question answering with MemN2N and A3 approximation.

Trains an End-to-End Memory Network on generated bAbI-style stories, then
answers test questions with exact, approximate (conservative and
aggressive), and fixed-point attention, printing a worked story so you
can see the attention pick the supporting sentence.

Usage::

    python examples/babi_qa.py [--scale tiny|small]
"""

import argparse

import numpy as np

from repro.core.backends import ApproximateBackend, ExactBackend, QuantizedBackend
from repro.core.config import aggressive, conservative
from repro.workloads.registry import make_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "small"), default="tiny")
    args = parser.parse_args()

    print(f"training MemN2N ({args.scale} scale)...")
    workload = make_workload("MemN2N", scale=args.scale)
    workload.prepare()
    print(f"  train accuracy: {workload.train_accuracy:.3f}")
    mean_n, max_n = workload.attention_rows()
    print(f"  test stories: mean {mean_n:.1f} sentences, max {max_n}")

    # ------------------------------------------------------------------
    # Evaluate with every backend.
    # ------------------------------------------------------------------
    backends = {
        "exact": ExactBackend(),
        "approx (conservative)": ApproximateBackend(conservative()),
        "approx (aggressive)": ApproximateBackend(aggressive()),
        "fixed-point (i=4, f=4)": QuantizedBackend(
            i=4, f=4, d=workload.attention_dim
        ),
    }
    print("\nbackend comparison on the test set:")
    for label, backend in backends.items():
        result = workload.evaluate(backend)
        stats = getattr(backend, "stats", None)
        selected = (
            f", candidates/n={stats.candidate_fraction:.2f}"
            if stats and stats.candidate_fraction < 1.0
            else ""
        )
        print(f"  {label:<24} accuracy={result.metric:.3f}{selected}")

    # ------------------------------------------------------------------
    # Show one story end to end.
    # ------------------------------------------------------------------
    story = workload.test_data.stories[0]
    vocab = workload.train_data.vocab
    print("\nworked example:")
    for idx, sentence in enumerate(story.sentences[:12]):
        marker = "*" if idx in story.support else " "
        print(f"  {marker} [{idx:2d}] {' '.join(sentence)}")
    if story.num_sentences > 12:
        print(f"    ... ({story.num_sentences - 12} more sentences)")
    print(f"  Q: {' '.join(story.question)}?   gold: {story.answer}")

    sentence_ids = [vocab.encode(s) for s in story.sentences]
    question_ids = vocab.encode(story.question)
    backend = ApproximateBackend(conservative())
    prediction = workload.model.predict(sentence_ids, question_ids, backend)
    trace = backend.stats.traces[-1]
    print(f"  approximate answer: {vocab.decode_one(prediction)} "
          f"(last hop attended rows {trace.kept_rows.tolist()}, "
          f"weights {np.round(trace.weights, 2).tolist()})")


if __name__ == "__main__":
    main()
