"""Design-space exploration: pick an (M, T) operating point.

Sweeps the two approximation knobs on a trained workload, projects each
point onto the cycle-level hardware model, and prints the accuracy /
throughput / energy trade-off — the methodology a user of A3 would follow
to choose their own operating point (Section VI-B: "a user always can
select the degree of approximation").

Usage::

    python examples/design_space.py [--workload MemN2N|KV-MemN2N|BERT]
"""

import argparse

from repro.core.backends import ApproximateBackend, ExactBackend
from repro.core.config import ApproximationConfig
from repro.hardware.config import HardwareConfig
from repro.hardware.energy import EnergyModel
from repro.hardware.pipeline import ApproxA3Pipeline, BaseA3Pipeline
from repro.workloads.registry import make_workload

M_FRACTIONS = (1.0, 0.5, 0.25, 0.125)
T_PERCENTS = (2.5, 5.0, 10.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", choices=("MemN2N", "KV-MemN2N", "BERT"), default="KV-MemN2N"
    )
    parser.add_argument("--scale", choices=("tiny", "small"), default="tiny")
    parser.add_argument("--limit", type=int, default=30)
    args = parser.parse_args()

    print(f"training {args.workload} ({args.scale} scale)...")
    workload = make_workload(args.workload, scale=args.scale)
    workload.prepare()
    baseline = workload.evaluate(ExactBackend(), limit=args.limit)
    print(f"  exact {baseline.metric_name}: {baseline.metric:.3f}")

    hardware = HardwareConfig()
    base_pipeline = BaseA3Pipeline(hardware)
    approx_pipeline = ApproxA3Pipeline(hardware)
    energy_model = EnergyModel(include_approximation=True)

    mean_n, _ = workload.attention_rows()
    base_run = base_pipeline.run([round(mean_n)] * 100)
    base_energy = EnergyModel(include_approximation=False).energy(base_run)
    print(f"  base A3 @ n={round(mean_n)}: "
          f"{base_run.throughput_qps():.3e} ops/s, "
          f"{base_energy.ops_per_joule():.3e} ops/J")

    print(f"\n{'M':>7} {'T':>6} {'metric':>7} {'C/n':>5} {'K/n':>5} "
          f"{'speedup':>8} {'energy x':>8}")
    for m_fraction in M_FRACTIONS:
        for t_percent in T_PERCENTS:
            config = ApproximationConfig(
                m_fraction=m_fraction, t_percent=t_percent
            )
            backend = ApproximateBackend(config)
            result = workload.evaluate(backend, limit=args.limit)
            traces = backend.stats.traces
            run = approx_pipeline.run_traces(traces)
            report = energy_model.energy(run)
            speedup = run.throughput_qps() / base_pipeline.run(
                [t.n for t in traces]
            ).throughput_qps()
            energy_gain = report.ops_per_joule() / EnergyModel(
                include_approximation=False
            ).energy(base_pipeline.run([t.n for t in traces])).ops_per_joule()
            print(
                f"{m_fraction:>6.3f}n {t_percent:>5.1f}% "
                f"{result.metric:>7.3f} "
                f"{backend.stats.candidate_fraction:>5.2f} "
                f"{backend.stats.kept_fraction:>5.2f} "
                f"{speedup:>7.2f}x {energy_gain:>7.2f}x"
            )
    print("\npaper operating points: conservative = (0.5n, 5%), "
          "aggressive = (0.125n, 10%)")


if __name__ == "__main__":
    main()
