"""Hardware report: area, power, timing, and energy of an A3 instance.

Prints Table I, the closed-form timing of the base pipeline, a simulated
approximate run at user-chosen selection sizes, the per-module energy
breakdown (Figure 15b), and the comparison against the CPU/GPU baseline
models — all without training anything.

Usage::

    python examples/energy_report.py [--n 320] [--m 160] [--c 128] [--k 16]
"""

import argparse

from repro.experiments.table1_area_power import run as table1_run
from repro.hardware.baselines import CpuModel, GpuModel
from repro.hardware.config import HardwareConfig
from repro.hardware.energy import EnergyModel, total_area_mm2
from repro.hardware.pipeline import ApproxA3Pipeline, BaseA3Pipeline, QueryShape


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=320, help="key rows")
    parser.add_argument("--m", type=int, default=160, help="greedy iterations")
    parser.add_argument("--c", type=int, default=128, help="candidates")
    parser.add_argument("--k", type=int, default=16, help="post-scoring survivors")
    parser.add_argument("--queries", type=int, default=1000)
    args = parser.parse_args()

    print(table1_run().format_table())

    hardware = HardwareConfig()
    base = BaseA3Pipeline(hardware)
    print(f"\nbase A3 timing @ n={args.n} (1 GHz):")
    print(f"  latency  : {base.query_latency_cycles(args.n)} cycles "
          "(closed form 3n+27)")
    print(f"  interval : {base.query_interval_cycles(args.n)} cycles "
          "(closed form n+9)")

    shape = QueryShape(n=args.n, m=args.m, candidates=args.c, kept=args.k)
    approx = ApproxA3Pipeline(hardware)
    base_run = base.run([args.n] * args.queries)
    approx_run = approx.run([shape] * args.queries)
    print(f"\napproximate A3 @ (n={args.n}, M={args.m}, C={args.c}, K={args.k}):")
    print(f"  latency  : {approx_run.latencies[0]} cycles "
          f"(vs base {base_run.latencies[0]})")
    print(f"  throughput: {approx_run.throughput_qps():.3e} ops/s "
          f"({approx_run.throughput_qps() / base_run.throughput_qps():.2f}x base)")

    base_energy = EnergyModel(include_approximation=False).energy(base_run)
    approx_energy = EnergyModel(include_approximation=True).energy(approx_run)
    print("\nenergy per attention op:")
    print(f"  base A3  : {base_energy.energy_per_op_j():.3e} J "
          f"({base_energy.ops_per_joule():.3e} ops/J)")
    print(f"  approx A3: {approx_energy.energy_per_op_j():.3e} J "
          f"({approx_energy.ops_per_joule():.3e} ops/J)")
    print("  approx A3 breakdown (Figure 15b groups):")
    for group, fraction in approx_energy.breakdown().items():
        print(f"    {group:<44} {100 * fraction:5.1f}%")

    cpu, gpu = CpuModel(), GpuModel()
    cpu_time = cpu.attention_time_s(args.n, hardware.d)
    gpu_time = gpu.attention_time_s(args.n, hardware.d, batch=args.n) / args.n
    print(f"\nbaselines @ n={args.n}, d={hardware.d}:")
    print(f"  {cpu.spec.name}: {1 / cpu_time:.3e} ops/s, "
          f"{cpu.ops_per_joule(args.n, hardware.d):.3e} ops/J "
          f"(die {cpu.spec.die_area_mm2:.0f} mm^2 vs A3 {total_area_mm2():.2f})")
    print(f"  {gpu.spec.name} (batched): {1 / gpu_time:.3e} ops/s, "
          f"{gpu.ops_per_joule(args.n, hardware.d, batch=args.n):.3e} ops/J")
    units = (1 / gpu_time) / approx_run.throughput_qps()
    print("  approximate A3 units to match the GPU on batched "
          f"self-attention: {units:.1f}")


if __name__ == "__main__":
    main()
