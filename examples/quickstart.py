"""Quickstart: exact vs approximate attention in a few lines.

Runs the A3 approximation pipeline on random data, walks the greedy
candidate search of Figure 6 step by step, and shows the accuracy /
work trade-off of the two named operating points.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ApproximateAttention,
    aggressive,
    attention,
    conservative,
    greedy_candidate_search,
    softmax,
)
from repro.core.candidate_search import greedy_search_trace


def main() -> None:
    rng = np.random.default_rng(0)
    n, d = 320, 64  # the paper's largest configuration
    key = rng.normal(size=(n, d))
    value = rng.normal(size=(n, d))
    query = rng.normal(size=d)

    # ------------------------------------------------------------------
    # Exact attention (Figure 1): the reference everything compares to.
    # ------------------------------------------------------------------
    exact_out = attention(key, value, query)
    weights = softmax(key @ query)
    print(f"exact attention over n={n} rows")
    print(f"  top weight {weights.max():.3f}, "
          f"rows above 1% of max: {(weights > 0.01 * weights.max()).sum()}")

    # ------------------------------------------------------------------
    # Approximate attention (Section IV): preprocess once, then attend.
    # ------------------------------------------------------------------
    for label, config in (("conservative", conservative()),
                          ("aggressive", aggressive())):
        approx = ApproximateAttention(config)
        approx.preprocess(key)  # off the critical path
        out, trace = approx.attend(value, query)
        error = np.max(np.abs(out - exact_out))
        captured = weights[trace.kept_rows].sum()
        print(f"{label:>13}: M={trace.m}, candidates C={trace.num_candidates}, "
              f"kept K={trace.num_kept}, captured weight "
              f"{captured:.3f}, max|err|={error:.4f}")
    print("  (random Gaussian data is the worst case: trained attention "
          "is far more skewed, so real workloads lose much less — see "
          "examples/babi_qa.py)")

    # ------------------------------------------------------------------
    # The greedy walk of Figure 6 on the paper's own 4x3 example.
    # ------------------------------------------------------------------
    key6 = np.array([[-0.6, 0.1, 0.8],
                     [0.1, -0.2, -0.9],
                     [0.8, 0.6, 0.7],
                     [0.5, 0.7, 0.5]])
    query6 = np.array([0.8, -0.3, 0.4])
    print("\nFigure 6 walk (greedy scores after each iteration):")
    for entry in greedy_search_trace(key6, query6, m=3, min_skip_heuristic=False):
        print(f"  iter {entry.iteration + 1}: "
              f"max {entry.max_value:+.2f}@row{entry.max_row}, "
              f"min {entry.min_value:+.2f}@row{entry.min_row} "
              f"-> greedy {np.round(entry.greedy_scores, 2)}")
    result = greedy_candidate_search(key6, query6, m=3, min_skip_heuristic=False)
    print(f"  candidates (positive greedy score): {result.candidates.tolist()}")


if __name__ == "__main__":
    main()
