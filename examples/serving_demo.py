"""Serving demo: a dynamic-batching attention service end to end.

Starts an :class:`repro.serve.AttentionServer`, registers tenant
sessions, fires concurrent single-query requests from client threads
(each client blocks on its response before sending the next — so the
batches you see below were formed by the server, not by the clients),
and prints the telemetry the serving layer keeps: the batch-size
histogram, latency percentiles, queue depth, and the prepared-key cache
hit rate.

With ``--sessions N`` the traffic spreads over N tenant sessions
instead of two.  Requests from *different* sessions at the same tier
fuse into single multi-key ragged dispatches
(:meth:`repro.core.ApproximateBackend.attend_many_ragged`), and the
printout adds the cross-session fusion stats: how many batches fused
and how many sessions the widest dispatch spanned.  Try
``--sessions 16 --clients 16`` — every client pinned to its own tenant
is exactly the shape where per-session batching degenerates to batch
one, and where fusion keeps whole-batch dispatches alive.

With ``--shards N`` the same traffic runs against a
:class:`repro.serve.ShardedAttentionServer` instead: N replicas, each
with its own cache/batcher/scheduler stack, sessions placed by
consistent hashing — the printout then adds the per-shard split and the
load-imbalance metric.

With ``--stream-rows K`` the demo finishes with a *streaming* phase:
the first tenant's memory grows by K rows through a
:class:`repro.serve.SessionMutator` append (incremental splice — no
cold re-prepare, the cache entry survives in place) and a few more
requests run against the grown session.

With ``--slo-ms T`` (single-server mode) the demo ends with an
*SLO-aware degradation* phase: an
:class:`repro.serve.AdaptiveQualityController` with a p95 objective of
T milliseconds watches the telemetry while an overload burst of
best-effort clients is fired at the server — watch the controller
degrade the default tier from conservative to aggressive (and restore
it once the burst drains) instead of the queue blowing through the
SLO, with zero rejections.

With ``--replication R`` (sharded mode) every session lives on R
shards of the consistent-hash ring, and with ``--kill-shard`` the demo
crashes one session's primary shard *mid-traffic* (``SIGKILL`` under
``--spawn``, an injected fault in thread mode) while a
:class:`repro.serve.HeartbeatMonitor` watches: requests that were
in flight on the dead shard retry onto a surviving replica, lost
redundancy is rebuilt by mutation-log replay, and the printout shows
the detection event, the liveness map, and the failover counters —
with every request still answered.

With ``--listen HOST:PORT`` the demo becomes a *network server*: the
same server (including ``--shards``/``--spawn`` topologies) is wrapped
in a :class:`repro.serve.NetworkFrontend` and serves the binary wire
protocol until ``Ctrl-C`` (which drains in-flight requests before the
sockets close).  With ``--connect HOST:PORT`` the demo becomes a
*network client*: the traffic phases above run against a remote
frontend through :class:`repro.serve.AttentionClient` — same tenants,
same telemetry printout, batches formed on the far side of the socket.
Server-side knobs (``--shards``, ``--slo-ms``, ``--trace``, ...)
belong on the ``--listen`` process.

With ``--trace`` every request is sampled into a span tree (submit →
queue → batch_formation → dispatch → kernel → resolve; sharded mode
adds the ``cluster_request → rpc`` prefix above it) and the printout
ends with the per-stage latency breakdown, the slowest-request
exemplars, and — with ``--trace-jsonl PATH`` — a JSONL export of every
span.  With ``--metrics`` the demo prints the server's Prometheus text
exposition (cluster-wide, per-shard labelled, in sharded mode).

Usage::

    python examples/serving_demo.py [--clients 16] [--requests 12]
    python examples/serving_demo.py --sessions 16
    python examples/serving_demo.py --shards 2 [--spawn]
    python examples/serving_demo.py --stream-rows 64
    python examples/serving_demo.py --slo-ms 20
    python examples/serving_demo.py --shards 3 --replication 2 --kill-shard
    python examples/serving_demo.py --trace [--trace-jsonl spans.jsonl]
    python examples/serving_demo.py --shards 2 --metrics
    python examples/serving_demo.py --listen 127.0.0.1:8631 --shards 2
    python examples/serving_demo.py --connect 127.0.0.1:8631
"""

from __future__ import annotations

import argparse
import threading
import time

import numpy as np

from repro.serve import (
    AdaptiveQualityController,
    AttentionClient,
    AttentionServer,
    BatchPolicy,
    ClusterConfig,
    NetworkFrontend,
    QualityPolicy,
    ServerConfig,
    ShardedAttentionServer,
)
from repro.serve.client import parse_address
from repro.serve.tracing import stage_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client (default 12)")
    parser.add_argument("--sessions", type=int, default=2,
                        help="tenant sessions to spread the clients over "
                        "(default 2); sessions at the same tier fuse into "
                        "multi-key ragged dispatches")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard replicas; > 1 serves through a "
                        "ShardedAttentionServer (default 1)")
    parser.add_argument("--spawn", action="store_true",
                        help="back each shard with a spawned process "
                        "(true multi-core parallelism)")
    parser.add_argument("--replication", type=int, default=1,
                        help="replicas per session in sharded mode "
                        "(default 1; use >= 2 with --kill-shard for "
                        "failover without replay-from-log)")
    parser.add_argument("--kill-shard", action="store_true",
                        help="crash one session's primary shard "
                        "mid-traffic and let the heartbeat monitor "
                        "fail it over (requires --shards > 1)")
    parser.add_argument("--stream-rows", type=int, default=32,
                        help="rows appended to the first tenant in the "
                        "streaming phase (0 disables it; default 32)")
    parser.add_argument("--slo-ms", type=float, default=0.0,
                        help="p95 latency objective in ms for the SLO-aware "
                        "degradation phase (0 disables it; single-server "
                        "mode only)")
    parser.add_argument("--trace", action="store_true",
                        help="sample every request into a span tree and "
                        "print the per-stage latency breakdown and the "
                        "slowest-request exemplars")
    parser.add_argument("--trace-jsonl", default="",
                        help="with --trace: also export every span to this "
                        "JSONL path")
    parser.add_argument("--metrics", action="store_true",
                        help="print the Prometheus text exposition at the "
                        "end of the run")
    parser.add_argument("--listen", default="",
                        help="serve the wire protocol on HOST:PORT instead "
                        "of running traffic (Ctrl-C drains and stops); "
                        "combines with --shards/--spawn")
    parser.add_argument("--connect", default="",
                        help="run the traffic phases against a remote "
                        "--listen frontend at HOST:PORT instead of an "
                        "in-process server")
    args = parser.parse_args()
    if args.listen and args.connect:
        parser.error("--listen and --connect are mutually exclusive")
    if args.connect:
        for on, name in ((args.shards > 1, "--shards"),
                         (args.spawn, "--spawn"),
                         (args.kill_shard, "--kill-shard"),
                         (args.slo_ms > 0, "--slo-ms"),
                         (args.trace, "--trace")):
            if on:
                parser.error(f"{name} is a server-side knob; set it on "
                             "the --listen process")
    if args.trace_jsonl and not args.trace:
        parser.error("--trace-jsonl needs --trace")
    if args.kill_shard and args.shards < 2:
        parser.error("--kill-shard needs --shards > 1 (someone must "
                     "survive to fail over to)")
    if args.replication > args.shards:
        parser.error(f"--replication {args.replication} exceeds "
                     f"--shards {args.shards}")
    if args.sessions < 1:
        parser.error("--sessions must be >= 1")

    rng = np.random.default_rng(0)
    n, d = 320, 64  # the paper's largest configuration

    slo_phase = args.slo_ms > 0 and args.shards == 1
    shard_config = ServerConfig(
        batch=BatchPolicy(
            max_batch_size=32,
            max_wait_seconds=0.005,
            max_queue_depth=1024,
            overload="block",
        ),
        num_workers=2,
        engine="vectorized",
        trace_sample_rate=1.0 if args.trace else 0.0,
        # The degradation ladder starts at the conservative operating
        # point: conservative -> aggressive is the software latency
        # dial (the exact tier rides one BLAS GEMM and is the fastest
        # wall-clock path here; it exists for pinning accuracy-critical
        # traffic, and its hardware cost lives in the fig14 model).
        default_tier="conservative",
    )
    if args.connect:
        server = AttentionClient(args.connect)
        print(f"connected to a remote frontend at {args.connect}")
    elif args.shards > 1:
        server = ShardedAttentionServer(
            ClusterConfig(
                num_shards=args.shards,
                shard=shard_config,
                spawn=args.spawn,
                replication=args.replication,
                heartbeat_interval_seconds=0.1,
                heartbeat_misses=2,
            )
        )
    else:
        server = AttentionServer(shard_config)

    if args.listen:
        # Network-server mode: the demo process owns the server, wraps
        # it in the asyncio frontend, and serves the wire protocol
        # until a signal lands.  own_target=True means Ctrl-C drains
        # the batcher before the sockets close.
        host, port = parse_address(args.listen)
        front = NetworkFrontend(server, host, port, own_target=True)
        front.install_signal_handlers()
        front.start()
        host, port = front.address
        print(f"serving the wire protocol on {host}:{port} "
              f"({args.shards} shard(s)); drive it with")
        print(f"  python examples/serving_demo.py --connect {host}:{port}")
        print("Ctrl-C drains in-flight requests and stops.")
        while front.running:
            time.sleep(0.2)
        return

    if args.sessions <= 26:
        tenants = [f"tenant-{chr(ord('a') + i)}" for i in range(args.sessions)]
    else:
        tenants = [f"tenant-{i:03d}" for i in range(args.sessions)]
    for tenant in tenants:
        server.register_session(
            tenant, rng.normal(size=(n, d)), rng.normal(size=(n, d))
        )
    if args.sessions <= 4 and not args.connect:
        print(f"registered sessions: {server.cache.session_ids} "
              f"(n={n}, d={d})")
    else:
        print(f"registered {args.sessions} sessions (n={n}, d={d})")

    outputs: list[np.ndarray] = []
    lock = threading.Lock()

    def client(c: int) -> None:
        tenant = tenants[c % len(tenants)]
        client_rng = np.random.default_rng(100 + c)
        for _ in range(args.requests):
            out = server.attend(tenant, client_rng.normal(size=d))
            with lock:
                outputs.append(out)

    print(f"firing {args.clients} clients x {args.requests} requests ...")
    streamed = 0
    monitor = server.monitor() if args.kill_shard else None
    victim = ""
    with server:
        if monitor is not None:
            # Failover phase: a heartbeat monitor watches the cluster
            # while a killer thread crashes tenant-a's primary shard
            # mid-traffic.  In-flight requests on the victim retry onto
            # a surviving replica; the monitor (or the request path's
            # own retry, whichever hits first) declares it down.
            monitor.start()
            victim = server.session_shard(tenants[0])

            def killer() -> None:
                # Fire after a third of the traffic has completed —
                # progress-triggered, so the kill lands mid-burst on
                # fast and slow machines alike.
                target = max(1, (args.clients * args.requests) // 3)
                while True:
                    with lock:
                        done = len(outputs)
                    if done >= target:
                        break
                    time.sleep(0.002)
                print(f"  !! killing {victim} ({tenants[0]}'s primary) "
                      f"after {done} responses")
                server.kill_shard(victim)

            killer_thread = threading.Thread(target=killer)
            killer_thread.start()
        threads = [
            threading.Thread(target=client, args=(c,))
            for c in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if monitor is not None:
            killer_thread.join()
            # Short bursts can drain before the heartbeat window does;
            # give detection its window before reading the books.
            deadline = time.monotonic() + 15.0
            while victim in server.shard_ids:
                if time.monotonic() > deadline:
                    raise RuntimeError("failover never ran")
                time.sleep(0.05)
            monitor.stop()

        if args.stream_rows > 0:
            # Streaming phase: grow tenant-a's memory in place.  The
            # mutator splices the new rows into the prepared sorted-key
            # structures (no cold re-prepare — watch the cache counters
            # stay put) and later requests attend over the grown memory.
            mutator = server.mutator(tenants[0])
            session = mutator.append_rows(
                rng.normal(size=(args.stream_rows, d)),
                rng.normal(size=(args.stream_rows, d)),
            )
            print(f"\nstreamed {args.stream_rows} rows into {tenants[0]} "
                  f"(memory now {session.n} rows, prepared state spliced "
                  "in place)")
            for _ in range(4):
                out = server.attend(tenants[0], rng.normal(size=d))
                outputs.append(out)
                streamed += 1

        if slo_phase:
            # SLO phase: an overload burst of best-effort clients under
            # the quality controller.  Requests carry no tier, so they
            # follow the live default — which the controller degrades
            # while the windowed p95 violates the objective and
            # restores once the burst drains.  Nothing is rejected.
            burst_clients = max(args.clients, 32)
            policy = QualityPolicy(
                slo_p95_seconds=args.slo_ms / 1e3,
                interval_seconds=0.02,
                queue_depth_high=burst_clients // 2,
                overload_ticks=2,
                recovery_ticks=6,
            )
            print(f"\nSLO phase: p95 objective {args.slo_ms:.1f} ms, "
                  f"{burst_clients} best-effort clients x {args.requests} "
                  f"requests from tier {server.default_tier!r} ...")
            with AdaptiveQualityController(server, policy) as controller:
                threads = [
                    threading.Thread(target=client, args=(c,))
                    for c in range(burst_clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                transitions = controller.transitions
                final_tier = server.default_tier
            streamed += burst_clients * args.requests
            if transitions:
                for t in transitions:
                    print(f"  [{t.reason:>8}] {t.from_tier} -> {t.to_tier} "
                          f"(window p95 {t.window_p95_seconds * 1e3:.2f} ms, "
                          f"queue {t.queue_depth})")
            else:
                print("  (no transitions: the burst never violated the SLO)")
            print(f"  tier after burst: {final_tier!r}; restored to "
                  f"{server.default_tier!r} on controller stop")

        # Read the books while the connection/server is still up: in
        # --connect mode leaving the block closes the socket.
        snapshot = server.snapshot()
        exposition = server.metrics_text() if args.metrics else ""

    if "shards" in snapshot:  # sharded — locally or behind --connect
        shard_snaps = snapshot["shards"]
        aggregate = snapshot["cluster"]
        print(f"\nper-shard completed: {aggregate['completed_per_shard']} "
              f"(load imbalance {aggregate['load_imbalance']:.2f}, "
              f"sessions {aggregate['sessions_per_shard']})")
        if args.kill_shard:
            for event in monitor.events:
                print(f"  monitor: declared {event.shard_id} down after "
                      f"{event.missed_beats} missed heartbeat(s)")
            if not monitor.events:
                print("  monitor: the request path's retry reported the "
                      "dead shard before the heartbeat window elapsed")
            liveness = ", ".join(
                f"{sid}={'up' if alive else 'DOWN'}"
                for sid, alive in sorted(aggregate["liveness"].items())
            )
            failover = aggregate["failover"]
            print(f"  liveness: {liveness}")
            print(f"  failover: {failover['failovers']} failover(s), "
                  f"{failover['replica_retries']} rerouted request(s), "
                  f"{failover['replayed_sessions']} session replica(s) "
                  f"rebuilt from {failover['replayed_mutations']} replayed "
                  "mutation(s) — every request below was still answered")
            if args.spawn:
                print("  (a SIGKILLed process takes its telemetry with "
                      "it, so the served count below undercounts; the "
                      "end-of-run assert still checks every response)")
        histogram: dict[str, int] = {}
        fused_hist: dict[str, int] = {}
        for snap in shard_snaps.values():
            for size, count in snap["batch_size_histogram"].items():
                histogram[size] = histogram.get(size, 0) + count
            for width, count in snap["fused"]["segment_histogram"].items():
                fused_hist[width] = fused_hist.get(width, 0) + count
        # Flatten to the single-server snapshot surface so the shared
        # printout below works for both topologies.
        snapshot = {
            **aggregate,
            "batch_size_histogram": dict(
                sorted(histogram.items(), key=lambda kv: int(kv[0]))
            ),
            "fused": {
                "fused_batches": sum(
                    snap["fused"]["fused_batches"]
                    for snap in shard_snaps.values()
                ),
                "max_segments": max(
                    (snap["fused"]["max_segments"]
                     for snap in shard_snaps.values()),
                    default=0,
                ),
                "segment_histogram": dict(
                    sorted(fused_hist.items(), key=lambda kv: int(kv[0]))
                ),
            },
            "mean_queue_depth": float(
                np.mean([s["mean_queue_depth"] for s in shard_snaps.values()])
            ),
            "peak_queue_depth": max(
                s["peak_queue_depth"] for s in shard_snaps.values()
            ),
        }
    total = args.clients * args.requests + streamed
    lifetime = " (server-lifetime counters)" if args.connect else ""
    print(f"served {snapshot['completed']}/{total} requests "
          f"in {snapshot['batches']} batches "
          f"(mean batch {snapshot['mean_batch_size']:.1f}){lifetime}")

    histogram = snapshot["batch_size_histogram"]
    if histogram:
        # Can be empty after --kill-shard: a dead shard's histogram is
        # banked into the aggregate counters, not the per-shard snaps.
        print("\nbatch-size histogram:")
        peak = max(histogram.values())
        for size, count in histogram.items():
            bar = "#" * max(1, round(24 * count / peak))
            print(f"  batch {int(size):>3}: {bar} {count}")

    latency = snapshot["latency_seconds"]
    print("\nlatency percentiles:")
    for name in ("p50", "p95", "p99", "max"):
        print(f"  {name:>4}: {latency[name] * 1e3:7.2f} ms")

    cache = snapshot["cache"]
    print(f"\nqueue depth: mean {snapshot['mean_queue_depth']:.1f}, "
          f"peak {snapshot['peak_queue_depth']}")
    print(f"prepared-key cache: {cache['hits']} hits / "
          f"{cache['misses']} misses (hit rate {cache['hit_rate']:.1%})")
    print("selection work: candidate fraction "
          f"{snapshot['selection']['candidate_fraction']:.3f}, "
          f"kept fraction {snapshot['selection']['kept_fraction']:.3f} "
          f"over {snapshot['selection']['calls']} queries")
    fused = snapshot["fused"]
    if fused["fused_batches"]:
        widths = ", ".join(
            f"{width} sessions: {count}"
            for width, count in fused["segment_histogram"].items()
            if int(width) > 1
        )
        print(f"cross-session fusion: {fused['fused_batches']} multi-"
              f"session dispatches (widest spanned "
              f"{fused['max_segments']} sessions; {widths})")
    elif args.sessions > 1:
        print("cross-session fusion: no multi-session dispatch formed "
              "(arrivals never overlapped across tenants)")
    if snapshot.get("tiers"):
        split = ", ".join(
            f"{tier}: {cell['completed']}"
            for tier, cell in snapshot["tiers"].items()
        )
        quality = snapshot["quality"]
        print(f"per-tier completed: {split}")
        print(f"quality control: {quality['downgraded_requests']} downgraded "
              f"requests, {quality['tier_downgrades']} downgrades / "
              f"{quality['tier_upgrades']} upgrades of the default tier")

    if args.trace:
        # Per-stage breakdown over every sampled request: where each
        # millisecond of the end-to-end latency went.  The six request
        # stages are contiguous on one clock, so their means sum to the
        # mean request latency; sharded mode adds the cluster-side
        # cluster_request/rpc prefix (the rpc-request gap is the pipe
        # hop under --spawn).
        spans = server.trace_spans()
        summary = stage_summary(spans)
        stages = ("cluster_request", "rpc", "request", "submit", "queue",
                  "batch_formation", "dispatch", "kernel", "resolve")
        print("\nper-stage latency breakdown (100% sampled):")
        for name in stages:
            if name not in summary:
                continue
            cell = summary[name]
            print(f"  {name:>15}: x{cell['count']:<4} "
                  f"mean {cell['mean_seconds'] * 1e3:6.2f} ms, "
                  f"p95 {cell['p95_seconds'] * 1e3:6.2f} ms, "
                  f"max {cell['max_seconds'] * 1e3:6.2f} ms")
        exemplars = server.tracer.exemplars()
        if exemplars:
            print("slowest requests (exemplar ring):")
            for entry in exemplars[:3]:
                print(f"  {entry['name']} {entry['trace_id']}: "
                      f"{entry['duration_seconds'] * 1e3:.2f} ms "
                      f"{entry['attrs']}")
        if args.trace_jsonl:
            import json

            with open(args.trace_jsonl, "w") as handle:
                for span in spans:
                    handle.write(json.dumps(span, sort_keys=True) + "\n")
            print(f"exported {len(spans)} spans to {args.trace_jsonl}")

    if args.metrics:
        print("\nPrometheus exposition:")
        print(exposition)

    assert len(outputs) == total and all(o.shape == (d,) for o in outputs)


if __name__ == "__main__":
    main()
