"""Serving demo: a dynamic-batching attention service end to end.

Starts an :class:`repro.serve.AttentionServer`, registers two tenant
sessions, fires concurrent single-query requests from client threads
(each client blocks on its response before sending the next — so the
batches you see below were formed by the server, not by the clients),
and prints the telemetry the serving layer keeps: the batch-size
histogram, latency percentiles, queue depth, and the prepared-key cache
hit rate.

With ``--shards N`` the same traffic runs against a
:class:`repro.serve.ShardedAttentionServer` instead: N replicas, each
with its own cache/batcher/scheduler stack, sessions placed by
consistent hashing — the printout then adds the per-shard split and the
load-imbalance metric.

With ``--stream-rows K`` the demo finishes with a *streaming* phase:
tenant-a's memory grows by K rows through a
:class:`repro.serve.SessionMutator` append (incremental splice — no
cold re-prepare, the cache entry survives in place) and a few more
requests run against the grown session.

Usage::

    python examples/serving_demo.py [--clients 16] [--requests 12]
    python examples/serving_demo.py --shards 2 [--spawn]
    python examples/serving_demo.py --stream-rows 64
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro.serve import (
    AttentionServer,
    BatchPolicy,
    ClusterConfig,
    ServerConfig,
    ShardedAttentionServer,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client (default 12)")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard replicas; > 1 serves through a "
                        "ShardedAttentionServer (default 1)")
    parser.add_argument("--spawn", action="store_true",
                        help="back each shard with a spawned process "
                        "(true multi-core parallelism)")
    parser.add_argument("--stream-rows", type=int, default=32,
                        help="rows appended to tenant-a in the streaming "
                        "phase (0 disables it; default 32)")
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    n, d = 320, 64  # the paper's largest configuration

    shard_config = ServerConfig(
        batch=BatchPolicy(
            max_batch_size=32,
            max_wait_seconds=0.005,
            max_queue_depth=1024,
            overload="block",
        ),
        num_workers=2,
        engine="vectorized",
    )
    if args.shards > 1:
        server = ShardedAttentionServer(
            ClusterConfig(
                num_shards=args.shards, shard=shard_config, spawn=args.spawn
            )
        )
    else:
        server = AttentionServer(shard_config)
    for tenant in ("tenant-a", "tenant-b"):
        server.register_session(
            tenant, rng.normal(size=(n, d)), rng.normal(size=(n, d))
        )
    print(f"registered sessions: {server.cache.session_ids} (n={n}, d={d})")

    outputs: list[np.ndarray] = []
    lock = threading.Lock()

    def client(c: int) -> None:
        tenant = "tenant-a" if c % 2 == 0 else "tenant-b"
        client_rng = np.random.default_rng(100 + c)
        for _ in range(args.requests):
            out = server.attend(tenant, client_rng.normal(size=d))
            with lock:
                outputs.append(out)

    print(f"firing {args.clients} clients x {args.requests} requests ...")
    streamed = 0
    with server:
        threads = [
            threading.Thread(target=client, args=(c,))
            for c in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if args.stream_rows > 0:
            # Streaming phase: grow tenant-a's memory in place.  The
            # mutator splices the new rows into the prepared sorted-key
            # structures (no cold re-prepare — watch the cache counters
            # stay put) and later requests attend over the grown memory.
            mutator = server.mutator("tenant-a")
            session = mutator.append_rows(
                rng.normal(size=(args.stream_rows, d)),
                rng.normal(size=(args.stream_rows, d)),
            )
            print(f"\nstreamed {args.stream_rows} rows into tenant-a "
                  f"(memory now {session.n} rows, prepared state spliced "
                  "in place)")
            for _ in range(4):
                out = server.attend("tenant-a", rng.normal(size=d))
                outputs.append(out)
                streamed += 1

    snapshot = server.snapshot()
    if args.shards > 1:
        shard_snaps = snapshot["shards"]
        aggregate = snapshot["cluster"]
        print(f"\nper-shard completed: {aggregate['completed_per_shard']} "
              f"(load imbalance {aggregate['load_imbalance']:.2f}, "
              f"sessions {aggregate['sessions_per_shard']})")
        histogram: dict[str, int] = {}
        for snap in shard_snaps.values():
            for size, count in snap["batch_size_histogram"].items():
                histogram[size] = histogram.get(size, 0) + count
        # Flatten to the single-server snapshot surface so the shared
        # printout below works for both topologies.
        snapshot = {
            **aggregate,
            "batch_size_histogram": dict(
                sorted(histogram.items(), key=lambda kv: int(kv[0]))
            ),
            "mean_queue_depth": float(
                np.mean([s["mean_queue_depth"] for s in shard_snaps.values()])
            ),
            "peak_queue_depth": max(
                s["peak_queue_depth"] for s in shard_snaps.values()
            ),
        }
    total = args.clients * args.requests + streamed
    print(f"served {snapshot['completed']}/{total} requests "
          f"in {snapshot['batches']} batches "
          f"(mean batch {snapshot['mean_batch_size']:.1f})")

    print("\nbatch-size histogram:")
    histogram = snapshot["batch_size_histogram"]
    peak = max(histogram.values())
    for size, count in histogram.items():
        bar = "#" * max(1, round(24 * count / peak))
        print(f"  batch {int(size):>3}: {bar} {count}")

    latency = snapshot["latency_seconds"]
    print("\nlatency percentiles:")
    for name in ("p50", "p95", "p99", "max"):
        print(f"  {name:>4}: {latency[name] * 1e3:7.2f} ms")

    cache = snapshot["cache"]
    print(f"\nqueue depth: mean {snapshot['mean_queue_depth']:.1f}, "
          f"peak {snapshot['peak_queue_depth']}")
    print(f"prepared-key cache: {cache['hits']} hits / "
          f"{cache['misses']} misses (hit rate {cache['hit_rate']:.1%})")
    print("selection work: candidate fraction "
          f"{snapshot['selection']['candidate_fraction']:.3f}, "
          f"kept fraction {snapshot['selection']['kept_fraction']:.3f} "
          f"over {snapshot['selection']['calls']} queries")
    assert len(outputs) == total and all(o.shape == (d,) for o in outputs)


if __name__ == "__main__":
    main()
