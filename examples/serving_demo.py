"""Serving demo: a dynamic-batching attention service end to end.

Starts an :class:`repro.serve.AttentionServer`, registers two tenant
sessions, fires concurrent single-query requests from client threads
(each client blocks on its response before sending the next — so the
batches you see below were formed by the server, not by the clients),
and prints the telemetry the serving layer keeps: the batch-size
histogram, latency percentiles, queue depth, and the prepared-key cache
hit rate.

Usage::

    python examples/serving_demo.py [--clients 16] [--requests 12]
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro.serve import AttentionServer, BatchPolicy, ServerConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client (default 12)")
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    n, d = 320, 64  # the paper's largest configuration

    server = AttentionServer(
        ServerConfig(
            batch=BatchPolicy(
                max_batch_size=32,
                max_wait_seconds=0.005,
                max_queue_depth=1024,
                overload="block",
            ),
            num_workers=2,
            engine="vectorized",
        )
    )
    for tenant in ("tenant-a", "tenant-b"):
        server.register_session(
            tenant, rng.normal(size=(n, d)), rng.normal(size=(n, d))
        )
    print(f"registered sessions: {server.cache.session_ids} (n={n}, d={d})")

    outputs: list[np.ndarray] = []
    lock = threading.Lock()

    def client(c: int) -> None:
        tenant = "tenant-a" if c % 2 == 0 else "tenant-b"
        client_rng = np.random.default_rng(100 + c)
        for _ in range(args.requests):
            out = server.attend(tenant, client_rng.normal(size=d))
            with lock:
                outputs.append(out)

    print(f"firing {args.clients} clients x {args.requests} requests ...")
    with server:
        threads = [
            threading.Thread(target=client, args=(c,))
            for c in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    snapshot = server.snapshot()
    total = args.clients * args.requests
    print(f"served {snapshot['completed']}/{total} requests "
          f"in {snapshot['batches']} batches "
          f"(mean batch {snapshot['mean_batch_size']:.1f})")

    print("\nbatch-size histogram:")
    histogram = snapshot["batch_size_histogram"]
    peak = max(histogram.values())
    for size, count in histogram.items():
        bar = "#" * max(1, round(24 * count / peak))
        print(f"  batch {int(size):>3}: {bar} {count}")

    latency = snapshot["latency_seconds"]
    print("\nlatency percentiles:")
    for name in ("p50", "p95", "p99", "max"):
        print(f"  {name:>4}: {latency[name] * 1e3:7.2f} ms")

    cache = snapshot["cache"]
    print(f"\nqueue depth: mean {snapshot['mean_queue_depth']:.1f}, "
          f"peak {snapshot['peak_queue_depth']}")
    print(f"prepared-key cache: {cache['hits']} hits / "
          f"{cache['misses']} misses (hit rate {cache['hit_rate']:.1%})")
    print(f"selection work: candidate fraction "
          f"{snapshot['selection']['candidate_fraction']:.3f}, "
          f"kept fraction {snapshot['selection']['kept_fraction']:.3f} "
          f"over {snapshot['selection']['calls']} queries")
    assert len(outputs) == total and all(o.shape == (d,) for o in outputs)


if __name__ == "__main__":
    main()
