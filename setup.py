"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
legacy `pip install -e .` / `python setup.py develop` code paths.
"""

from setuptools import setup

setup()
