"""repro — a full Python reproduction of A3 (Ham et al., HPCA 2020).

A3 accelerates the attention mechanism of neural networks with a
hardware/algorithm co-design: greedy candidate selection and post-scoring
selection skip the rows whose softmax weight would be near zero, and a
specialized fixed-point pipeline executes the surviving work.

Subpackages
-----------
``repro.core``
    The approximation algorithms and the exact reference.
``repro.fixedpoint``
    Quantization formats, per-stage widths, and the split exponent LUT.
``repro.hardware``
    Cycle-level models of the five pipeline modules, energy/area database,
    and analytic CPU/GPU baselines.
``repro.nn``
    A NumPy autograd substrate with the three workload models (MemN2N,
    KV-MemN2N, a compact BERT-style encoder).
``repro.data``
    Synthetic generators for bAbI-style, WikiMovies-style, and SQuAD-style
    tasks.
``repro.workloads``
    Train/evaluate harnesses wiring models to attention backends.
``repro.serve``
    Request-level serving: per-tenant key caches, dynamic batching,
    backpressure, and telemetry over the batched kernel.
``repro.metrics``
    Accuracy, MAP, span F1, and selection-quality metrics.
``repro.experiments``
    One driver per paper table/figure, plus the published numbers.
"""

from repro.core import (
    ApproximateAttention,
    ApproximateBackend,
    ApproximationConfig,
    ExactBackend,
    QuantizedBackend,
    aggressive,
    attention,
    conservative,
    greedy_candidate_search,
    post_scoring_select,
    softmax,
)

__version__ = "1.0.0"

__all__ = [
    "ApproximateAttention",
    "ApproximateBackend",
    "ApproximationConfig",
    "ExactBackend",
    "QuantizedBackend",
    "aggressive",
    "attention",
    "conservative",
    "greedy_candidate_search",
    "post_scoring_select",
    "softmax",
    "__version__",
]
