"""The paper's primary contribution: approximate attention algorithms.

Public API:

* exact reference: :func:`~repro.core.attention.attention`,
  :func:`~repro.core.attention.softmax`,
  :func:`~repro.core.attention.self_attention`
* candidate selection: :func:`~repro.core.candidate_search.greedy_candidate_search`,
  :class:`~repro.core.efficient_search.PreprocessedKey`,
  :func:`~repro.core.efficient_search.efficient_candidate_search`,
  :func:`~repro.core.batched_search.batched_candidate_search` (whole-batch)
* post-scoring: :func:`~repro.core.post_scoring.post_scoring_select`
* combined: :class:`~repro.core.approximate.ApproximateAttention` with three
  engines (``reference`` / ``efficient`` / ``vectorized``, see
  :data:`~repro.core.approximate.ENGINES`)
* configuration: :class:`~repro.core.config.ApproximationConfig`,
  :func:`~repro.core.config.conservative`, :func:`~repro.core.config.aggressive`
* model integration: :class:`~repro.core.backends.ExactBackend`,
  :class:`~repro.core.backends.ApproximateBackend`,
  :class:`~repro.core.backends.QuantizedBackend`
"""

from repro.core.approximate import ENGINES, ApproximateAttention, AttentionTrace
from repro.core.batched_search import (
    BatchedCandidateResult,
    batched_candidate_search,
)
from repro.core.attention import (
    attention,
    attention_from_scores,
    attention_scores,
    self_attention,
    softmax,
)
from repro.core.backends import (
    ApproximateBackend,
    BackendStats,
    ExactBackend,
    KeyFingerprint,
    QuantizedBackend,
)
from repro.core.candidate_search import (
    CandidateResult,
    greedy_candidate_search,
    product_matrix,
)
from repro.core.config import (
    ApproximationConfig,
    aggressive,
    conservative,
    exact,
    percent_from_threshold,
    threshold_from_percent,
)
from repro.core.efficient_search import PreprocessedKey, efficient_candidate_search
from repro.core.post_scoring import (
    PostScoringResult,
    post_scoring_select,
    static_top_k_select,
)

__all__ = [
    "ENGINES",
    "ApproximateAttention",
    "AttentionTrace",
    "BatchedCandidateResult",
    "batched_candidate_search",
    "KeyFingerprint",
    "attention",
    "attention_from_scores",
    "attention_scores",
    "self_attention",
    "softmax",
    "ApproximateBackend",
    "BackendStats",
    "ExactBackend",
    "QuantizedBackend",
    "CandidateResult",
    "greedy_candidate_search",
    "product_matrix",
    "ApproximationConfig",
    "aggressive",
    "conservative",
    "exact",
    "percent_from_threshold",
    "threshold_from_percent",
    "PreprocessedKey",
    "efficient_candidate_search",
    "PostScoringResult",
    "post_scoring_select",
    "static_top_k_select",
]
