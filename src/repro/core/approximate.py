"""End-to-end approximate attention (Section IV, Figure 10 dataflow).

Combines the two approximation stages around the exact attention kernel:

1. greedy candidate selection picks ``C`` likely-relevant rows out of ``n``;
2. exact dot products are computed only for those ``C`` rows;
3. post-scoring selection keeps the ``K`` rows whose softmax weight would
   be non-negligible;
4. softmax and the weighted sum run over the ``K`` survivors.

Three interchangeable candidate-search engines implement stage 1:

``"reference"``
    The Figure 6 formulation — one partial sort per query followed by a
    Python-level walk over the two product streams.  The ground truth
    the others are validated against; fastest for one-off single queries.
``"efficient"``
    The Figure 7 heap-and-pointer formulation that mirrors the hardware:
    ``O(M log d)`` per query after the one-time column sort.  Slowest in
    NumPy (per-pop ``heapq`` overhead) but structurally closest to the
    accelerator, so it is what the hardware model cross-checks against.
``"vectorized"``
    The batched engine of :mod:`repro.core.batched_search`: one set of
    array operations advances every query of a batch together.  Fastest
    whenever many queries share one key matrix (``attend_many`` with
    batch sizes of roughly 8 and up — the BERT self-attention pattern of
    Section IV-C).  Also the only engine supporting the fused multi-key
    :func:`attend_many_ragged` path of the cross-session batcher.

All three produce identical candidate sets on tie-free inputs; the
selection decisions of the vectorized engine are bit-identical to the
reference engine (outputs agree to floating-point roundoff, as the
batched softmax reduces in a different summation order).

The :class:`AttentionTrace` returned alongside each output records the
per-stage selection sizes; the hardware performance model consumes these
traces to derive cycle counts (``M + C + K + K + alpha``, Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core import batched_search
from repro.core import profiling
from repro.core.attention import softmax
from repro.core.batched_search import batched_candidate_search
from repro.core.candidate_search import greedy_candidate_search
from repro.core.config import ApproximationConfig, threshold_from_percent
from repro.core.efficient_search import PreprocessedKey, efficient_candidate_search
from repro.core.post_scoring import post_scoring_select
from repro.errors import ShapeError

__all__ = [
    "ENGINES",
    "AttentionTrace",
    "ApproximateAttention",
    "attend_many_ragged",
]

ENGINES = ("reference", "efficient", "vectorized")


@dataclass
class AttentionTrace:
    """Selection statistics for one approximate attention query.

    Attributes
    ----------
    n:
        Number of rows in the key matrix.
    m:
        Greedy-search iteration count used for this query (0 when candidate
        selection is disabled).
    num_candidates:
        ``C`` — rows selected by the greedy search (== ``n`` when disabled).
    num_kept:
        ``K`` — rows surviving post-scoring selection (== ``C`` when
        disabled).
    candidates:
        Row indices passed to the dot-product stage.
    kept_rows:
        Row indices included in the final softmax / weighted sum.
    weights:
        Softmax weights over ``kept_rows`` (sums to 1).
    used_fallback:
        Candidate selection found no positive greedy score and fell back to
        the single best row.
    """

    n: int
    m: int
    num_candidates: int
    num_kept: int
    candidates: np.ndarray
    kept_rows: np.ndarray
    weights: np.ndarray
    used_fallback: bool

    @property
    def candidate_fraction(self) -> float:
        """``C / n`` — the normalized candidate count of Figure 11b."""
        return self.num_candidates / self.n if self.n else 0.0

    @property
    def kept_fraction(self) -> float:
        """``K / n`` — the normalized selected-entry count of Figure 12b."""
        return self.num_kept / self.n if self.n else 0.0


class ApproximateAttention:
    """Approximate attention with a reusable preprocessed key.

    Parameters
    ----------
    config:
        The approximation operating point (``M`` and ``T``).
    engine:
        One of :data:`ENGINES` — see the module docstring for when each
        is fastest.  All engines produce identical candidate sets on
        tie-free inputs.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.config import conservative
    >>> rng = np.random.default_rng(0)
    >>> key = rng.normal(size=(32, 8)); value = rng.normal(size=(32, 8))
    >>> approx = ApproximateAttention(conservative())
    >>> approx.preprocess(key)
    >>> out, trace = approx.attend(value, rng.normal(size=8))
    >>> out.shape, trace.num_candidates <= 32
    ((8,), True)
    """

    def __init__(self, config: ApproximationConfig, engine: str = "reference"):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.config = config
        self.engine = engine
        self._pre: PreprocessedKey | None = None

    # ------------------------------------------------------------------
    # key management
    # ------------------------------------------------------------------
    def preprocess(self, key: np.ndarray) -> PreprocessedKey:
        """Sort the key matrix columns off the critical path (Fig. 7 L1-5)."""
        self._pre = PreprocessedKey.build(key)
        return self._pre

    @property
    def preprocessed(self) -> PreprocessedKey:
        if self._pre is None:
            raise RuntimeError("call preprocess(key) before attending")
        return self._pre

    @property
    def preprocessed_or_none(self) -> PreprocessedKey | None:
        """The prepared key, or ``None`` before the first preprocess."""
        return self._pre

    def adopt(self, pre: PreprocessedKey) -> PreprocessedKey:
        """Install an externally built prepared key (e.g. zero-copy views
        over an :class:`repro.core.artifacts.ArtifactBuffer`).

        Equivalent to :meth:`preprocess` of the same key without the
        ``O(n d log n)`` column sort.  Adopted planes may be read-only;
        the incremental splices allocate fresh private arrays, so every
        mutation is copy-on-write and never writes through the adopted
        buffer.
        """
        self._pre = pre
        return self._pre

    # ------------------------------------------------------------------
    # incremental key mutation (streaming sessions)
    # ------------------------------------------------------------------
    def append_rows(self, rows: np.ndarray) -> PreprocessedKey:
        """Splice ``k`` new key rows into the prepared structures.

        Bit-identical to ``preprocess(concatenate([key, rows]))`` — see
        :mod:`repro.core.incremental` — at ``O(d (log n + k))`` search
        cost instead of a full re-sort.
        """
        from repro.core.incremental import splice_append

        self._pre = splice_append(self.preprocessed, rows)
        return self._pre

    def delete_rows(self, rows) -> PreprocessedKey:
        """Remove key rows from the prepared structures (rows renumber
        densely, exactly as a fresh preprocess of the shrunken key)."""
        from repro.core.incremental import splice_delete

        self._pre = splice_delete(self.preprocessed, rows)
        return self._pre

    def replace_key(self, row: int, new_row: np.ndarray) -> PreprocessedKey:
        """Replace one key row inside the prepared structures."""
        from repro.core.incremental import splice_replace

        self._pre = splice_replace(self.preprocessed, row, new_row)
        return self._pre

    # ------------------------------------------------------------------
    # query-time path
    # ------------------------------------------------------------------
    def select_candidates(
        self, query: np.ndarray, config: ApproximationConfig | None = None
    ):
        """Run only the candidate-selection stage for ``query``.

        ``config`` overrides the instance's operating point for this one
        call (the prepared key is config-independent, so any ``(M, T)``
        point can attend over it).
        """
        cfg = self.config if config is None else config
        pre = self.preprocessed
        m = cfg.iterations(pre.n)
        kwargs = dict(
            min_skip_heuristic=cfg.min_skip_heuristic,
            fallback_top1=cfg.fallback_top1,
        )
        if self.engine == "efficient":
            return efficient_candidate_search(pre, query, m, **kwargs)
        if self.engine == "vectorized":
            query = np.asarray(query, dtype=np.float64)
            batched = batched_candidate_search(
                pre, query[np.newaxis, :], m, **kwargs
            )
            return batched.result(0)
        return greedy_candidate_search(pre.key, query, m, **kwargs)

    def attend(
        self,
        value: np.ndarray,
        query: np.ndarray,
        config: ApproximationConfig | None = None,
    ) -> tuple[np.ndarray, AttentionTrace]:
        """Approximate attention for one query against the preprocessed key.

        A thin wrapper over the canonical :meth:`attend_many`: the query
        is dispatched as a batch of one and the single output row and
        trace are returned.  ``config`` overrides ``self.config`` for
        this one call (see :meth:`attend_many`).
        """
        query = np.asarray(query, dtype=np.float64)
        pre = self.preprocessed
        if query.shape != (pre.d,):
            raise ShapeError(f"query shape {query.shape} does not match d={pre.d}")
        outputs, traces = self.attend_many(
            value, query[np.newaxis, :], config=config
        )
        return outputs[0], traces[0]

    def _attend_single(
        self,
        value: np.ndarray,
        query: np.ndarray,
        config: ApproximationConfig | None = None,
    ) -> tuple[np.ndarray, AttentionTrace]:
        """The reference single-query pipeline (stages 1-4, one query).

        The per-query ground truth the batched pipeline is validated
        against; :meth:`attend_many` loops over it for the
        ``"reference"`` and ``"efficient"`` engines.  The one-time key
        preprocessing (the Figure 7 column sort) does not depend on the
        operating point, so ``config`` may override ``self.config`` per
        call — the serving layer's quality tiers attend at any
        ``(M, T)`` point over one shared prepared key.  The result is
        bit-identical to an instance constructed with that config
        outright.
        """
        cfg = self.config if config is None else config
        pre = self.preprocessed
        value = np.asarray(value, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        if value.ndim != 2 or value.shape[0] != pre.n:
            raise ShapeError(
                f"value shape {value.shape} does not match key rows n={pre.n}"
            )
        if query.shape != (pre.d,):
            raise ShapeError(f"query shape {query.shape} does not match d={pre.d}")

        # Stage 1: candidate selection.
        used_fallback = False
        if cfg.candidate_selection:
            result = self.select_candidates(query, config=cfg)
            candidates = result.candidates
            m = result.iterations
            used_fallback = result.used_fallback
        else:
            candidates = np.arange(pre.n, dtype=np.int64)
            m = 0

        # Stage 2: exact dot products for the candidates only.
        scores = pre.key[candidates] @ query

        # Stage 3: post-scoring selection.
        if cfg.t_percent is not None and scores.shape[0] > 0:
            post = post_scoring_select(scores, cfg.t_percent)
            kept_rows = candidates[post.kept]
            kept_scores = scores[post.kept]
        else:
            kept_rows = candidates
            kept_scores = scores

        # Stage 4: softmax + weighted sum over the survivors.
        weights = softmax(kept_scores)
        output = weights @ value[kept_rows]

        trace = AttentionTrace(
            n=pre.n,
            m=m,
            num_candidates=int(candidates.shape[0]),
            num_kept=int(kept_rows.shape[0]),
            candidates=candidates,
            kept_rows=kept_rows,
            weights=weights,
            used_fallback=used_fallback,
        )
        return output, trace

    def attend_many(
        self,
        value: np.ndarray,
        queries: np.ndarray,
        config: ApproximationConfig | None = None,
    ) -> tuple[np.ndarray, list[AttentionTrace]]:
        """Approximate self-attention: many queries over one preprocessed key.

        The canonical attend entry point (single-query :meth:`attend` is
        a batch-of-one wrapper over it).  The preprocessing cost is paid
        once and amortized over all queries, which is the BERT usage
        pattern the paper highlights (Section IV-C).  With
        ``engine="vectorized"`` the whole batch runs through the
        pipeline of :meth:`_attend_batch_vectorized` in one set of array
        operations; the other engines fall back to a per-query loop
        over the reference pipeline.  ``config`` overrides the
        operating point for this one batch; a batch is always a
        single-config dispatch.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ShapeError(f"queries must be 2-D (q, d), got {queries.shape}")
        if self.engine == "vectorized":
            return self._attend_batch_vectorized(value, queries, config=config)
        outputs = np.empty((queries.shape[0], value.shape[1]), dtype=np.float64)
        traces: list[AttentionTrace] = []
        for i, query in enumerate(queries):
            outputs[i], trace = self._attend_single(value, query, config=config)
            traces.append(trace)
        return outputs, traces

    # ------------------------------------------------------------------
    # batched pipeline (engine="vectorized")
    # ------------------------------------------------------------------
    def _attend_batch_vectorized(
        self,
        value: np.ndarray,
        queries: np.ndarray,
        config: ApproximationConfig | None = None,
    ) -> tuple[np.ndarray, list[AttentionTrace]]:
        """All four stages for a whole query batch in batched array ops.

        Candidate selection runs through
        :func:`~repro.core.batched_search.batched_candidate_search`
        (per-query selection decisions bit-identical to the reference
        engine); the exact dot products of stage 2 are one
        ``queries @ key.T`` GEMM; post-scoring and the grouped softmax
        run over the flat ragged candidate segments with segment-wise
        ``reduceat`` reductions; and the final softmax weights are
        scattered into a dense ``(q, n)`` matrix so the weighted sum is
        a single GEMM against the value matrix.  Outputs match the
        reference engine to floating-point roundoff (the batched
        reductions accumulate in a different order).
        """
        cfg = self.config if config is None else config
        pre = self.preprocessed
        value = np.asarray(value, dtype=np.float64)
        if value.ndim != 2 or value.shape[0] != pre.n:
            raise ShapeError(
                f"value shape {value.shape} does not match key rows n={pre.n}"
            )
        if queries.shape[1] != pre.d:
            raise ShapeError(
                f"queries shape {queries.shape} does not match d={pre.d}"
            )
        batch = queries.shape[0]
        if batch == 0:
            return np.empty((0, value.shape[1]), dtype=np.float64), []

        # Per-stage timing runs only when a profiling hook is installed
        # (repro.core.profiling); the candidate search nests its own
        # finer-grained search.* stages under attend.candidate_search.
        prof = profiling.HOOK
        t0 = perf_counter() if prof is not None else 0.0

        # Stage 1: batched candidate selection (ragged: query qi owns
        # flat segment offsets[qi]:offsets[qi + 1]).
        if cfg.candidate_selection:
            search = batched_candidate_search(
                pre,
                queries,
                cfg.iterations(pre.n),
                min_skip_heuristic=cfg.min_skip_heuristic,
                fallback_top1=cfg.fallback_top1,
            )
            if not search.num_candidates.all():
                raise ValueError(
                    "empty candidate set (no positive greedy score with "
                    "fallback_top1 disabled); attention has no rows to "
                    "attend to"
                )
            qi = search.flat_query
            rows = search.flat_rows
            counts = search.num_candidates
            offsets = search.offsets
            iterations = search.iterations
            used_fallback = search.used_fallback
        else:
            search = None
            qi = np.repeat(np.arange(batch, dtype=np.int64), pre.n)
            rows = np.tile(np.arange(pre.n, dtype=np.int64), batch)
            counts = np.full(batch, pre.n, dtype=np.int64)
            offsets = np.arange(batch + 1, dtype=np.int64) * pre.n
            iterations = np.zeros(batch, dtype=np.int64)
            used_fallback = np.zeros(batch, dtype=bool)
        segment_starts = offsets[:-1]
        if prof is not None:
            t1 = perf_counter()
            prof.record("attend.candidate_search", t1 - t0)
            t0 = t1

        # Stage 2: exact dot products, one GEMM for the whole batch,
        # gathered into the flat candidate layout.
        scores_full = queries @ pre.key.T  # (q, n)
        scores = scores_full[qi, rows]
        if prof is not None:
            t1 = perf_counter()
            prof.record("attend.score_gemm", t1 - t0)
            t0 = t1

        # Stage 3: post-scoring over the ragged segments.
        max_score = np.maximum.reduceat(scores, segment_starts)
        if cfg.t_percent is not None:
            gap = threshold_from_percent(cfg.t_percent)
            keep = (max_score[qi] - scores) <= gap
        else:
            keep = np.ones(scores.shape[0], dtype=bool)
        kept_counts = np.add.reduceat(keep.astype(np.int64), segment_starts)
        if prof is not None:
            t1 = perf_counter()
            prof.record("attend.post_scoring", t1 - t0)
            t0 = t1

        # Stage 4: grouped softmax + weighted sum over the survivors.
        # The kept set always contains the per-query max score, so the
        # stable-softmax shift is max_score (matching softmax()); the
        # weights are scattered to dense (q, n) so the weighted sum is
        # one GEMM against the value matrix.
        shifted = np.where(keep, scores - max_score[qi], 0.0)
        exps = np.where(keep, np.exp(shifted), 0.0)
        weights = exps / np.add.reduceat(exps, segment_starts)[qi]
        dense = np.zeros((batch, pre.n), dtype=np.float64)
        dense[qi, rows] = weights
        outputs = dense @ value
        if prof is not None:
            prof.record("attend.softmax_scatter", perf_counter() - t0)

        # Traces: extract every query's kept rows and weights in one pass
        # and hand out zero-copy views.
        kept_rows_all = rows[keep]
        kept_weights_all = weights[keep]
        kept_offsets = [0, *np.cumsum(kept_counts).tolist()]
        cand_offsets = offsets.tolist()
        kept_list = kept_counts.tolist()
        count_list = counts.tolist()
        iter_list = iterations.tolist() if search is not None else [0] * batch
        fallback_list = used_fallback.tolist()
        n_rows = pre.n
        traces: list[AttentionTrace] = []
        for i in range(batch):
            lo, hi = kept_offsets[i], kept_offsets[i + 1]
            traces.append(
                AttentionTrace(
                    n=n_rows,
                    m=iter_list[i],
                    num_candidates=count_list[i],
                    num_kept=kept_list[i],
                    candidates=rows[cand_offsets[i] : cand_offsets[i + 1]],
                    kept_rows=kept_rows_all[lo:hi],
                    weights=kept_weights_all[lo:hi],
                    used_fallback=fallback_list[i],
                )
            )
        return outputs, traces


def attend_many_ragged(
    pres: list[PreprocessedKey],
    values: list[np.ndarray],
    queries: np.ndarray,
    seg_offsets: np.ndarray,
    config: ApproximationConfig,
) -> tuple[list[np.ndarray], list[list[AttentionTrace]]]:
    """Fused attend over several prepared keys at one operating point.

    The multi-key counterpart of :meth:`ApproximateAttention.attend_many`
    for a mixed many-tenant batch: segment ``s`` of the ``(Q, d)`` query
    slab (rows ``seg_offsets[s]:seg_offsets[s + 1]``) attends over
    ``pres[s]`` / ``values[s]``, and the whole slab runs through
    :func:`repro.core.batched_search.attend_many_ragged` in one pass.
    A fused dispatch is always a single-config dispatch; per-segment
    iteration counts are resolved from ``config`` against each key's row
    count.  Every segment's outputs and traces are bit-identical to
    dispatching that segment alone through ``attend_many``.

    Returns ``(outputs, traces)``: per-segment output arrays of shape
    ``(q_s, d_v_s)`` and per-segment lists of :class:`AttentionTrace`.
    """
    result = batched_search.attend_many_ragged(
        pres,
        values,
        queries,
        seg_offsets,
        [config.iterations(pre.n) for pre in pres],
        score_gap=config.score_gap(),
        min_skip_heuristic=config.min_skip_heuristic,
        fallback_top1=config.fallback_top1,
    )
    kept_rows_all = result.flat_rows[result.keep]
    kept_weights_all = result.weights[result.keep]
    kept_offsets = np.concatenate(([0], np.cumsum(result.kept_counts))).astype(
        np.int64
    )
    cand_offsets = result.offsets
    seg_bounds = np.asarray(seg_offsets, dtype=np.int64)
    traces: list[list[AttentionTrace]] = []
    for s, pre in enumerate(pres):
        seg_traces: list[AttentionTrace] = []
        for g in range(int(seg_bounds[s]), int(seg_bounds[s + 1])):
            seg_traces.append(
                AttentionTrace(
                    n=pre.n,
                    m=int(result.iterations[g]),
                    num_candidates=int(result.num_candidates[g]),
                    num_kept=int(result.kept_counts[g]),
                    candidates=result.flat_rows[
                        cand_offsets[g] : cand_offsets[g + 1]
                    ],
                    kept_rows=kept_rows_all[
                        kept_offsets[g] : kept_offsets[g + 1]
                    ],
                    weights=kept_weights_all[
                        kept_offsets[g] : kept_offsets[g + 1]
                    ],
                    used_fallback=bool(result.used_fallback[g]),
                )
            )
        traces.append(seg_traces)
    return result.outputs, traces
