"""End-to-end approximate attention (Section IV, Figure 10 dataflow).

Combines the two approximation stages around the exact attention kernel:

1. greedy candidate selection picks ``C`` likely-relevant rows out of ``n``;
2. exact dot products are computed only for those ``C`` rows;
3. post-scoring selection keeps the ``K`` rows whose softmax weight would
   be non-negligible;
4. softmax and the weighted sum run over the ``K`` survivors.

The :class:`AttentionTrace` returned alongside each output records the
per-stage selection sizes; the hardware performance model consumes these
traces to derive cycle counts (``M + C + K + K + alpha``, Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attention import softmax
from repro.core.candidate_search import greedy_candidate_search
from repro.core.config import ApproximationConfig
from repro.core.efficient_search import PreprocessedKey, efficient_candidate_search
from repro.core.post_scoring import post_scoring_select
from repro.errors import ShapeError

__all__ = ["AttentionTrace", "ApproximateAttention"]


@dataclass
class AttentionTrace:
    """Selection statistics for one approximate attention query.

    Attributes
    ----------
    n:
        Number of rows in the key matrix.
    m:
        Greedy-search iteration count used for this query (0 when candidate
        selection is disabled).
    num_candidates:
        ``C`` — rows selected by the greedy search (== ``n`` when disabled).
    num_kept:
        ``K`` — rows surviving post-scoring selection (== ``C`` when
        disabled).
    candidates:
        Row indices passed to the dot-product stage.
    kept_rows:
        Row indices included in the final softmax / weighted sum.
    weights:
        Softmax weights over ``kept_rows`` (sums to 1).
    used_fallback:
        Candidate selection found no positive greedy score and fell back to
        the single best row.
    """

    n: int
    m: int
    num_candidates: int
    num_kept: int
    candidates: np.ndarray
    kept_rows: np.ndarray
    weights: np.ndarray
    used_fallback: bool

    @property
    def candidate_fraction(self) -> float:
        """``C / n`` — the normalized candidate count of Figure 11b."""
        return self.num_candidates / self.n if self.n else 0.0

    @property
    def kept_fraction(self) -> float:
        """``K / n`` — the normalized selected-entry count of Figure 12b."""
        return self.num_kept / self.n if self.n else 0.0


class ApproximateAttention:
    """Approximate attention with a reusable preprocessed key.

    Parameters
    ----------
    config:
        The approximation operating point (``M`` and ``T``).
    engine:
        ``"reference"`` runs the Figure 6 formulation (vectorized partial
        sort; fastest in NumPy), ``"efficient"`` runs the Figure 7
        heap-and-pointer formulation that mirrors the hardware.  Both
        produce identical candidate sets on tie-free inputs.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.config import conservative
    >>> rng = np.random.default_rng(0)
    >>> key = rng.normal(size=(32, 8)); value = rng.normal(size=(32, 8))
    >>> approx = ApproximateAttention(conservative())
    >>> approx.preprocess(key)
    >>> out, trace = approx.attend(value, rng.normal(size=8))
    >>> out.shape, trace.num_candidates <= 32
    ((8,), True)
    """

    def __init__(self, config: ApproximationConfig, engine: str = "reference"):
        if engine not in ("reference", "efficient"):
            raise ValueError(f"unknown engine {engine!r}")
        self.config = config
        self.engine = engine
        self._pre: PreprocessedKey | None = None

    # ------------------------------------------------------------------
    # key management
    # ------------------------------------------------------------------
    def preprocess(self, key: np.ndarray) -> PreprocessedKey:
        """Sort the key matrix columns off the critical path (Fig. 7 L1-5)."""
        self._pre = PreprocessedKey.build(key)
        return self._pre

    @property
    def preprocessed(self) -> PreprocessedKey:
        if self._pre is None:
            raise RuntimeError("call preprocess(key) before attending")
        return self._pre

    # ------------------------------------------------------------------
    # query-time path
    # ------------------------------------------------------------------
    def select_candidates(self, query: np.ndarray):
        """Run only the candidate-selection stage for ``query``."""
        pre = self.preprocessed
        m = self.config.iterations(pre.n)
        kwargs = dict(
            min_skip_heuristic=self.config.min_skip_heuristic,
            fallback_top1=self.config.fallback_top1,
        )
        if self.engine == "efficient":
            return efficient_candidate_search(pre, query, m, **kwargs)
        return greedy_candidate_search(pre.key, query, m, **kwargs)

    def attend(
        self, value: np.ndarray, query: np.ndarray
    ) -> tuple[np.ndarray, AttentionTrace]:
        """Approximate attention for one query against the preprocessed key.

        Returns the attended output vector and the selection trace.
        """
        pre = self.preprocessed
        value = np.asarray(value, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        if value.ndim != 2 or value.shape[0] != pre.n:
            raise ShapeError(
                f"value shape {value.shape} does not match key rows n={pre.n}"
            )
        if query.shape != (pre.d,):
            raise ShapeError(f"query shape {query.shape} does not match d={pre.d}")

        # Stage 1: candidate selection.
        used_fallback = False
        if self.config.candidate_selection:
            result = self.select_candidates(query)
            candidates = result.candidates
            m = result.iterations
            used_fallback = result.used_fallback
        else:
            candidates = np.arange(pre.n, dtype=np.int64)
            m = 0

        # Stage 2: exact dot products for the candidates only.
        scores = pre.key[candidates] @ query

        # Stage 3: post-scoring selection.
        if self.config.t_percent is not None and scores.shape[0] > 0:
            post = post_scoring_select(scores, self.config.t_percent)
            kept_rows = candidates[post.kept]
            kept_scores = scores[post.kept]
        else:
            kept_rows = candidates
            kept_scores = scores

        # Stage 4: softmax + weighted sum over the survivors.
        weights = softmax(kept_scores)
        output = weights @ value[kept_rows]

        trace = AttentionTrace(
            n=pre.n,
            m=m,
            num_candidates=int(candidates.shape[0]),
            num_kept=int(kept_rows.shape[0]),
            candidates=candidates,
            kept_rows=kept_rows,
            weights=weights,
            used_fallback=used_fallback,
        )
        return output, trace

    def attend_batch(
        self, value: np.ndarray, queries: np.ndarray
    ) -> tuple[np.ndarray, list[AttentionTrace]]:
        """Approximate self-attention: many queries over one preprocessed key.

        The preprocessing cost is paid once and amortized over all queries,
        which is the BERT usage pattern the paper highlights (Section IV-C).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ShapeError(f"queries must be 2-D (q, d), got {queries.shape}")
        outputs = np.empty((queries.shape[0], value.shape[1]), dtype=np.float64)
        traces: list[AttentionTrace] = []
        for i, query in enumerate(queries):
            outputs[i], trace = self.attend(value, query)
            traces.append(trace)
        return outputs, traces
