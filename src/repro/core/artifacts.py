"""Buffer-backed prepared-key artifacts: pack once, map anywhere.

The paper's economics rest on building the per-column sorted key
artifact once, off the critical path, and reusing it across queries.
Until this module, that artifact — a
:class:`~repro.core.efficient_search.PreprocessedKey` of three
``(n, d)`` arrays — only ever lived as private heap allocations: the
serving layer pickled it over the spawn-shard pipe on every
registration fan-out and threw it away entirely on cache eviction.

:class:`ArtifactBuffer` turns the artifact into **one contiguous
buffer** — a fixed header followed by the ``sorted_values`` /
``row_ids`` / ``key`` planes (and optionally the session's ``value``
matrix) — with three interchangeable storages:

``"heap"``
    A private ``bytearray``: the plain serialization, used as the
    staging format and for cross-host-style transports.
``"shm"``
    A POSIX shared-memory segment
    (:class:`multiprocessing.shared_memory.SharedMemory`): the cluster
    packs a session's prepared key once and every spawn-shard replica
    *adopts* the segment by name — no pickling, no per-replica column
    re-sort, one physical copy of the artifact per host.
``"mmap"``
    A memory-mapped disk file: the key cache's spill tier writes cold
    artifacts here and a later checkout *promotes by mmap* instead of
    re-sorting — the pages fault in lazily, off the critical path.

Every storage round-trips **bit-identically**: :meth:`ArtifactBuffer.view`
reconstructs the ``PreprocessedKey`` as zero-copy ``np.frombuffer``
views over the buffer, so selection over an adopted artifact is exactly
selection over the freshly built one.  Views are read-only; mutations
of an adopted key go through the incremental splices of
:mod:`repro.core.incremental`, which build fresh private arrays
(copy-on-write) and never write through the shared buffer.

Lifecycle ownership is explicit.  The creator of a segment or spill
file is its *owner*: owners are refcounted (:meth:`retain` /
:meth:`release`) and destroy the backing name via :meth:`unlink` when
the last reference goes.  Adopters (:meth:`attach`, :meth:`map_file`)
only ever :meth:`close` their mapping — an adopter must never unlink a
name it does not own.  Owner segments additionally carry a GC
finalizer, so a test that forgets to stop a cluster still leaves no
``/dev/shm`` residue once the owner is collected.
"""

from __future__ import annotations

import mmap
import os
import secrets
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.core.efficient_search import PreprocessedKey
from repro.errors import ShapeError

__all__ = [
    "ArtifactBuffer",
    "SEGMENT_PREFIX",
    "HEADER_NBYTES",
    "artifact_nbytes",
]

_MAGIC = 0x41335041  # "A3PA" little-endian
_VERSION = 1

#: Shared-memory segments are named with this prefix so leak checks
#: (tests and CI) can assert no ``/dev/shm/repro-art-*`` residue.
SEGMENT_PREFIX = "repro-art-"

_HEADER = np.dtype(
    [
        ("magic", "<i8"),
        ("version", "<i8"),
        ("n", "<i8"),
        ("d", "<i8"),
        ("d_v", "<i8"),
        ("reserved", "<i8"),
    ]
)
HEADER_NBYTES = int(_HEADER.itemsize)

STORAGES = ("heap", "shm", "mmap")


def artifact_nbytes(n: int, d: int, d_v: int = 0) -> int:
    """Exact byte size of a packed artifact: header plus the float64
    ``sorted_values``, int64 ``row_ids``, float64 ``key`` planes, plus
    the optional ``(n, d_v)`` float64 value payload."""
    return HEADER_NBYTES + 3 * n * d * 8 + n * d_v * 8


def _disarm_shm_close(
    shm: shared_memory.SharedMemory,
) -> shared_memory.SharedMemory:
    """Make ``shm.close()`` tolerate live exported array views.

    NumPy views pin the underlying mmap; the stdlib ``close`` then
    raises ``BufferError`` — once from our own close, and again from
    ``SharedMemory.__del__`` at GC/interpreter exit, where it surfaces
    as unraisable-exception noise.  Shadow ``close`` per instance
    (``__del__`` calls ``self.close()``, so the shadow covers it too):
    on BufferError, release the fd and drop the object's handle on the
    mmap — the views keep the mapping alive, and their GC unmaps it.
    """
    stdlib_close = shm.close

    def close() -> None:
        try:
            stdlib_close()
        except BufferError:
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1
            shm._mmap = None

    shm.close = close
    return shm


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting unlink responsibility.

    Python < 3.13 registers *attached* segments with the process's
    resource tracker, which would unlink them when the attaching
    process exits — pulling the segment out from under every other
    replica.  3.13+ has ``track=False`` for exactly this; earlier
    interpreters suppress the registration call during attach (an
    after-the-fact ``unregister`` would race other attachers of the
    same segment at the shared tracker process).
    """
    try:
        return _disarm_shm_close(
            shared_memory.SharedMemory(name=name, track=False)
        )
    except TypeError:
        pass  # Python < 3.13: no track parameter
    from multiprocessing import resource_tracker

    real_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register
    return _disarm_shm_close(shm)


def _cleanup_owner_shm(shm: shared_memory.SharedMemory) -> None:
    """GC safety net for an owner segment that was never released."""
    try:
        shm.unlink()
    except Exception:  # noqa: BLE001 — already unlinked is fine
        pass
    try:
        shm.close()
    except Exception:  # noqa: BLE001 — live views keep the map alive
        pass


class ArtifactBuffer:
    """One prepared-key artifact in a single contiguous buffer.

    Construct via the classmethods — :meth:`pack` to serialize a
    :class:`PreprocessedKey` into fresh storage (becoming its owner),
    :meth:`attach` to adopt an existing shared-memory segment by name,
    or :meth:`map_file` to adopt a spilled artifact from disk.  Direct
    construction wraps an already-filled buffer and validates its
    header.

    Attributes
    ----------
    kind:
        One of :data:`STORAGES`.
    owner:
        Whether this handle created (and must eventually unlink) the
        backing segment or file.  Adopters are never owners.
    nbytes:
        Exact packed size (the backing may be page-rounded larger).
    """

    def __init__(
        self,
        kind: str,
        mem,
        *,
        shm: shared_memory.SharedMemory | None = None,
        mm: mmap.mmap | None = None,
        path: str | None = None,
        owner: bool = False,
    ):
        if kind not in STORAGES:
            raise ValueError(f"unknown storage {kind!r}; expected {STORAGES}")
        self.kind = kind
        self._mem = mem
        self._shm = shm
        self._mm = mm
        self.path = path
        self.owner = owner
        self._refs = 1
        self._pre: PreprocessedKey | None = None
        self._value: np.ndarray | None = None
        if len(mem) < HEADER_NBYTES:
            raise ValueError(
                f"buffer of {len(mem)} bytes is too small for an artifact "
                "header"
            )
        header = np.frombuffer(mem, dtype=_HEADER, count=1)[0]
        if int(header["magic"]) != _MAGIC:
            raise ValueError("not an artifact buffer (bad magic)")
        if int(header["version"]) != _VERSION:
            raise ValueError(
                f"unsupported artifact version {int(header['version'])}"
            )
        self.n = int(header["n"])
        self.d = int(header["d"])
        self.d_v = int(header["d_v"])
        if self.n < 0 or self.d < 0 or self.d_v < 0:
            raise ValueError("corrupt artifact header (negative dimensions)")
        self.nbytes = artifact_nbytes(self.n, self.d, self.d_v)
        if len(mem) < self.nbytes:
            raise ValueError(
                f"truncated artifact: header promises {self.nbytes} bytes, "
                f"buffer holds {len(mem)}"
            )
        # Owner segments get a GC finalizer so an unreleased segment can
        # never outlive its owning process as /dev/shm residue.
        if owner and shm is not None:
            self._finalizer = weakref.finalize(self, _cleanup_owner_shm, shm)
        else:
            self._finalizer = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def pack(
        cls,
        pre: PreprocessedKey,
        value: np.ndarray | None = None,
        *,
        storage: str = "heap",
        name: str | None = None,
        path: str | None = None,
    ) -> "ArtifactBuffer":
        """Serialize a prepared key (and optionally the session's value
        matrix) into one freshly allocated buffer.

        The copy is bit-exact: each array plane is written with a plain
        element assignment, so NaN payloads and signed zeros survive and
        :meth:`view` round-trips ``np.array_equal`` with matching dtypes.
        The returned handle **owns** the storage it allocated.
        """
        n, d = pre.n, pre.d
        value_arr = None
        d_v = 0
        if value is not None:
            value_arr = np.ascontiguousarray(value, dtype=np.float64)
            if value_arr.ndim != 2 or value_arr.shape[0] != n:
                raise ShapeError(
                    f"value payload must be 2-D with n={n} rows, got "
                    f"{value_arr.shape}"
                )
            d_v = int(value_arr.shape[1])
        total = artifact_nbytes(n, d, d_v)
        shm = mm = None
        if storage == "heap":
            mem = memoryview(bytearray(total))
        elif storage == "shm":
            if name is None:
                name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
            shm = _disarm_shm_close(
                shared_memory.SharedMemory(
                    name=name, create=True, size=total
                )
            )
            mem = shm.buf
        elif storage == "mmap":
            if path is None:
                raise ValueError("storage='mmap' requires a path")
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o600)
            try:
                os.ftruncate(fd, total)
                mm = mmap.mmap(fd, total, access=mmap.ACCESS_WRITE)
            finally:
                os.close(fd)
            mem = memoryview(mm)
        else:
            raise ValueError(
                f"unknown storage {storage!r}; expected one of {STORAGES}"
            )
        header = np.frombuffer(mem, dtype=_HEADER, count=1)
        header[0] = (_MAGIC, _VERSION, n, d, d_v, 0)
        offset = HEADER_NBYTES
        planes = [
            (pre.sorted_values, np.float64),
            (pre.row_ids, np.int64),
            (pre.key, np.float64),
        ]
        if value_arr is not None:
            planes.append((value_arr, np.float64))
        for arr, dtype in planes:
            count = int(arr.shape[0]) * int(arr.shape[1])
            dst = np.frombuffer(
                mem, dtype=dtype, count=count, offset=offset
            ).reshape(arr.shape)
            dst[...] = arr
            offset += count * 8
        # No msync: mapped writes are visible to every same-machine
        # reader through the shared page cache, and durability across a
        # crash is worthless here (the records pointing at spill files
        # die with the process).  A synchronous flush costs as much as
        # the column sort it is meant to amortize away.
        return cls(storage, mem, shm=shm, mm=mm, path=path, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ArtifactBuffer":
        """Adopt an existing shared-memory segment by name (never owns
        it — closing this handle leaves the segment for its creator to
        unlink)."""
        shm = _attach_shm(name)
        try:
            return cls("shm", shm.buf, shm=shm, owner=False)
        except ValueError:
            try:
                shm.close()
            except BufferError:
                pass  # stray header view; GC releases the mapping
            raise

    @classmethod
    def map_file(cls, path: str) -> "ArtifactBuffer":
        """Adopt a spilled artifact from disk via a read-only mmap.

        The pages fault in lazily on first touch, so promotion costs
        O(header) up front rather than O(n d log n) re-sorting; the
        mapping stays valid even if the file is unlinked afterwards.
        """
        fd = os.open(path, os.O_RDONLY)
        try:
            size = os.fstat(fd).st_size
            if size < HEADER_NBYTES:
                raise ValueError(
                    f"{path!r} is too small to be an artifact file"
                )
            mm = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
        try:
            return cls("mmap", memoryview(mm), mm=mm, path=path, owner=False)
        except ValueError:
            try:
                mm.close()
            except BufferError:
                pass  # stray header view; GC releases the mapping
            raise

    @property
    def name(self) -> str | None:
        """The shared-memory segment name (``None`` for other storages)."""
        return self._shm.name if self._shm is not None else None

    # ------------------------------------------------------------------
    # zero-copy views
    # ------------------------------------------------------------------
    def _plane(self, index: int, dtype, cols: int) -> np.ndarray:
        offset = HEADER_NBYTES + index * self.n * self.d * 8
        arr = np.frombuffer(
            self._mem, dtype=dtype, count=self.n * cols, offset=offset
        ).reshape(self.n, cols)
        if arr.flags.writeable:
            arr.flags.writeable = False
        return arr

    def view(self) -> PreprocessedKey:
        """The packed artifact as a :class:`PreprocessedKey` of
        read-only zero-copy views over this buffer.

        Bit-identical to the ``PreprocessedKey`` that was packed:
        ``np.array_equal`` holds per plane, dtypes included.  The views
        keep the underlying mapping alive; mutating a view is an error
        (splices build fresh private arrays instead — copy-on-write).
        """
        if self._pre is None:
            if self._mem is None:
                raise ValueError("artifact buffer is closed")
            self._pre = PreprocessedKey(
                sorted_values=self._plane(0, np.float64, self.d),
                row_ids=self._plane(1, np.int64, self.d),
                key=self._plane(2, np.float64, self.d),
            )
        return self._pre

    def value_view(self) -> np.ndarray | None:
        """The packed ``(n, d_v)`` value payload, or ``None`` when the
        artifact was packed without one."""
        if self.d_v == 0:
            return None
        if self._value is None:
            if self._mem is None:
                raise ValueError("artifact buffer is closed")
            offset = HEADER_NBYTES + 3 * self.n * self.d * 8
            arr = np.frombuffer(
                self._mem,
                dtype=np.float64,
                count=self.n * self.d_v,
                offset=offset,
            ).reshape(self.n, self.d_v)
            if arr.flags.writeable:
                arr.flags.writeable = False
            self._value = arr
        return self._value

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def retain(self) -> "ArtifactBuffer":
        """Take one more reference to an owned backing (see
        :meth:`release`)."""
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last release unlinks (owners) and
        closes the backing."""
        self._refs -= 1
        if self._refs <= 0:
            if self.owner:
                self.unlink()
            self.close()

    def close(self) -> None:
        """Detach this handle's mapping.

        Tolerates live exported array views (NumPy pins the buffer): the
        mapping then survives until the views are garbage-collected,
        which is safe — :meth:`unlink` alone removes the name, and an
        anonymous mapping holds no ``/dev/shm`` entry.
        """
        self._pre = None
        self._value = None
        self._mem = None
        try:
            if self._shm is not None:
                self._shm.close()  # disarmed: tolerates live views
            elif self._mm is not None:
                self._mm.close()
        except BufferError:
            pass  # live views pin the mmap; their GC unmaps it

    def unlink(self) -> None:
        """Destroy the backing *name* (shm segment or spill file).

        Only meaningful for owners; existing mappings — this process's
        and other processes' — remain valid until closed, which is what
        makes eager unlinking safe.  Idempotent.
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self.kind == "shm" and self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        elif self.kind == "mmap" and self.path is not None:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
