"""Exact soft-attention reference implementation.

This module implements the attention mechanism exactly as described in
Figure 1 of the paper: a dot-product similarity search over the rows of a
key matrix, a softmax normalization, and a weighted sum over the rows of a
value matrix.  Every approximate or hardware-modelled variant in this
library is validated against these functions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "softmax",
    "attention_scores",
    "attention",
    "attention_from_scores",
    "self_attention",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax.

    Subtracts the running maximum before exponentiation, exactly as the
    exponent-computation module of the A3 pipeline does (Section III-A,
    Module 2), which keeps every exponent argument non-positive.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def _check_inputs(key: np.ndarray, value: np.ndarray, query: np.ndarray) -> None:
    if key.ndim != 2:
        raise ShapeError(f"key must be 2-D (n, d), got shape {key.shape}")
    if value.ndim != 2:
        raise ShapeError(f"value must be 2-D (n, d_v), got shape {value.shape}")
    if query.ndim != 1:
        raise ShapeError(f"query must be 1-D (d,), got shape {query.shape}")
    if key.shape[0] != value.shape[0]:
        raise ShapeError(
            f"key and value must have the same number of rows: "
            f"{key.shape[0]} != {value.shape[0]}"
        )
    if key.shape[1] != query.shape[0]:
        raise ShapeError(
            f"key width {key.shape[1]} does not match query length {query.shape[0]}"
        )


def attention_scores(key: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Step 1 of Figure 1: the dot product of the query with every key row."""
    key = np.asarray(key, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if key.ndim != 2 or query.ndim != 1 or key.shape[1] != query.shape[0]:
        raise ShapeError(
            f"incompatible shapes for scores: key {key.shape}, query {query.shape}"
        )
    return key @ query


def attention_from_scores(scores: np.ndarray, value: np.ndarray) -> np.ndarray:
    """Steps 2 and 3 of Figure 1 given precomputed similarity scores."""
    scores = np.asarray(scores, dtype=np.float64)
    value = np.asarray(value, dtype=np.float64)
    if scores.ndim != 1 or value.ndim != 2 or scores.shape[0] != value.shape[0]:
        raise ShapeError(
            f"incompatible shapes: scores {scores.shape}, value {value.shape}"
        )
    weights = softmax(scores)
    return weights @ value


def attention(key: np.ndarray, value: np.ndarray, query: np.ndarray) -> np.ndarray:
    """The full exact attention mechanism of Figure 1.

    Parameters
    ----------
    key:
        ``(n, d)`` matrix of search targets.
    value:
        ``(n, d_v)`` matrix whose rows are blended by the softmax weights.
    query:
        ``(d,)`` query vector.

    Returns
    -------
    numpy.ndarray
        The ``(d_v,)`` attended output vector.
    """
    key = np.asarray(key, dtype=np.float64)
    value = np.asarray(value, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    _check_inputs(key, value, query)
    return attention_from_scores(key @ query, value)


def self_attention(
    key: np.ndarray, value: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Exact attention for a batch of queries sharing one key/value pair.

    This is the access pattern of the self-attention mechanism in BERT and
    the Transformer (Section II), where the same ``(n, d)`` key matrix is
    reused by ``n`` query vectors.

    Parameters
    ----------
    queries:
        ``(q, d)`` matrix, one query per row.

    Returns
    -------
    numpy.ndarray
        ``(q, d_v)`` matrix of attended outputs.
    """
    key = np.asarray(key, dtype=np.float64)
    value = np.asarray(value, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2:
        raise ShapeError(f"queries must be 2-D (q, d), got {queries.shape}")
    _check_inputs(key, value, queries[0])
    scores = queries @ key.T
    weights = softmax(scores, axis=-1)
    return weights @ value
