"""Pluggable attention backends.

The paper evaluates accuracy by swapping the attention computation inside
existing model implementations (Section VI-B: "we implement a software
model for approximation and integrate this model with our target
workload's official implementations").  This module provides that
integration point: every model in :mod:`repro.nn` routes its inference-time
attention through an :class:`AttentionBackend`, so exact, approximate, and
quantized attention are interchangeable without touching model code.

The canonical query path is ``attend_many`` — a batch of queries sharing
one key matrix, the BERT self-attention pattern whose preprocessing cost
A3 amortizes (Section IV-C); ``attend`` is its batch-of-one wrapper.
``ApproximateBackend(engine="vectorized")`` services the batched path
with the whole-batch NumPy pipeline of :mod:`repro.core.batched_search`
and additionally supports the module-level :func:`attend_many_ragged`,
which fuses segments belonging to *different* prepared keys into one
mixed dispatch (the serving layer's cross-session batching path).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Protocol

import numpy as np

from repro.core import approximate as approximate_mod
from repro.core import profiling
from repro.core.approximate import ApproximateAttention, AttentionTrace
from repro.core.attention import attention as exact_attention
from repro.core.attention import self_attention
from repro.core.config import ApproximationConfig
from repro.errors import ShapeError
from repro.fixedpoint.fixed_attention import QuantizedAttention

__all__ = [
    "AttentionBackend",
    "BackendStats",
    "KeyFingerprint",
    "ExactBackend",
    "ApproximateBackend",
    "QuantizedBackend",
    "SerialBackend",
    "attend_many_ragged",
    "prepared_nbytes",
]


@dataclass
class BackendStats:
    """Aggregate selection statistics across every attention call.

    These feed the "normalized number of selected candidates / entries"
    panels of Figures 11b, 12b, and the hardware performance model (which
    needs per-query ``(n, M, C, K)`` traces).

    Attributes
    ----------
    keep_traces:
        Whether per-query :class:`AttentionTrace` objects are retained.
    max_traces:
        Upper bound on retained traces; once reached, further traces are
        counted in ``dropped_traces`` instead of stored, so a long
        evaluation run cannot grow memory without limit.  ``None``
        removes the bound.  Figure code should check ``dropped_traces``
        to detect truncation before treating ``traces`` as complete.
    dropped_traces:
        Number of traces discarded because of the ``max_traces`` cap.
    """

    calls: int = 0
    total_rows: int = 0
    total_candidates: int = 0
    total_kept: int = 0
    topk_included: int = 0
    topk_total: int = 0
    traces: list[AttentionTrace] = field(default_factory=list, repr=False)
    keep_traces: bool = True
    max_traces: int | None = 100_000
    dropped_traces: int = 0

    def record(self, trace: AttentionTrace) -> None:
        self.calls += 1
        self.total_rows += trace.n
        self.total_candidates += trace.num_candidates
        self.total_kept += trace.num_kept
        if self.keep_traces:
            if self.max_traces is None or len(self.traces) < self.max_traces:
                self.traces.append(trace)
            else:
                if self.dropped_traces == 0:
                    warnings.warn(
                        f"BackendStats reached max_traces={self.max_traces}; "
                        "further traces are dropped and `traces` is now "
                        "incomplete (check `dropped_traces` before treating "
                        "it as the full run)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                self.dropped_traces += 1

    def record_many(self, traces: list[AttentionTrace]) -> None:
        """Record one batched call's worth of per-query traces."""
        for trace in traces:
            self.record(trace)

    def record_topk(self, included: int, total: int) -> None:
        self.topk_included += included
        self.topk_total += total

    @property
    def topk_retention(self) -> float:
        """Portion of the true top-k rows that survived selection
        (Figure 13b's metric)."""
        return self.topk_included / self.topk_total if self.topk_total else 1.0

    @property
    def candidate_fraction(self) -> float:
        """Mean ``C/n`` across calls (Figure 11b)."""
        return self.total_candidates / self.total_rows if self.total_rows else 0.0

    @property
    def kept_fraction(self) -> float:
        """Mean ``K/n`` across calls (Figure 12b)."""
        return self.total_kept / self.total_rows if self.total_rows else 0.0

    def reset(self) -> None:
        self.calls = self.total_rows = 0
        self.total_candidates = self.total_kept = 0
        self.topk_included = self.topk_total = 0
        self.dropped_traces = 0
        self.traces.clear()

    def merge(self, other: "BackendStats") -> None:
        """Fold ``other``'s counters (and traces, when kept) into this one.

        The serving layer keeps one :class:`BackendStats` per session
        backend; this lets :class:`repro.serve.ServerStats` aggregate
        them into a single figure-compatible view.

        Trace handling mirrors :meth:`record`: a ``keep_traces=False``
        target folds counters only, and its ``dropped_traces`` stays
        purely a cap-truncation signal (disabled retention is not
        truncation); a trace-keeping target absorbs ``other``'s traces
        up to its own ``max_traces`` and counts the overflow.
        """
        self.calls += other.calls
        self.total_rows += other.total_rows
        self.total_candidates += other.total_candidates
        self.total_kept += other.total_kept
        self.topk_included += other.topk_included
        self.topk_total += other.topk_total
        self.dropped_traces += other.dropped_traces
        if self.keep_traces and other.traces:
            if self.max_traces is None:
                room = len(other.traces)
            else:
                room = max(0, self.max_traces - len(self.traces))
            self.traces.extend(other.traces[:room])
            self.dropped_traces += max(0, len(other.traces) - room)


_FINGERPRINT_RAMPS: dict[int, np.ndarray] = {}


def _fingerprint_ramp(size: int) -> np.ndarray:
    """A fixed pseudo-random weight vector, cached per array size."""
    ramp = _FINGERPRINT_RAMPS.get(size)
    if ramp is None:
        ramp = np.random.default_rng(0x5EED).normal(size=size)
        _FINGERPRINT_RAMPS[size] = ramp
    return ramp


@dataclass(frozen=True)
class KeyFingerprint:
    """Cheap content fingerprint of a key matrix.

    ``ApproximateBackend`` keys its cached preprocessing on this rather
    than ``id(key)``: a freed array's id can be recycled by an unrelated
    allocation, silently reusing a stale column sort.  The fingerprint
    combines the shape, the element sum, and a position-weighted sum
    against a fixed pseudo-random ramp — one pass over the key (a few
    microseconds at n=320, d=64, negligible next to an attend), and
    sensitive to partial in-place edits and row/column permutations,
    which a plain sum or strided sample would miss.
    """

    shape: tuple[int, ...]
    total: float
    weighted: float

    @classmethod
    def of(cls, key: np.ndarray) -> "KeyFingerprint":
        key = np.asarray(key, dtype=np.float64)
        if key.size == 0:
            return cls(shape=key.shape, total=0.0, weighted=0.0)
        flat = key.ravel()
        return cls(
            shape=key.shape,
            total=float(flat.sum()),
            weighted=float(flat @ _fingerprint_ramp(flat.size)),
        )

    def matches(self, key: np.ndarray) -> bool:
        """Whether ``key`` has the same shape and contents (to the
        fingerprint's resolution)."""
        key = np.asarray(key, dtype=np.float64)
        if key.shape != self.shape:
            return False
        return KeyFingerprint.of(key) == self


class AttentionBackend(Protocol):
    """The interface every attention implementation exposes to the models."""

    name: str

    def prepare(self, key: np.ndarray) -> None:
        """Accept a new key matrix (comprehension-time preprocessing)."""

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        """Compute the attended output for one query."""

    def attend_many(
        self, key: np.ndarray, value: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Compute attended outputs for a ``(q, d)`` batch of queries."""


def prepared_nbytes(backend: AttentionBackend, key: np.ndarray) -> int:
    """Estimated bytes :meth:`AttentionBackend.prepare` retains for ``key``.

    The serving layer's key-cache accounts capacity in bytes of prepared
    artifacts.  Backends may expose their own ``prepared_nbytes(key)``;
    this helper falls back to the key's own size for backends without
    preprocessing state.
    """
    hook = getattr(backend, "prepared_nbytes", None)
    if hook is not None:
        return int(hook(key))
    return int(np.asarray(key).nbytes)


class ExactBackend:
    """Float64 exact attention; the accuracy baseline of every figure."""

    name = "exact"

    def __init__(self) -> None:
        self.stats = BackendStats(keep_traces=False)

    def prepare(self, key: np.ndarray) -> None:  # no preprocessing needed
        return None

    def _record_full(self, n: int, count: int = 1) -> None:
        rows = np.arange(n)
        trace = AttentionTrace(
            n=n,
            m=0,
            num_candidates=n,
            num_kept=n,
            candidates=rows,
            kept_rows=rows,
            weights=np.empty(0),
            used_fallback=False,
        )
        for _ in range(count):
            self.stats.record(trace)

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        self._record_full(key.shape[0])
        return exact_attention(key, value, query)

    def attend_many(
        self, key: np.ndarray, value: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Batched exact attention: one GEMM over all queries."""
        queries = np.asarray(queries, dtype=np.float64)
        self._record_full(key.shape[0], count=queries.shape[0])
        return self_attention(key, value, queries)


class ApproximateBackend:
    """Candidate selection + post-scoring approximation (Section IV).

    The preprocessing contract: callers *should* invoke :meth:`prepare`
    whenever they switch to a new key matrix (the comprehension step,
    off the critical path); ``attend``/``attend_many`` then reuse the
    column sort, which models the BERT amortization case.  As a guard,
    every attend verifies a cheap :class:`KeyFingerprint` of the key and
    transparently re-prepares on mismatch — unlike the previous
    ``id(key)``-based cache, a recycled object id can never resurrect a
    stale sort.

    Parameters
    ----------
    engine:
        One of ``repro.core.approximate.ENGINES`` — ``"reference"``
        (default), ``"efficient"`` (hardware-shaped), or
        ``"vectorized"`` (fastest for batched ``attend_many``).
    track_topk:
        When set, every call also computes the exact scores and records
        how many of the true top-k rows survived the selection stages —
        the metric of Figure 13b.  (This is measurement instrumentation;
        the approximate output itself never uses the exact scores.)
    rebuild_dirty_fraction:
        Mutation hooks (``append_rows`` / ``delete_rows`` /
        ``replace_key``) splice the prepared structures incrementally;
        once the rows touched since the last full column sort exceed
        this fraction of the key, the next mutation rebuilds from
        scratch instead — an amortized bound on splice-debt.  ``None``
        splices forever.  Either path is bit-identical to a fresh
        prepare of the final key, so this is purely a cost knob.

    Both attend paths accept a keyword-only ``config`` override: the
    prepared column sort is independent of the operating point, so one
    prepared key serves any ``(M, T)`` point — advertised through
    ``supports_config_override`` so the serving layer's quality tiers
    can share a single prepared artifact across tiers.  Overridden
    calls are bit-identical to a backend constructed with that config.
    """

    name = "approximate"
    supports_config_override = True

    def __init__(
        self,
        config: ApproximationConfig,
        engine: str = "reference",
        track_topk: int | None = None,
        rebuild_dirty_fraction: float | None = 0.5,
    ):
        self.config = config
        self.engine = engine
        self.track_topk = track_topk
        if rebuild_dirty_fraction is not None and rebuild_dirty_fraction < 0:
            raise ValueError(
                "rebuild_dirty_fraction must be >= 0 or None, got "
                f"{rebuild_dirty_fraction}"
            )
        self.rebuild_dirty_fraction = rebuild_dirty_fraction
        self._attention = ApproximateAttention(config, engine=engine)
        self._fingerprint: KeyFingerprint | None = None
        self._dirty_rows = 0
        self.stats = BackendStats()
        #: Whether this backend can join a fused multi-key
        #: :func:`attend_many_ragged` dispatch — only the vectorized
        #: engine runs the whole-slab pipeline.
        self.supports_ragged = engine == "vectorized"

    def prepare(self, key: np.ndarray) -> None:
        self._attention.preprocess(key)
        self._fingerprint = KeyFingerprint.of(key)
        self._dirty_rows = 0

    # ------------------------------------------------------------------
    # artifact export / adoption (zero-copy prepared state)
    # ------------------------------------------------------------------
    def export_artifact(
        self,
        value: np.ndarray | None = None,
        *,
        storage: str = "heap",
        name: str | None = None,
        path: str | None = None,
    ):
        """Serialize the prepared state into one contiguous
        :class:`repro.core.artifacts.ArtifactBuffer`.

        ``value`` optionally packs the session's value matrix alongside
        the key planes (the cluster ships both in one segment).  The
        caller owns the returned buffer; this backend keeps its private
        prepared arrays and is unaffected by the buffer's lifecycle.
        """
        from repro.core.artifacts import ArtifactBuffer

        pre = self._attention.preprocessed_or_none
        if pre is None:
            raise RuntimeError("nothing prepared: call prepare(key) first")
        return ArtifactBuffer.pack(
            pre, value, storage=storage, name=name, path=path
        )

    def adopt_artifact(
        self,
        artifact,
        fingerprint: KeyFingerprint | None = None,
        *,
        verify: bool = True,
    ) -> None:
        """Install a packed artifact as this backend's prepared state —
        the zero-copy replacement for :meth:`prepare`.

        The adopted planes are read-only views over the buffer; every
        later mutation splices copy-on-write into fresh private arrays,
        so the buffer is never written through.  ``fingerprint``, when
        given, is checked against the packed key (``verify=False`` skips
        the O(n d) content recompute and trusts the pairing — appropriate
        when this process wrote the artifact itself); when omitted, the
        fingerprint is computed from the packed key.
        """
        pre = artifact.view()
        if fingerprint is None:
            fingerprint = KeyFingerprint.of(pre.key)
        elif verify and not fingerprint.matches(pre.key):
            raise ValueError(
                "artifact content does not match the expected key "
                "fingerprint"
            )
        self._attention.adopt(pre)
        self._fingerprint = fingerprint
        self._dirty_rows = 0

    # ------------------------------------------------------------------
    # incremental key mutation (streaming sessions)
    # ------------------------------------------------------------------
    def append_rows(self, rows: np.ndarray) -> None:
        """Splice new key rows into the prepared state (see
        :mod:`repro.core.incremental`); a no-op before the first
        ``prepare`` (the next attend builds the final key fresh)."""
        rows = np.asarray(rows, dtype=np.float64)
        pre = self._attention.preprocessed_or_none
        if pre is not None and (rows.ndim != 2 or rows.shape[1] != pre.d):
            raise ShapeError(
                f"appended rows must be 2-D (k, d={pre.d}), got {rows.shape}"
            )
        self._mutate_prepared(
            touched=rows.shape[0] if rows.ndim == 2 else 1,
            splice=lambda: self._attention.append_rows(rows),
            rebuild_key=lambda key: np.concatenate([key, rows]),
        )

    def delete_rows(self, rows) -> None:
        """Remove key rows from the prepared state (dense renumbering).

        Indices are validated up front (range, duplicates, non-empty
        survivor set) so the splice and dirty-fraction rebuild paths
        reject exactly the same inputs — numpy would otherwise wrap a
        negative index silently on the rebuild path.
        """
        from repro.core.incremental import validate_delete_rows

        pre = self._attention.preprocessed_or_none
        if pre is not None:
            rows = validate_delete_rows(rows, pre.n)
        else:
            rows = np.asarray(rows, dtype=np.int64).ravel()

        def rebuild_key(key: np.ndarray) -> np.ndarray:
            keep = np.ones(key.shape[0], dtype=bool)
            keep[rows] = False
            return key[keep]

        self._mutate_prepared(
            touched=rows.size,
            splice=lambda: self._attention.delete_rows(rows),
            rebuild_key=rebuild_key,
        )

    def replace_key(self, row: int, new_row: np.ndarray) -> None:
        """Replace one key row inside the prepared state (validated up
        front, identically on the splice and rebuild paths)."""
        from repro.core.incremental import validate_replace_row

        pre = self._attention.preprocessed_or_none
        if pre is not None:
            row, new_row = validate_replace_row(row, new_row, pre.n, pre.d)
        else:
            new_row = np.asarray(new_row, dtype=np.float64).ravel()

        def rebuild_key(key: np.ndarray) -> np.ndarray:
            out = key.copy()
            out[row] = new_row
            return out

        self._mutate_prepared(
            touched=1,
            splice=lambda: self._attention.replace_key(row, new_row),
            rebuild_key=rebuild_key,
        )

    def _mutate_prepared(self, touched: int, splice, rebuild_key) -> None:
        """Apply one key mutation: splice, or full rebuild past the
        dirty-fraction budget.  Both paths end bit-identical to a fresh
        ``prepare`` of the mutated key, so the choice is pure cost."""
        pre = self._attention.preprocessed_or_none
        if pre is None or self._fingerprint is None:
            return  # nothing prepared yet; the next attend starts fresh
        prof = profiling.HOOK
        t0 = perf_counter() if prof is not None else 0.0
        if (
            self.rebuild_dirty_fraction is not None
            and self._dirty_rows + touched > self.rebuild_dirty_fraction * pre.n
        ):
            self._attention.preprocess(rebuild_key(pre.key))
            self._dirty_rows = 0
            if prof is not None:
                prof.record("mutate.rebuild", perf_counter() - t0)
        else:
            splice()
            self._dirty_rows += touched
            if prof is not None:
                prof.record("mutate.splice", perf_counter() - t0)
        self._fingerprint = KeyFingerprint.of(
            self._attention.preprocessed.key
        )

    def prepared_nbytes(self, key: np.ndarray) -> int:
        """Bytes retained per prepared key: the ``(n, d)`` float64 sorted
        values, the int64 row ids, and the float64 key copy."""
        key = np.asarray(key)
        return 3 * key.size * 8

    def _ensure_prepared(self, key: np.ndarray) -> None:
        if self._fingerprint is None or not self._fingerprint.matches(key):
            self.prepare(key)

    def attend(
        self,
        key: np.ndarray,
        value: np.ndarray,
        query: np.ndarray,
        *,
        config: ApproximationConfig | None = None,
    ) -> np.ndarray:
        """Single-query attend: a batch-of-one :meth:`attend_many`."""
        query = np.asarray(query, dtype=np.float64)
        return self.attend_many(
            key, value, query[np.newaxis, :], config=config
        )[0]

    def attend_many(
        self,
        key: np.ndarray,
        value: np.ndarray,
        queries: np.ndarray,
        *,
        config: ApproximationConfig | None = None,
    ) -> np.ndarray:
        """Batched approximate attention over one preprocessed key.

        The canonical attend entry point.  With ``engine="vectorized"``
        the whole batch runs through one set of array operations; other
        engines fall back to the per-query loop inside
        ``ApproximateAttention.attend_many``.
        """
        self._ensure_prepared(key)
        outputs, traces = self._attention.attend_many(
            value, queries, config=config
        )
        self._record_attended(key, queries, traces)
        return outputs

    def _record_attended(
        self,
        key: np.ndarray,
        queries: np.ndarray,
        traces: list,
    ) -> None:
        """Record selection traces and (optionally) top-k recall for one
        dispatched query batch."""
        self.stats.record_many(traces)
        if self.track_topk and traces:
            k = min(self.track_topk, key.shape[0])
            exact_scores = np.asarray(key) @ np.asarray(queries).T  # (n, q)
            top_rows = np.argpartition(exact_scores, -k, axis=0)[-k:]
            for i, trace in enumerate(traces):
                included = int(np.isin(top_rows[:, i], trace.kept_rows).sum())
                self.stats.record_topk(included, k)


def attend_many_ragged(
    backends: list[ApproximateBackend],
    keys: list[np.ndarray],
    values: list[np.ndarray],
    queries: np.ndarray,
    seg_offsets: np.ndarray,
    *,
    config: ApproximationConfig | None = None,
) -> list[np.ndarray]:
    """Fused multi-key attend across several prepared backends.

    Segment ``s`` of the ``(Q, d)`` query slab (rows
    ``seg_offsets[s]:seg_offsets[s + 1]``) attends over
    ``keys[s]`` / ``values[s]`` through ``backends[s]``, and the whole
    mixed batch runs through
    :func:`repro.core.approximate.attend_many_ragged` in one pass — the
    serving layer's cross-session dispatch path.  Each backend must
    advertise ``supports_ragged`` (the vectorized engine); a fused
    dispatch is always a single-config dispatch, with ``config``
    overriding the first backend's operating point for every segment
    exactly as the per-call override of :meth:`ApproximateBackend.attend_many`
    would.  Selection traces and top-k recall are recorded on each
    segment's own backend stats.

    Returns the per-segment output arrays (``outputs[s]`` of shape
    ``(q_s, d_v_s)``), bit-identical per segment to dispatching that
    segment alone through its backend's ``attend_many``.
    """
    if not backends:
        return []
    if not (len(backends) == len(keys) == len(values)):
        raise ShapeError(
            f"got {len(backends)} backends but {len(keys)} keys and "
            f"{len(values)} values"
        )
    for backend in backends:
        if not getattr(backend, "supports_ragged", False):
            raise ValueError(
                f"backend {backend.name!r} (engine "
                f"{getattr(backend, 'engine', '?')!r}) does not support "
                "fused ragged dispatch"
            )
    cfg = backends[0].config if config is None else config
    for backend, key in zip(backends, keys):
        backend._ensure_prepared(key)
    pres = [backend._attention.preprocessed for backend in backends]
    outputs, seg_traces = approximate_mod.attend_many_ragged(
        pres, values, queries, seg_offsets, cfg
    )
    queries = np.asarray(queries)
    for s, backend in enumerate(backends):
        lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
        backend._record_attended(keys[s], queries[lo:hi], seg_traces[s])
    return outputs


class SerialBackend:
    """Adapter forcing one ``attend`` call per query of a batch.

    Models and workloads batch their attention through ``attend_many``;
    this wrapper restores the query-at-a-time execution the accelerator
    services (one candidate search per arriving query), which is what
    the Figure 3 profiling study measures.  Stats remain those of the
    wrapped backend.
    """

    def __init__(self, inner: AttentionBackend):
        self.inner = inner

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def stats(self) -> BackendStats | None:
        return getattr(self.inner, "stats", None)

    def prepare(self, key: np.ndarray) -> None:
        self.inner.prepare(key)

    def append_rows(self, rows: np.ndarray) -> None:
        hook = getattr(self.inner, "append_rows", None)
        if hook is not None:
            hook(rows)

    def delete_rows(self, rows) -> None:
        hook = getattr(self.inner, "delete_rows", None)
        if hook is not None:
            hook(rows)

    def replace_key(self, row: int, new_row: np.ndarray) -> None:
        hook = getattr(self.inner, "replace_key", None)
        if hook is not None:
            hook(row, new_row)

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        return self.inner.attend(key, value, query)

    def attend_many(
        self, key: np.ndarray, value: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        outputs = np.empty(
            (queries.shape[0], value.shape[1]), dtype=np.float64
        )
        for i, query in enumerate(queries):
            outputs[i] = self.inner.attend(key, value, query)
        return outputs


class QuantizedBackend:
    """Fixed-point base-A3 attention (Section III-B, used for the
    quantization study of Section VI-B)."""

    name = "quantized"

    def __init__(self, i: int = 4, f: int = 4, max_n: int = 512, d: int = 64):
        self.i = i
        self.f = f
        self.max_n = max_n
        self.d = d
        self._pipelines: dict[int, QuantizedAttention] = {}
        self.stats = BackendStats(keep_traces=False)

    def prepare(self, key: np.ndarray) -> None:
        return None

    def _pipeline_for(self, d: int) -> QuantizedAttention:
        if d not in self._pipelines:
            self._pipelines[d] = QuantizedAttention(
                i=self.i, f=self.f, n=self.max_n, d=d
            )
        return self._pipelines[d]

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        n, d = key.shape
        result = self._pipeline_for(d).attend(key, value, query)
        self.stats.record(
            AttentionTrace(
                n=n,
                m=0,
                num_candidates=n,
                num_kept=n,
                candidates=np.arange(n),
                kept_rows=np.arange(n),
                weights=result.weights,
                used_fallback=False,
            )
        )
        return result.output

    def attend_many(
        self, key: np.ndarray, value: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """The fixed-point pipeline models one query at a time."""
        queries = np.asarray(queries, dtype=np.float64)
        outputs = np.empty(
            (queries.shape[0], value.shape[1]), dtype=np.float64
        )
        for i, query in enumerate(queries):
            outputs[i] = self.attend(key, value, query)
        return outputs
