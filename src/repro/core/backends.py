"""Pluggable attention backends.

The paper evaluates accuracy by swapping the attention computation inside
existing model implementations (Section VI-B: "we implement a software
model for approximation and integrate this model with our target
workload's official implementations").  This module provides that
integration point: every model in :mod:`repro.nn` routes its inference-time
attention through an :class:`AttentionBackend`, so exact, approximate, and
quantized attention are interchangeable without touching model code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.core.approximate import ApproximateAttention, AttentionTrace
from repro.core.attention import attention as exact_attention
from repro.core.config import ApproximationConfig
from repro.fixedpoint.fixed_attention import QuantizedAttention

__all__ = [
    "AttentionBackend",
    "BackendStats",
    "ExactBackend",
    "ApproximateBackend",
    "QuantizedBackend",
]


@dataclass
class BackendStats:
    """Aggregate selection statistics across every attention call.

    These feed the "normalized number of selected candidates / entries"
    panels of Figures 11b, 12b, and the hardware performance model (which
    needs per-query ``(n, M, C, K)`` traces).
    """

    calls: int = 0
    total_rows: int = 0
    total_candidates: int = 0
    total_kept: int = 0
    topk_included: int = 0
    topk_total: int = 0
    traces: list[AttentionTrace] = field(default_factory=list, repr=False)
    keep_traces: bool = True

    def record(self, trace: AttentionTrace) -> None:
        self.calls += 1
        self.total_rows += trace.n
        self.total_candidates += trace.num_candidates
        self.total_kept += trace.num_kept
        if self.keep_traces:
            self.traces.append(trace)

    def record_topk(self, included: int, total: int) -> None:
        self.topk_included += included
        self.topk_total += total

    @property
    def topk_retention(self) -> float:
        """Portion of the true top-k rows that survived selection
        (Figure 13b's metric)."""
        return self.topk_included / self.topk_total if self.topk_total else 1.0

    @property
    def candidate_fraction(self) -> float:
        """Mean ``C/n`` across calls (Figure 11b)."""
        return self.total_candidates / self.total_rows if self.total_rows else 0.0

    @property
    def kept_fraction(self) -> float:
        """Mean ``K/n`` across calls (Figure 12b)."""
        return self.total_kept / self.total_rows if self.total_rows else 0.0

    def reset(self) -> None:
        self.calls = self.total_rows = 0
        self.total_candidates = self.total_kept = 0
        self.topk_included = self.topk_total = 0
        self.traces.clear()


class AttentionBackend(Protocol):
    """The interface every attention implementation exposes to the models."""

    name: str

    def prepare(self, key: np.ndarray) -> None:
        """Accept a new key matrix (comprehension-time preprocessing)."""

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        """Compute the attended output for one query."""


class ExactBackend:
    """Float64 exact attention; the accuracy baseline of every figure."""

    name = "exact"

    def __init__(self) -> None:
        self.stats = BackendStats(keep_traces=False)

    def prepare(self, key: np.ndarray) -> None:  # no preprocessing needed
        return None

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        n = key.shape[0]
        self.stats.record(
            AttentionTrace(
                n=n,
                m=0,
                num_candidates=n,
                num_kept=n,
                candidates=np.arange(n),
                kept_rows=np.arange(n),
                weights=np.empty(0),
                used_fallback=False,
            )
        )
        return exact_attention(key, value, query)


class ApproximateBackend:
    """Candidate selection + post-scoring approximation (Section IV).

    ``prepare`` performs the off-critical-path column sort; repeated
    ``attend`` calls against the same key reuse it, which models the BERT
    amortization case.

    Parameters
    ----------
    track_topk:
        When set, every call also computes the exact scores and records
        how many of the true top-k rows survived the selection stages —
        the metric of Figure 13b.  (This is measurement instrumentation;
        the approximate output itself never uses the exact scores.)
    """

    name = "approximate"

    def __init__(
        self,
        config: ApproximationConfig,
        engine: str = "reference",
        track_topk: int | None = None,
    ):
        self.config = config
        self.track_topk = track_topk
        self._attention = ApproximateAttention(config, engine=engine)
        self._key_id: int | None = None
        self.stats = BackendStats()

    def prepare(self, key: np.ndarray) -> None:
        self._attention.preprocess(key)
        self._key_id = id(key)

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        if self._key_id != id(key):
            self.prepare(key)
        output, trace = self._attention.attend(value, query)
        self.stats.record(trace)
        if self.track_topk:
            k = min(self.track_topk, key.shape[0])
            exact_scores = key @ query
            top_rows = np.argpartition(exact_scores, -k)[-k:]
            included = int(np.isin(top_rows, trace.kept_rows).sum())
            self.stats.record_topk(included, k)
        return output


class QuantizedBackend:
    """Fixed-point base-A3 attention (Section III-B, used for the
    quantization study of Section VI-B)."""

    name = "quantized"

    def __init__(self, i: int = 4, f: int = 4, max_n: int = 512, d: int = 64):
        self.i = i
        self.f = f
        self.max_n = max_n
        self.d = d
        self._pipelines: dict[int, QuantizedAttention] = {}
        self.stats = BackendStats(keep_traces=False)

    def prepare(self, key: np.ndarray) -> None:
        return None

    def _pipeline_for(self, d: int) -> QuantizedAttention:
        if d not in self._pipelines:
            self._pipelines[d] = QuantizedAttention(
                i=self.i, f=self.f, n=self.max_n, d=d
            )
        return self._pipelines[d]

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        n, d = key.shape
        result = self._pipeline_for(d).attend(key, value, query)
        self.stats.record(
            AttentionTrace(
                n=n,
                m=0,
                num_candidates=n,
                num_kept=n,
                candidates=np.arange(n),
                kept_rows=np.arange(n),
                weights=result.weights,
                used_fallback=False,
            )
        )
        return result.output
