"""Batched vectorized greedy candidate search (the ``"vectorized"`` engine).

The paper's headline deployment amortizes the key preprocessing over many
queries against one key matrix — the BERT self-attention pattern of
Section IV-C.  The reference engine replays the Figure 6 walk one query
at a time through Python-level stream pops; this module runs the same
walk for a whole ``(q, d)`` query batch using NumPy array operations:

* **stream extraction** exploits the preprocessed column-sorted key the
  same way the Figure 7 hardware does: along each sorted column the
  products ``value * query[col]`` are monotone, so the ``M`` globally
  largest (smallest) products per query live in a per-column prefix
  whose exact length a batched binary search finds against a boundary
  estimate from a strided product sample.  Gathering just those ragged
  prefixes and running one ``argpartition`` + stable ``argsort`` along
  the flattened pool axis yields each query's ``(q, m)`` max/min stream
  without ever materializing the full ``(q, n, d)`` product tensor;
* **the greedy walk** advances all queries in lockstep.  The max stream
  is consumed unconditionally, so only the min-side pointer is state: a
  per-query running total gates each min pop exactly as the Section
  IV-C min-skip heuristic prescribes, and each of the ``M`` iterations
  is a handful of ``(q,)``-shaped array operations (no gating at all
  when the heuristic is disabled);
* **greedy-score accumulation** happens in one shot afterwards: every
  consumed product is written into an interleaved per-iteration slot
  grid (max pop of iteration ``i`` before the min pop of iteration
  ``i``) and accumulated per row with a single ``bincount``, whose
  sequential scan reproduces the reference engine's addition order
  exactly.

Because the per-query sequence of running-total updates and greedy-score
additions matches :func:`repro.core.candidate_search.greedy_candidate_search`
addition-for-addition, every per-query selection outcome (greedy scores,
candidate sets, pop counts, fallback flags) is bit-identical to the
reference engine on tie-free inputs.  The property tests in
``tests/core/test_search_equivalence.py`` enforce this.

**Tie policy.**  When a query's product multiset contains duplicates,
the engines consume tied entries in different orders: the reference
walk breaks ties by row-major flat position of the product matrix,
while this engine's stream extraction breaks them by its column-prefix
pool layout.  Two regimes follow, both pinned by
``tests/core/test_tie_handling.py``:

* ties confined to a single row (duplicated key *columns* whose query
  entries also coincide) are harmless — every tied product belongs to
  the same row, so candidate sets, pop counts, and fallback flags match
  the reference exactly and greedy scores match to roundoff (the
  addition order inside a row may permute);
* ties spanning rows (duplicated key *rows*) are implementation-defined
  — the row attribution of a tied product, and therefore candidate
  sets and attended outputs, may diverge from the reference.  The
  *value* sequence of both streams is tie-independent, so the walk
  statistics still agree exactly: iterations, max/min pop counts, skip
  counts, and the total greedy mass summed over rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core import profiling
from repro.core.efficient_search import PreprocessedKey
from repro.core.selection import CandidateResult
from repro.errors import ShapeError

__all__ = ["BatchedCandidateResult", "batched_candidate_search"]


@dataclass
class BatchedCandidateResult:
    """Per-query candidate-search outcomes for a whole query batch.

    The candidate sets are ragged (each query selects a different
    number of rows), so they are stored flat: ``flat_rows`` holds every
    query's candidate rows concatenated in ascending row order, and
    ``flat_query`` the owning query of each entry.  Query ``i`` owns
    ``flat_rows[offsets[i]:offsets[i + 1]]``; the padded ``candidates``
    matrix is derived on demand.

    Attributes
    ----------
    flat_query / flat_rows:
        Parallel 1-D int64 arrays: (query, candidate row) pairs sorted
        by query then row.
    num_candidates:
        ``(q,)`` number of candidates per query (``C``).
    greedy_scores:
        ``(q, n)`` greedy-score matrix after the walk.
    iterations / max_pops / min_pops / skipped_min:
        ``(q,)`` per-query loop statistics, identical in meaning to the
        scalar fields of :class:`~repro.core.selection.CandidateResult`.
    used_fallback:
        ``(q,)`` boolean; ``True`` where the top-1 fallback fired.
    """

    flat_query: np.ndarray
    flat_rows: np.ndarray
    num_candidates: np.ndarray
    greedy_scores: np.ndarray
    iterations: np.ndarray
    max_pops: np.ndarray
    min_pops: np.ndarray
    skipped_min: np.ndarray
    used_fallback: np.ndarray

    @property
    def batch(self) -> int:
        return int(self.greedy_scores.shape[0])

    @property
    def offsets(self) -> np.ndarray:
        """``(q + 1,)`` segment boundaries into the flat arrays."""
        cached = self.__dict__.get("_offsets")
        if cached is None:
            cached = np.concatenate(
                ([0], np.cumsum(self.num_candidates))
            ).astype(np.int64)
            self.__dict__["_offsets"] = cached
        return cached

    @property
    def candidates(self) -> np.ndarray:
        """``(q, c_max)`` candidate rows, right-padded with ``-1``."""
        cached = self.__dict__.get("_candidates")
        if cached is None:
            q = self.batch
            c_max = int(self.num_candidates.max()) if q else 0
            cached = np.full((q, c_max), -1, dtype=np.int64)
            if self.flat_rows.size:
                slots = (
                    np.arange(self.flat_rows.size)
                    - self.offsets[:-1][self.flat_query]
                )
                cached[self.flat_query, slots] = self.flat_rows
            self.__dict__["_candidates"] = cached
        return cached

    def candidate_rows(self, i: int) -> np.ndarray:
        """The ascending candidate rows of query ``i`` (a view)."""
        return self.flat_rows[self.offsets[i] : self.offsets[i + 1]]

    def result(self, i: int) -> CandidateResult:
        """Extract query ``i`` as a reference-compatible result object."""
        return CandidateResult(
            candidates=self.candidate_rows(i).copy(),
            greedy_scores=self.greedy_scores[i],
            iterations=int(self.iterations[i]),
            max_pops=int(self.max_pops[i]),
            min_pops=int(self.min_pops[i]),
            skipped_min=int(self.skipped_min[i]),
            used_fallback=bool(self.used_fallback[i]),
        )


def _estimate_boundary(
    pre: PreprocessedKey, queries: np.ndarray, m_eff: int
) -> np.ndarray:
    """Stream-boundary estimates for both sides, tight and relaxed.

    Takes a row-strided sample of the key (so every column is
    represented), ranks the sampled products once, and returns
    ``(tight, backup)`` boundary estimates for the stacked
    ``[queries; -queries]`` layout of the fused two-sided extraction:
    the min-side statistics of a query are the exact negations of the
    max-side statistics of its negation, so one partition serves all
    four order statistics.  The tight estimate keeps the candidate pool
    small; the clearly lower backup is used when the tight one turns
    out to overshoot the true stream boundary.  Overshoots are
    harmless: :func:`_column_streams` verifies the exact pool size
    against the estimate and relaxes it (to the backup, then to the
    minimum) when short.
    """
    n, d = pre.n, pre.d
    total = n * d
    target = min(total, max(1024, 2 * m_eff))
    row_stride = max(1, total // target)
    sample = pre.key[::row_stride, :]  # whole rows: every column is seen
    prods = (queries[:, np.newaxis, :] * sample[np.newaxis, :, :]).reshape(
        queries.shape[0], -1
    )
    size = prods.shape[1]
    expected = m_eff * size / total
    rank = min(size, int(expected + 1.2 * expected**0.5 + 2.0))
    relaxed_rank = min(size, 2 * rank + 8)
    kths = sorted({rank - 1, relaxed_rank - 1, size - relaxed_rank, size - rank})
    ordered = np.partition(prods, kths, axis=1)
    tight = np.concatenate([ordered[:, size - rank], -ordered[:, rank - 1]])
    backup = np.concatenate(
        [ordered[:, size - relaxed_rank], -ordered[:, relaxed_rank - 1]]
    )
    return tight, backup


def _depth_counts(
    sorted_key: np.ndarray,
    queries: np.ndarray,
    base: np.ndarray,
    step: np.ndarray,
    tau: np.ndarray,
) -> np.ndarray:
    """Exact per-column count of products no smaller than ``tau``.

    Walking a sorted column from its ``base`` end, the product
    ``value * query[col]`` is monotone non-increasing, so the count is a
    binary search on the depth — ``O(d log n)`` per query with the
    products compared directly (no division, hence exact).
    """
    n = sorted_key.shape[0]
    d = queries.shape[1]
    cols = np.arange(d)
    tau_col = tau[:, np.newaxis]
    shallow = 8
    if n <= shallow:
        lo = np.zeros(queries.shape, dtype=np.int64)
        hi = np.full(queries.shape, n, dtype=np.int64)
    else:
        # Most columns hold only a few stream entries, so probe a
        # shallow depth first and bisect only [0, shallow) for them; the
        # few deep columns are bisected separately in compact form.
        probe = sorted_key[base + step * (shallow - 1), cols] * queries
        deep = probe >= tau_col
        lo = np.zeros(queries.shape, dtype=np.int64)
        hi = np.where(deep, 0, shallow - 1)  # deep: resolved below
    for _ in range(int(n).bit_length()):
        if not (lo < hi).any():
            break
        mid = (lo + hi) >> 1
        safe = np.minimum(mid, n - 1)
        vals = sorted_key[base + step * safe, cols] * queries
        qualified = (vals >= tau_col) & (mid < hi)
        lo = np.where(qualified, mid + 1, lo)
        hi = np.where(qualified, hi, mid)
    counts = lo
    if n > shallow:
        flat_deep = np.flatnonzero(deep.ravel())
        if flat_deep.size:
            deep_base = base.ravel()[flat_deep]
            deep_step = step.ravel()[flat_deep]
            deep_q = queries.ravel()[flat_deep]
            deep_tau = tau[flat_deep // d]
            deep_col = flat_deep % d
            lo1 = np.full(flat_deep.size, shallow, dtype=np.int64)
            hi1 = np.full(flat_deep.size, n, dtype=np.int64)
            while (lo1 < hi1).any():
                mid = (lo1 + hi1) >> 1
                safe = np.minimum(mid, n - 1)
                vals = sorted_key[deep_base + deep_step * safe, deep_col]
                qualified = (vals * deep_q >= deep_tau) & (mid < hi1)
                lo1 = np.where(qualified, mid + 1, lo1)
                hi1 = np.where(qualified, hi1, mid)
            counts.ravel()[flat_deep] = lo1
    return counts


def _column_streams(
    pre: PreprocessedKey,
    queries: np.ndarray,
    m_eff: int,
    estimates: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query descending (max-side) product stream from the sorted key.

    Returns ``(q, m_eff)`` value and row-index arrays holding each
    query's ``m_eff`` largest products in descending order.  (Callers
    obtain the ascending min-side stream of a query by passing its
    negation: the products negate exactly, so the max stream of ``-x``
    is the min stream of ``x``.)

    For each query the pool of stream candidates is the ragged set of
    per-column prefixes (starting from the end that maximizes
    ``value * query[col]``, exactly the Figure 7 pointer rule) whose
    products are at least as large as a boundary estimate; the prefix
    lengths come from :func:`_depth_counts`, so the pool provably
    contains the true top ``m_eff`` whenever the estimate does not
    overshoot the true boundary, which is re-checked exactly and relaxed
    as needed.
    """
    n, d = pre.n, pre.d
    q = queries.shape[0]
    sorted_values = pre.sorted_values
    row_ids = pre.row_ids

    want_high = queries > 0.0
    base = np.where(want_high, n - 1, 0).astype(np.int64)
    step = np.where(want_high, -1, 1).astype(np.int64)

    if estimates is None:
        tight, backup = _estimate_boundary(pre, queries, m_eff)
        tight, backup = tight[:q], backup[:q]
    else:
        tight, backup = estimates
    tau = tight.copy()
    counts = _depth_counts(sorted_values, queries, base, step, tau)
    pool = counts.sum(axis=1)
    short = np.flatnonzero(pool < m_eff)
    if short.size:
        # The tight estimate overshot the true m-th product for these
        # (rare) queries; retry with the relaxed sample statistic, then
        # with the smallest product, which admits every entry and is
        # therefore always sufficient.
        tau[short] = backup[short]
        counts[short] = _depth_counts(
            sorted_values, queries[short], base[short], step[short],
            tau[short],
        )
        pool[short] = counts[short].sum(axis=1)
        short = short[pool[short] < m_eff]
        if short.size:
            tail = sorted_values[
                base[short] + step[short] * (n - 1), np.arange(d)
            ] * queries[short]
            tau[short] = tail.min(axis=1)
            counts[short] = _depth_counts(
                sorted_values, queries[short], base[short], step[short],
                tau[short],
            )
            pool[short] = counts[short].sum(axis=1)

    # Ragged gather of the per-column prefixes (flat indexing: one pass
    # of index arithmetic, three flat gathers).
    seg_len = counts.ravel()
    seg_total = int(seg_len.sum())
    seg_id = np.repeat(np.arange(q * d), seg_len)
    seg_starts = np.concatenate(([0], np.cumsum(seg_len)[:-1]))
    depth = np.arange(seg_total) - seg_starts[seg_id]
    ptr = base.ravel()[seg_id] + step.ravel()[seg_id] * depth
    flat = ptr * d + seg_id % d  # position in the (n, d) arrays
    vals = sorted_values.ravel()[flat] * queries.ravel()[seg_id]
    pool_starts = np.concatenate(([0], np.cumsum(pool)[:-1]))
    qq = seg_id // d
    position = np.arange(seg_total) - pool_starts[qq]

    # Pad each query's pool and take its top m_eff in stream order
    # (stable sort; tie handling matches the reference on tie-free
    # inputs by value uniqueness).  Queries are grouped by power-of-two
    # pool width so one outlier pool cannot inflate the whole batch's
    # padded width.  Only the products are scattered into the padded
    # layout; the selected entries map back through their pool position
    # to the ragged flat index, from which the rows are gathered.
    out_vals = np.empty((q, m_eff), dtype=np.float64)
    out_rows = np.empty((q, m_eff), dtype=np.int64)
    rows_flat = row_ids.ravel()
    bucket = np.maximum(pool, m_eff)
    bucket = 1 << np.int64(np.ceil(np.log2(bucket)))
    local = np.zeros(q, dtype=np.int64)
    for width in np.unique(bucket):
        width = int(width)
        members = bucket == width
        group = np.flatnonzero(members)
        local[group] = np.arange(group.size)
        seg_mask = members[qq]
        pool_vals = np.full((group.size, width), -np.inf, dtype=np.float64)
        pool_vals[local[qq[seg_mask]], position[seg_mask]] = vals[seg_mask]
        chosen = np.argpartition(pool_vals, width - m_eff, axis=1)[
            :, width - m_eff :
        ]
        chosen_vals = np.take_along_axis(pool_vals, chosen, axis=1)
        order = np.argsort(chosen_vals, axis=1, kind="stable")[:, ::-1]
        out_vals[group] = np.take_along_axis(chosen_vals, order, axis=1)
        ragged_idx = (
            pool_starts[group][:, np.newaxis]
            + np.take_along_axis(chosen, order, axis=1)
        )
        out_rows[group] = rows_flat[flat[ragged_idx]]
    return out_vals, out_rows


def _gated_walk(
    max_vals: np.ndarray,
    min_vals: np.ndarray,
    m_eff: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The gated min-side walk for all queries, heuristic enabled.

    Returns ``(min_pos, min_iter, running)``: how many min-stream entries
    each query consumed, at which iteration each was popped, and the
    final running total.  Each of the ``m_eff`` iterations is a handful
    of ``(q,)``-shaped operations: the unconditional max pop updates the
    running total in place, and the min pop happens wherever the total
    is non-negative (the Section IV-C min-skip heuristic).  During this
    main phase the min pointer can never overtake the iteration index,
    so the min stream cannot run dry and needs no exhaustion check.
    """
    q = max_vals.shape[0]
    min_iter = np.empty((q, m_eff), dtype=np.int64)
    running = np.zeros(q, dtype=np.float64)
    row_base = np.arange(q) * m_eff
    at = row_base.copy()  # flat index of each query's next min entry
    min_flat = min_vals.ravel()
    iter_flat = min_iter.ravel()
    max_cols = np.ascontiguousarray(max_vals.T)
    for i in range(m_eff):
        running += max_cols[i]
        popping = running >= 0.0
        # Speculatively read each query's next min entry; adding 0.0
        # where the pop is skipped leaves the running total bit-exact,
        # and a skipped query's min_iter slot is overwritten at its
        # real pop iteration before the pointer moves past it.
        running += np.where(popping, min_flat[at], 0.0)
        iter_flat[at] = i
        at += popping
    return at - row_base, min_iter, running


def batched_candidate_search(
    key: np.ndarray | PreprocessedKey,
    queries: np.ndarray,
    m: int,
    *,
    min_skip_heuristic: bool = True,
    fallback_top1: bool = True,
) -> BatchedCandidateResult:
    """Greedy candidate selection for every query of a batch at once.

    Semantically this is ``greedy_candidate_search(key, queries[i], m)``
    for each ``i``, but the walk advances all queries together through
    batched array operations instead of ``q`` Python-level stream pops.

    Parameters
    ----------
    key:
        ``(n, d)`` key matrix, or an already-built
        :class:`~repro.core.efficient_search.PreprocessedKey` (the
        amortized usage: preprocess once, search many batches).
    queries:
        ``(q, d)`` query batch.
    m:
        The user-configurable iteration count ``M`` (shared by all
        queries, as in the BERT amortization case where every query sees
        the same ``n``).
    min_skip_heuristic / fallback_top1:
        As in :func:`repro.core.candidate_search.greedy_candidate_search`.
    """
    pre = key if isinstance(key, PreprocessedKey) else PreprocessedKey.build(key)
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != pre.d:
        raise ShapeError(
            f"queries must be 2-D (q, d={pre.d}), got {queries.shape}"
        )
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    n, d = pre.n, pre.d
    q = queries.shape[0]
    if n == 0 or d == 0:
        raise ShapeError(f"key must be non-empty, got {(n, d)}")
    if q == 0:
        empty = np.empty(0, dtype=np.int64)
        return BatchedCandidateResult(
            flat_query=empty,
            flat_rows=empty.copy(),
            num_candidates=empty.copy(),
            greedy_scores=np.empty((0, n), dtype=np.float64),
            iterations=empty.copy(),
            max_pops=empty.copy(),
            min_pops=empty.copy(),
            skipped_min=empty.copy(),
            used_fallback=np.empty(0, dtype=bool),
        )

    total = n * d
    m_eff = min(m, total)
    # Per-stage timing runs only when a profiling hook is installed
    # (repro.core.profiling); disabled cost is one None test per stage.
    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0
    # Both stream sides in one fused pass: the min stream of a query is
    # the max stream of its negation (products negate exactly, so the
    # values recover bit-for-bit).  One sample partition serves the
    # boundary estimates of both sides.
    estimates = _estimate_boundary(pre, queries, m_eff)
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.boundary_estimate", t1 - t0)
        t0 = t1
    stream_vals, stream_rows = _column_streams(
        pre,
        np.concatenate([queries, -queries]),
        m_eff,
        estimates=estimates,
    )
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.stream_extraction", t1 - t0)
        t0 = t1
    max_vals = stream_vals[:q]
    max_rows = stream_rows[:q]
    min_vals = -stream_vals[q:]
    min_rows = stream_rows[q:]

    iterations = np.full(q, m_eff, dtype=np.int64)
    if min_skip_heuristic:
        min_pos, min_iter, running = _gated_walk(max_vals, min_vals, m_eff)
        skipped = m_eff - min_pos
    else:
        # Without the heuristic both streams drain in lockstep: the walk
        # is fully determined and needs no gating at all.
        min_pos = np.full(q, m_eff, dtype=np.int64)
        min_iter = np.broadcast_to(
            np.arange(m_eff, dtype=np.int64), (q, m_eff)
        ).copy()
        skipped = np.zeros(q, dtype=np.int64)

    if m > m_eff and min_skip_heuristic:
        # Max stream exhausted but iterations remain (m > n*d): the
        # reference keeps counting passes while the min stream lasts.
        for i in range(m_eff, m):
            active = np.flatnonzero(min_pos < m_eff)
            if active.size == 0:
                break
            iterations[active] += 1
            gate = running[active] >= 0.0
            skipped[active[~gate]] += 1
            popping = active[gate]
            at = min_pos[popping]
            value = min_vals[popping, at]
            running[popping] += value
            min_iter[popping, at] = i
            min_pos[popping] = at + 1
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.gated_walk", t1 - t0)
        t0 = t1

    # ------------------------------------------------------------------
    # Greedy-score accumulation: one bincount over per-iteration slots
    # (max pop of iteration i at slot 2i, its min pop at slot 2i+1)
    # replays the reference addition order row-for-row.
    # ------------------------------------------------------------------
    width = 2 * max(m_eff, int(iterations.max()))
    slot_rows = np.zeros((q, width), dtype=np.int64)
    slot_vals = np.zeros((q, width), dtype=np.float64)
    slot_rows[:, 0 : 2 * m_eff : 2] = max_rows
    slot_vals[:, 0 : 2 * m_eff : 2] = np.where(max_vals > 0.0, max_vals, 0.0)
    consumed = np.arange(m_eff) < min_pos[:, np.newaxis]
    contributing = consumed & (min_vals < 0.0)
    qi, ki = np.nonzero(contributing)
    slots = 2 * min_iter[qi, ki] + 1
    slot_rows[qi, slots] = min_rows[qi, ki]
    slot_vals[qi, slots] = min_vals[qi, ki]
    bins = (np.arange(q, dtype=np.int64)[:, np.newaxis] * n + slot_rows).ravel()
    greedy = np.bincount(
        bins, weights=slot_vals.ravel(), minlength=q * n
    ).reshape(q, n)
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.accumulate", t1 - t0)
        t0 = t1

    max_pops = np.full(q, m_eff, dtype=np.int64)
    first_max_row = max_rows[:, 0]

    # Finalize: positive-greedy-score rows per query (ascending), with the
    # same top-1 fallback as selection.select_candidate_rows.
    positive = greedy > 0.0
    counts = positive.sum(axis=1).astype(np.int64)
    used_fallback = np.zeros(q, dtype=bool)
    if fallback_top1:
        used_fallback = counts == 0
    query_idx, row_idx = np.nonzero(positive)
    query_idx = query_idx.astype(np.int64, copy=False)
    row_idx = row_idx.astype(np.int64, copy=False)
    if used_fallback.any():
        # Splice one fallback entry into each empty query's segment.
        empty_queries = np.flatnonzero(used_fallback)
        insert_at = np.concatenate(([0], np.cumsum(counts)))[empty_queries]
        query_idx = np.insert(query_idx, insert_at, empty_queries)
        row_idx = np.insert(row_idx, insert_at, first_max_row[empty_queries])
        counts = np.where(used_fallback, 1, counts)
    if prof is not None:
        prof.record("search.finalize", perf_counter() - t0)

    return BatchedCandidateResult(
        flat_query=query_idx,
        flat_rows=row_idx,
        num_candidates=counts,
        greedy_scores=greedy,
        iterations=iterations,
        max_pops=max_pops,
        min_pops=min_pos,
        skipped_min=skipped,
        used_fallback=used_fallback,
    )
