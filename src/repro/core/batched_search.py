"""Batched vectorized greedy candidate search (the ``"vectorized"`` engine).

The paper's headline deployment amortizes the key preprocessing over many
queries against one key matrix — the BERT self-attention pattern of
Section IV-C.  The reference engine replays the Figure 6 walk one query
at a time through Python-level stream pops; this module runs the same
walk for a whole ``(q, d)`` query batch using NumPy array operations:

* **stream extraction** exploits the preprocessed column-sorted key the
  same way the Figure 7 hardware does: along each sorted column the
  products ``value * query[col]`` are monotone, so the ``M`` globally
  largest (smallest) products per query live in a per-column prefix
  whose exact length a batched binary search finds against a boundary
  estimate from a strided product sample.  Gathering just those ragged
  prefixes and running one ``argpartition`` + stable ``argsort`` along
  the flattened pool axis yields each query's ``(q, m)`` max/min stream
  without ever materializing the full ``(q, n, d)`` product tensor;
* **the greedy walk** advances all queries in lockstep.  The max stream
  is consumed unconditionally, so only the min-side pointer is state: a
  per-query running total gates each min pop exactly as the Section
  IV-C min-skip heuristic prescribes, and each of the ``M`` iterations
  is a handful of ``(q,)``-shaped array operations (no gating at all
  when the heuristic is disabled);
* **greedy-score accumulation** happens in one shot afterwards: every
  consumed product is written into an interleaved per-iteration slot
  grid (max pop of iteration ``i`` before the min pop of iteration
  ``i``) and accumulated per row with a single ``bincount``, whose
  sequential scan reproduces the reference engine's addition order
  exactly.

Because the per-query sequence of running-total updates and greedy-score
additions matches :func:`repro.core.candidate_search.greedy_candidate_search`
addition-for-addition, every per-query selection outcome (greedy scores,
candidate sets, pop counts, fallback flags) is bit-identical to the
reference engine on tie-free inputs.  The property tests in
``tests/core/test_search_equivalence.py`` enforce this.

**Tie policy.**  When a query's product multiset contains duplicates,
the engines consume tied entries in different orders: the reference
walk breaks ties by row-major flat position of the product matrix,
while this engine's stream extraction breaks them by its column-prefix
pool layout.  Two regimes follow, both pinned by
``tests/core/test_tie_handling.py``:

* ties confined to a single row (duplicated key *columns* whose query
  entries also coincide) are harmless — every tied product belongs to
  the same row, so candidate sets, pop counts, and fallback flags match
  the reference exactly and greedy scores match to roundoff (the
  addition order inside a row may permute);
* ties spanning rows (duplicated key *rows*) are implementation-defined
  — the row attribution of a tied product, and therefore candidate
  sets and attended outputs, may diverge from the reference.  The
  *value* sequence of both streams is tie-independent, so the walk
  statistics still agree exactly: iterations, max/min pop counts, skip
  counts, and the total greedy mass summed over rows.

**Multi-key ragged fusion.**  :func:`attend_many_ragged` extends the
same pipeline across *several* prepared keys at once: a mixed many-
tenant batch is laid out as one query slab with per-segment offsets,
each segment's stream extraction runs over its own prepared column
sorts, and the greedy-score accumulation of all segments happens in a
single ``bincount`` over per-segment offset bin spaces.  Segments that
share ``(n, d, M)`` — the common case for a fused many-tenant batch —
additionally fuse their boundary estimates, stream extractions, and
gated walks into one group-batched pass over block-stacked column
sorts, so the search front's fixed dispatch cost is paid once per
group instead of once per segment.  Every fused operation is
per-query-row independent and ``bincount`` accumulates in input scan
order with segments' entries concatenated without interleaving, so
every segment's additions replay in exactly the order of its
standalone single-key dispatch — the fused path is bit-identical per
segment, a property the serving layer's cross-session batcher relies
on (pinned by ``tests/serve/test_ragged_fusion.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core import profiling
from repro.core.efficient_search import PreprocessedKey
from repro.core.selection import CandidateResult
from repro.errors import ShapeError

__all__ = [
    "BatchedCandidateResult",
    "RaggedAttendResult",
    "attend_many_ragged",
    "batched_candidate_search",
]


@dataclass
class BatchedCandidateResult:
    """Per-query candidate-search outcomes for a whole query batch.

    The candidate sets are ragged (each query selects a different
    number of rows), so they are stored flat: ``flat_rows`` holds every
    query's candidate rows concatenated in ascending row order, and
    ``flat_query`` the owning query of each entry.  Query ``i`` owns
    ``flat_rows[offsets[i]:offsets[i + 1]]``; the padded ``candidates``
    matrix is derived on demand.

    Attributes
    ----------
    flat_query / flat_rows:
        Parallel 1-D int64 arrays: (query, candidate row) pairs sorted
        by query then row.
    num_candidates:
        ``(q,)`` number of candidates per query (``C``).
    greedy_scores:
        ``(q, n)`` greedy-score matrix after the walk.
    iterations / max_pops / min_pops / skipped_min:
        ``(q,)`` per-query loop statistics, identical in meaning to the
        scalar fields of :class:`~repro.core.selection.CandidateResult`.
    used_fallback:
        ``(q,)`` boolean; ``True`` where the top-1 fallback fired.
    """

    flat_query: np.ndarray
    flat_rows: np.ndarray
    num_candidates: np.ndarray
    greedy_scores: np.ndarray
    iterations: np.ndarray
    max_pops: np.ndarray
    min_pops: np.ndarray
    skipped_min: np.ndarray
    used_fallback: np.ndarray

    @property
    def batch(self) -> int:
        return int(self.greedy_scores.shape[0])

    @property
    def offsets(self) -> np.ndarray:
        """``(q + 1,)`` segment boundaries into the flat arrays."""
        cached = self.__dict__.get("_offsets")
        if cached is None:
            cached = np.concatenate(
                ([0], np.cumsum(self.num_candidates))
            ).astype(np.int64)
            self.__dict__["_offsets"] = cached
        return cached

    @property
    def candidates(self) -> np.ndarray:
        """``(q, c_max)`` candidate rows, right-padded with ``-1``."""
        cached = self.__dict__.get("_candidates")
        if cached is None:
            q = self.batch
            c_max = int(self.num_candidates.max()) if q else 0
            cached = np.full((q, c_max), -1, dtype=np.int64)
            if self.flat_rows.size:
                slots = (
                    np.arange(self.flat_rows.size)
                    - self.offsets[:-1][self.flat_query]
                )
                cached[self.flat_query, slots] = self.flat_rows
            self.__dict__["_candidates"] = cached
        return cached

    def candidate_rows(self, i: int) -> np.ndarray:
        """The ascending candidate rows of query ``i`` (a view)."""
        return self.flat_rows[self.offsets[i] : self.offsets[i + 1]]

    def result(self, i: int) -> CandidateResult:
        """Extract query ``i`` as a reference-compatible result object."""
        return CandidateResult(
            candidates=self.candidate_rows(i).copy(),
            greedy_scores=self.greedy_scores[i],
            iterations=int(self.iterations[i]),
            max_pops=int(self.max_pops[i]),
            min_pops=int(self.min_pops[i]),
            skipped_min=int(self.skipped_min[i]),
            used_fallback=bool(self.used_fallback[i]),
        )


def _boundary_from_prods(
    prods: np.ndarray, total: int, m_eff: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rank the per-query sample products into boundary estimates.

    ``prods`` holds each query's sampled products (one row per query,
    all rows the same sample size against a ``total``-element product
    space); the partition is per-row independent, so batching any set
    of queries through one call leaves every row's estimates unchanged.
    """
    size = prods.shape[1]
    expected = m_eff * size / total
    rank = min(size, int(expected + 1.2 * expected**0.5 + 2.0))
    relaxed_rank = min(size, 2 * rank + 8)
    kths = sorted({rank - 1, relaxed_rank - 1, size - relaxed_rank, size - rank})
    ordered = np.partition(prods, kths, axis=1)
    tight = np.concatenate([ordered[:, size - rank], -ordered[:, rank - 1]])
    backup = np.concatenate(
        [ordered[:, size - relaxed_rank], -ordered[:, relaxed_rank - 1]]
    )
    return tight, backup


def _estimate_boundary(
    pre: PreprocessedKey, queries: np.ndarray, m_eff: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stream-boundary estimates for both sides, tight and relaxed.

    Takes a row-strided sample of the key (so every column is
    represented), ranks the sampled products once, and returns
    ``(tight, backup)`` boundary estimates for the stacked
    ``[queries; -queries]`` layout of the fused two-sided extraction:
    the min-side statistics of a query are the exact negations of the
    max-side statistics of its negation, so one partition serves all
    four order statistics.  The tight estimate keeps the candidate pool
    small; the clearly lower backup is used when the tight one turns
    out to overshoot the true stream boundary.  Overshoots are
    harmless: :func:`_column_streams` verifies the exact pool size
    against the estimate and relaxes it (to the backup, then to the
    minimum) when short.
    """
    n, d = pre.n, pre.d
    total = n * d
    target = min(total, max(1024, 2 * m_eff))
    row_stride = max(1, total // target)
    sample = pre.key[::row_stride, :]  # whole rows: every column is seen
    prods = (queries[:, np.newaxis, :] * sample[np.newaxis, :, :]).reshape(
        queries.shape[0], -1
    )
    return _boundary_from_prods(prods, total, m_eff)


def _depth_counts(
    sorted_key: np.ndarray,
    queries: np.ndarray,
    base: np.ndarray,
    step: np.ndarray,
    tau: np.ndarray,
    n: int,
) -> np.ndarray:
    """Exact per-column count of products no smaller than ``tau``.

    Walking a sorted column from its ``base`` end, the product
    ``value * query[col]`` is monotone non-increasing, so the count is a
    binary search on the depth — ``O(d log n)`` per query with the
    products compared directly (no division, hence exact).  ``base``
    holds absolute row indices into ``sorted_key`` (which may stack
    several segments' column sorts) while ``n`` is the depth of one
    segment's columns: ``lo``/``hi`` bisect local depths and only the
    reads ``base + step * depth`` touch absolute rows.
    """
    d = queries.shape[1]
    cols = np.arange(d)
    tau_col = tau[:, np.newaxis]
    shallow = 8
    if n <= shallow:
        lo = np.zeros(queries.shape, dtype=np.int64)
        hi = np.full(queries.shape, n, dtype=np.int64)
    else:
        # Most columns hold only a few stream entries, so probe a
        # shallow depth first and bisect only [0, shallow) for them; the
        # few deep columns are bisected separately in compact form.
        probe = sorted_key[base + step * (shallow - 1), cols] * queries
        deep = probe >= tau_col
        lo = np.zeros(queries.shape, dtype=np.int64)
        hi = np.where(deep, 0, shallow - 1)  # deep: resolved below
    for _ in range(int(n).bit_length()):
        if not (lo < hi).any():
            break
        mid = (lo + hi) >> 1
        safe = np.minimum(mid, n - 1)
        vals = sorted_key[base + step * safe, cols] * queries
        qualified = (vals >= tau_col) & (mid < hi)
        lo = np.where(qualified, mid + 1, lo)
        hi = np.where(qualified, hi, mid)
    counts = lo
    if n > shallow:
        flat_deep = np.flatnonzero(deep.ravel())
        if flat_deep.size:
            deep_base = base.ravel()[flat_deep]
            deep_step = step.ravel()[flat_deep]
            deep_q = queries.ravel()[flat_deep]
            deep_tau = tau[flat_deep // d]
            deep_col = flat_deep % d
            lo1 = np.full(flat_deep.size, shallow, dtype=np.int64)
            hi1 = np.full(flat_deep.size, n, dtype=np.int64)
            while (lo1 < hi1).any():
                mid = (lo1 + hi1) >> 1
                safe = np.minimum(mid, n - 1)
                vals = sorted_key[deep_base + deep_step * safe, deep_col]
                qualified = (vals * deep_q >= deep_tau) & (mid < hi1)
                lo1 = np.where(qualified, mid + 1, lo1)
                hi1 = np.where(qualified, hi1, mid)
            counts.ravel()[flat_deep] = lo1
    return counts


def _column_streams_stacked(
    sorted_values: np.ndarray,
    queries: np.ndarray,
    m_eff: int,
    estimates: tuple[np.ndarray, np.ndarray],
    n: int,
    row_offset: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query descending product stream over (possibly stacked) sorts.

    The extraction core shared by the single-key and multi-key paths:
    ``sorted_values`` holds one segment's ``(n, d)`` column sorts or
    several equal-shape segments stacked to ``(G * n, d)``, with
    ``row_offset`` giving each query's segment's absolute starting row
    (``None`` for the single-segment layout).  Every operation is
    per-query-row independent, so stacking segments leaves each row's
    arithmetic — and therefore its stream — bit-identical to a
    standalone single-segment call.

    Returns ``(q, m_eff)`` value and *flat-position* arrays: positions
    index the raveled stacked layout (callers map them to key rows
    through their segment's ``row_ids``).

    For each query the pool of stream candidates is the ragged set of
    per-column prefixes (starting from the end that maximizes
    ``value * query[col]``, exactly the Figure 7 pointer rule) whose
    products are at least as large as a boundary estimate; the prefix
    lengths come from :func:`_depth_counts`, so the pool provably
    contains the true top ``m_eff`` whenever the estimate does not
    overshoot the true boundary, which is re-checked exactly and relaxed
    as needed.
    """
    d = queries.shape[1]
    q = queries.shape[0]

    want_high = queries > 0.0
    base = np.where(want_high, n - 1, 0).astype(np.int64)
    step = np.where(want_high, -1, 1).astype(np.int64)
    if row_offset is not None:
        base += row_offset[:, np.newaxis]

    tight, backup = estimates
    tau = tight.copy()
    counts = _depth_counts(sorted_values, queries, base, step, tau, n)
    pool = counts.sum(axis=1)
    short = np.flatnonzero(pool < m_eff)
    if short.size:
        # The tight estimate overshot the true m-th product for these
        # (rare) queries; retry with the relaxed sample statistic, then
        # with the smallest product, which admits every entry and is
        # therefore always sufficient.
        tau[short] = backup[short]
        counts[short] = _depth_counts(
            sorted_values, queries[short], base[short], step[short],
            tau[short], n,
        )
        pool[short] = counts[short].sum(axis=1)
        short = short[pool[short] < m_eff]
        if short.size:
            tail = sorted_values[
                base[short] + step[short] * (n - 1), np.arange(d)
            ] * queries[short]
            tau[short] = tail.min(axis=1)
            counts[short] = _depth_counts(
                sorted_values, queries[short], base[short], step[short],
                tau[short], n,
            )
            pool[short] = counts[short].sum(axis=1)

    # Ragged gather of the per-column prefixes (flat indexing: one pass
    # of index arithmetic, three flat gathers).
    seg_len = counts.ravel()
    seg_total = int(seg_len.sum())
    seg_id = np.repeat(np.arange(q * d), seg_len)
    seg_starts = np.concatenate(([0], np.cumsum(seg_len)[:-1]))
    depth = np.arange(seg_total) - seg_starts[seg_id]
    ptr = base.ravel()[seg_id] + step.ravel()[seg_id] * depth
    flat = ptr * d + seg_id % d  # position in the stacked (rows, d) arrays
    vals = sorted_values.ravel()[flat] * queries.ravel()[seg_id]
    pool_starts = np.concatenate(([0], np.cumsum(pool)[:-1]))
    qq = seg_id // d
    position = np.arange(seg_total) - pool_starts[qq]

    # Pad each query's pool and take its top m_eff in stream order
    # (stable sort; tie handling matches the reference on tie-free
    # inputs by value uniqueness).  Queries are grouped by power-of-two
    # pool width so one outlier pool cannot inflate the whole batch's
    # padded width.  Only the products are scattered into the padded
    # layout; the selected entries map back through their pool position
    # to the ragged flat index.
    out_vals = np.empty((q, m_eff), dtype=np.float64)
    out_src = np.empty((q, m_eff), dtype=np.int64)
    bucket = np.maximum(pool, m_eff)
    bucket = 1 << np.int64(np.ceil(np.log2(bucket)))
    local = np.zeros(q, dtype=np.int64)
    for width in np.unique(bucket):
        width = int(width)
        members = bucket == width
        group = np.flatnonzero(members)
        local[group] = np.arange(group.size)
        seg_mask = members[qq]
        pool_vals = np.full((group.size, width), -np.inf, dtype=np.float64)
        pool_vals[local[qq[seg_mask]], position[seg_mask]] = vals[seg_mask]
        chosen = np.argpartition(pool_vals, width - m_eff, axis=1)[
            :, width - m_eff :
        ]
        chosen_vals = np.take_along_axis(pool_vals, chosen, axis=1)
        order = np.argsort(chosen_vals, axis=1, kind="stable")[:, ::-1]
        out_vals[group] = np.take_along_axis(chosen_vals, order, axis=1)
        ragged_idx = (
            pool_starts[group][:, np.newaxis]
            + np.take_along_axis(chosen, order, axis=1)
        )
        out_src[group] = flat[ragged_idx]
    return out_vals, out_src


def _column_streams(
    pre: PreprocessedKey,
    queries: np.ndarray,
    m_eff: int,
    estimates: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-key stream extraction: values plus resolved key rows."""
    q = queries.shape[0]
    if estimates is None:
        tight, backup = _estimate_boundary(pre, queries, m_eff)
        estimates = (tight[:q], backup[:q])
    out_vals, out_src = _column_streams_stacked(
        pre.sorted_values, queries, m_eff, estimates, pre.n, None
    )
    return out_vals, pre.row_ids.ravel()[out_src]


def _gated_walk(
    max_vals: np.ndarray,
    min_vals: np.ndarray,
    m_eff: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The gated min-side walk for all queries, heuristic enabled.

    Returns ``(min_pos, min_iter, running)``: how many min-stream entries
    each query consumed, at which iteration each was popped, and the
    final running total.  Each of the ``m_eff`` iterations is a handful
    of ``(q,)``-shaped operations: the unconditional max pop updates the
    running total in place, and the min pop happens wherever the total
    is non-negative (the Section IV-C min-skip heuristic).  During this
    main phase the min pointer can never overtake the iteration index,
    so the min stream cannot run dry and needs no exhaustion check.
    """
    q = max_vals.shape[0]
    min_iter = np.empty((q, m_eff), dtype=np.int64)
    running = np.zeros(q, dtype=np.float64)
    row_base = np.arange(q) * m_eff
    at = row_base.copy()  # flat index of each query's next min entry
    min_flat = min_vals.ravel()
    iter_flat = min_iter.ravel()
    max_cols = np.ascontiguousarray(max_vals.T)
    for i in range(m_eff):
        running += max_cols[i]
        popping = running >= 0.0
        # Speculatively read each query's next min entry; adding 0.0
        # where the pop is skipped leaves the running total bit-exact,
        # and a skipped query's min_iter slot is overwritten at its
        # real pop iteration before the pointer moves past it.
        running += np.where(popping, min_flat[at], 0.0)
        iter_flat[at] = i
        at += popping
    return at - row_base, min_iter, running


def _stream_walk(
    max_vals: np.ndarray,
    min_vals: np.ndarray,
    m: int,
    m_eff: int,
    min_skip_heuristic: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run the greedy walk over already-extracted streams.

    Returns ``(min_pos, min_iter, iterations, skipped)``.  Every update
    is per-query-row independent, so any set of queries — one segment's
    or several equal-``m`` segments' concatenated — walks identically
    row by row.
    """
    q = max_vals.shape[0]
    iterations = np.full(q, m_eff, dtype=np.int64)
    if min_skip_heuristic:
        min_pos, min_iter, running = _gated_walk(max_vals, min_vals, m_eff)
        skipped = m_eff - min_pos
    else:
        # Without the heuristic both streams drain in lockstep: the walk
        # is fully determined and needs no gating at all.
        min_pos = np.full(q, m_eff, dtype=np.int64)
        min_iter = np.broadcast_to(
            np.arange(m_eff, dtype=np.int64), (q, m_eff)
        ).copy()
        skipped = np.zeros(q, dtype=np.int64)

    if m > m_eff and min_skip_heuristic:
        # Max stream exhausted but iterations remain (m > n*d): the
        # reference keeps counting passes while the min stream lasts.
        for i in range(m_eff, m):
            active = np.flatnonzero(min_pos < m_eff)
            if active.size == 0:
                break
            iterations[active] += 1
            gate = running[active] >= 0.0
            skipped[active[~gate]] += 1
            popping = active[gate]
            at = min_pos[popping]
            value = min_vals[popping, at]
            running[popping] += value
            min_iter[popping, at] = i
            min_pos[popping] = at + 1
    return min_pos, min_iter, iterations, skipped


def _segment_walk(
    pre: PreprocessedKey,
    queries: np.ndarray,
    m: int,
    *,
    min_skip_heuristic: bool,
) -> tuple[
    int,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
]:
    """Boundary estimate, fused two-sided stream extraction, gated walk.

    The search front half shared by :func:`batched_candidate_search`
    (one key) and :func:`attend_many_ragged` (one call per lone
    segment): the min stream of a query is the max stream of its
    negation (products negate exactly, so the values recover
    bit-for-bit), and one sample partition serves the boundary
    estimates of both sides.  Returns ``(m_eff, max_rows, max_vals,
    min_rows, min_vals, min_pos, min_iter, iterations, skipped)``.
    """
    q = queries.shape[0]
    m_eff = min(m, pre.n * pre.d)
    # Per-stage timing runs only when a profiling hook is installed
    # (repro.core.profiling); disabled cost is one None test per stage.
    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0
    estimates = _estimate_boundary(pre, queries, m_eff)
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.boundary_estimate", t1 - t0)
        t0 = t1
    stream_vals, stream_rows = _column_streams(
        pre,
        np.concatenate([queries, -queries]),
        m_eff,
        estimates=estimates,
    )
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.stream_extraction", t1 - t0)
        t0 = t1
    max_vals = stream_vals[:q]
    max_rows = stream_rows[:q]
    min_vals = -stream_vals[q:]
    min_rows = stream_rows[q:]

    min_pos, min_iter, iterations, skipped = _stream_walk(
        max_vals, min_vals, m, m_eff, min_skip_heuristic
    )
    if prof is not None:
        prof.record("search.gated_walk", perf_counter() - t0)
    return (
        m_eff,
        max_rows,
        max_vals,
        min_rows,
        min_vals,
        min_pos,
        min_iter,
        iterations,
        skipped,
    )


def _grouped_segment_walk(
    group_pres: list[PreprocessedKey],
    query_parts: list[np.ndarray],
    m: int,
    *,
    min_skip_heuristic: bool,
) -> list[tuple]:
    """:func:`_segment_walk` fused across segments sharing ``(n, d, m)``.

    A many-tenant fused batch typically holds dozens of segments with
    only a query or two each; running the search front per segment pays
    its fixed Python/NumPy dispatch cost dozens of times.  Equal-shape
    segments instead concatenate their queries into one slab, stack
    their prepared column sorts block-wise, and run the boundary
    estimate, stream extraction, and gated walk *once* for the whole
    group.  Every operation involved is per-query-row independent (the
    partition, depth bisection, pool selection, and walk updates never
    mix rows), and each query's reads resolve to exactly its own
    segment's block of the stack — so every row's arithmetic, and
    therefore each segment's walk outcome, is bit-identical to its
    standalone :func:`_segment_walk`.  Returns one 9-tuple per segment,
    in group order, with the same layout as :func:`_segment_walk`.
    """
    n, d = group_pres[0].n, group_pres[0].d
    m_eff = min(m, n * d)
    num_members = len(group_pres)
    q_parts = np.array([part.shape[0] for part in query_parts], dtype=np.int64)
    member_offsets = np.concatenate(([0], np.cumsum(q_parts)))
    total_q = int(member_offsets[-1])
    queries_cat = np.concatenate(query_parts, axis=0)
    seg_of_query = np.repeat(np.arange(num_members), q_parts)

    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0
    total = n * d
    target = min(total, max(1024, 2 * m_eff))
    row_stride = max(1, total // target)
    samples = np.stack([pre.key[::row_stride, :] for pre in group_pres])
    prods = (
        queries_cat[:, np.newaxis, :] * samples[seg_of_query]
    ).reshape(total_q, -1)
    estimates = _boundary_from_prods(prods, total, m_eff)
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.boundary_estimate", t1 - t0)
        t0 = t1

    stacked_sorted = np.concatenate(
        [pre.sorted_values for pre in group_pres], axis=0
    )
    both = np.concatenate([queries_cat, -queries_cat])
    row_offset = np.concatenate([seg_of_query, seg_of_query]) * n
    stream_vals, stream_src = _column_streams_stacked(
        stacked_sorted, both, m_eff, estimates, n, row_offset
    )
    # Flat positions → key rows, through each segment's own row_ids.
    stream_rows = np.empty_like(stream_src)
    block = n * d
    for g, pre in enumerate(group_pres):
        rows_flat = pre.row_ids.ravel()
        for half in (0, total_q):
            sl = slice(
                half + int(member_offsets[g]),
                half + int(member_offsets[g + 1]),
            )
            stream_rows[sl] = rows_flat[stream_src[sl] - g * block]
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.stream_extraction", t1 - t0)
        t0 = t1

    max_vals = stream_vals[:total_q]
    max_rows = stream_rows[:total_q]
    min_vals = -stream_vals[total_q:]
    min_rows = stream_rows[total_q:]
    min_pos, min_iter, iterations, skipped = _stream_walk(
        max_vals, min_vals, m, m_eff, min_skip_heuristic
    )
    if prof is not None:
        prof.record("search.gated_walk", perf_counter() - t0)

    walks = []
    for g in range(num_members):
        sl = slice(int(member_offsets[g]), int(member_offsets[g + 1]))
        walks.append(
            (
                m_eff,
                max_rows[sl],
                max_vals[sl],
                min_rows[sl],
                min_vals[sl],
                min_pos[sl],
                min_iter[sl],
                iterations[sl],
                skipped[sl],
            )
        )
    return walks


def _slot_grid(
    m_eff: int,
    iterations: np.ndarray,
    max_rows: np.ndarray,
    max_vals: np.ndarray,
    min_rows: np.ndarray,
    min_vals: np.ndarray,
    min_pos: np.ndarray,
    min_iter: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Interleaved per-iteration slot grid of every consumed product.

    The max pop of iteration ``i`` lands at slot ``2i`` and its min pop
    at slot ``2i + 1``, so a sequential scan of the grid replays the
    reference engine's addition order row-for-row; accumulating it with
    ``bincount`` (whose scan is sequential) therefore reproduces the
    reference greedy scores bit-for-bit.  Returns ``(slot_rows,
    slot_vals)`` of shape ``(q, width)``; unused slots carry row 0 with
    weight 0.0 and are harmless to accumulate.
    """
    q = max_rows.shape[0]
    width = 2 * max(m_eff, int(iterations.max()))
    slot_rows = np.zeros((q, width), dtype=np.int64)
    slot_vals = np.zeros((q, width), dtype=np.float64)
    slot_rows[:, 0 : 2 * m_eff : 2] = max_rows
    slot_vals[:, 0 : 2 * m_eff : 2] = np.where(max_vals > 0.0, max_vals, 0.0)
    consumed = np.arange(m_eff) < min_pos[:, np.newaxis]
    contributing = consumed & (min_vals < 0.0)
    qi, ki = np.nonzero(contributing)
    slots = 2 * min_iter[qi, ki] + 1
    slot_rows[qi, slots] = min_rows[qi, ki]
    slot_vals[qi, slots] = min_vals[qi, ki]
    return slot_rows, slot_vals


def _positive_candidates(
    greedy: np.ndarray,
    first_max_row: np.ndarray,
    fallback_top1: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Positive-greedy-score rows per query (ascending), with the same
    top-1 fallback as ``selection.select_candidate_rows``.  Returns
    ``(query_idx, row_idx, counts, used_fallback)`` in the flat ragged
    layout of :class:`BatchedCandidateResult`.
    """
    q = greedy.shape[0]
    positive = greedy > 0.0
    counts = positive.sum(axis=1).astype(np.int64)
    used_fallback = np.zeros(q, dtype=bool)
    if fallback_top1:
        used_fallback = counts == 0
    query_idx, row_idx = np.nonzero(positive)
    query_idx = query_idx.astype(np.int64, copy=False)
    row_idx = row_idx.astype(np.int64, copy=False)
    if used_fallback.any():
        # Splice one fallback entry into each empty query's segment.
        empty_queries = np.flatnonzero(used_fallback)
        insert_at = np.concatenate(([0], np.cumsum(counts)))[empty_queries]
        query_idx = np.insert(query_idx, insert_at, empty_queries)
        row_idx = np.insert(row_idx, insert_at, first_max_row[empty_queries])
        counts = np.where(used_fallback, 1, counts)
    return query_idx, row_idx, counts, used_fallback


def batched_candidate_search(
    key: np.ndarray | PreprocessedKey,
    queries: np.ndarray,
    m: int,
    *,
    min_skip_heuristic: bool = True,
    fallback_top1: bool = True,
) -> BatchedCandidateResult:
    """Greedy candidate selection for every query of a batch at once.

    Semantically this is ``greedy_candidate_search(key, queries[i], m)``
    for each ``i``, but the walk advances all queries together through
    batched array operations instead of ``q`` Python-level stream pops.

    Parameters
    ----------
    key:
        ``(n, d)`` key matrix, or an already-built
        :class:`~repro.core.efficient_search.PreprocessedKey` (the
        amortized usage: preprocess once, search many batches).
    queries:
        ``(q, d)`` query batch.
    m:
        The user-configurable iteration count ``M`` (shared by all
        queries, as in the BERT amortization case where every query sees
        the same ``n``).
    min_skip_heuristic / fallback_top1:
        As in :func:`repro.core.candidate_search.greedy_candidate_search`.
    """
    pre = key if isinstance(key, PreprocessedKey) else PreprocessedKey.build(key)
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != pre.d:
        raise ShapeError(
            f"queries must be 2-D (q, d={pre.d}), got {queries.shape}"
        )
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    n, d = pre.n, pre.d
    q = queries.shape[0]
    if n == 0 or d == 0:
        raise ShapeError(f"key must be non-empty, got {(n, d)}")
    if q == 0:
        empty = np.empty(0, dtype=np.int64)
        return BatchedCandidateResult(
            flat_query=empty,
            flat_rows=empty.copy(),
            num_candidates=empty.copy(),
            greedy_scores=np.empty((0, n), dtype=np.float64),
            iterations=empty.copy(),
            max_pops=empty.copy(),
            min_pops=empty.copy(),
            skipped_min=empty.copy(),
            used_fallback=np.empty(0, dtype=bool),
        )

    (
        m_eff,
        max_rows,
        max_vals,
        min_rows,
        min_vals,
        min_pos,
        min_iter,
        iterations,
        skipped,
    ) = _segment_walk(pre, queries, m, min_skip_heuristic=min_skip_heuristic)
    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0

    # Greedy-score accumulation: one bincount over the interleaved
    # per-iteration slot grid replays the reference addition order
    # row-for-row.
    slot_rows, slot_vals = _slot_grid(
        m_eff, iterations, max_rows, max_vals,
        min_rows, min_vals, min_pos, min_iter,
    )
    bins = (np.arange(q, dtype=np.int64)[:, np.newaxis] * n + slot_rows).ravel()
    greedy = np.bincount(
        bins, weights=slot_vals.ravel(), minlength=q * n
    ).reshape(q, n)
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.accumulate", t1 - t0)
        t0 = t1

    max_pops = np.full(q, m_eff, dtype=np.int64)
    query_idx, row_idx, counts, used_fallback = _positive_candidates(
        greedy, max_rows[:, 0], fallback_top1
    )
    if prof is not None:
        prof.record("search.finalize", perf_counter() - t0)

    return BatchedCandidateResult(
        flat_query=query_idx,
        flat_rows=row_idx,
        num_candidates=counts,
        greedy_scores=greedy,
        iterations=iterations,
        max_pops=max_pops,
        min_pops=min_pos,
        skipped_min=skipped,
        used_fallback=used_fallback,
    )


@dataclass
class RaggedAttendResult:
    """Outcome of one fused multi-key :func:`attend_many_ragged` call.

    Queries are numbered globally across the slab (query ``i`` of
    segment ``s`` has global index ``seg_offsets[s] + i``); candidate
    rows are *local* to their owning segment's key matrix.  The flat
    per-candidate arrays follow the same ragged layout as
    :class:`BatchedCandidateResult`: global query ``g`` owns
    ``flat_rows[offsets[g]:offsets[g + 1]]``.

    Attributes
    ----------
    outputs:
        Per-segment attended outputs, ``outputs[s]`` of shape
        ``(q_s, d_v_s)`` (value widths may differ between segments).
    seg_offsets:
        ``(S + 1,)`` query-slab boundaries, echoed from the call.
    flat_query / flat_rows:
        Parallel 1-D int64 arrays: (global query, local candidate row)
        pairs sorted by query then row.
    num_candidates / offsets:
        ``(Q,)`` candidate count per global query and the ``(Q + 1,)``
        segment boundaries into the flat arrays.
    keep / weights:
        Flat per-candidate post-scoring survival mask and softmax
        weights (0 where dropped).
    kept_counts:
        ``(Q,)`` surviving-row count per global query.
    iterations:
        ``(Q,)`` greedy iteration count per query (0 where candidate
        selection was disabled for the segment).
    used_fallback:
        ``(Q,)`` boolean; ``True`` where the top-1 fallback fired.
    """

    outputs: list[np.ndarray]
    seg_offsets: np.ndarray
    flat_query: np.ndarray
    flat_rows: np.ndarray
    num_candidates: np.ndarray
    offsets: np.ndarray
    keep: np.ndarray
    weights: np.ndarray
    kept_counts: np.ndarray
    iterations: np.ndarray
    used_fallback: np.ndarray

    @property
    def num_segments(self) -> int:
        return len(self.outputs)


def attend_many_ragged(
    pres: list[PreprocessedKey],
    values: list[np.ndarray],
    queries: np.ndarray,
    seg_offsets: np.ndarray,
    ms: list[int],
    *,
    score_gap: float | None,
    min_skip_heuristic: bool = True,
    fallback_top1: bool = True,
) -> RaggedAttendResult:
    """Fused approximate attention for a mixed multi-key query slab.

    Runs the full four-stage pipeline — per-segment stream extraction
    over each prepared key's column sorts, greedy-score accumulation of
    *all* segments in one ``bincount`` over per-segment offset bin
    spaces, per-segment score GEMMs gathered into one flat candidate
    layout, and fused ``reduceat`` post-scoring/softmax over the global
    ragged segments — in a single pass over the whole slab.

    Parameters
    ----------
    pres / values:
        ``S`` prepared keys and their ``(n_s, d_v_s)`` value matrices.
        All keys must share the query width ``d``; row counts and value
        widths may differ per segment.
    queries:
        ``(Q, d)`` query slab; segment ``s`` owns rows
        ``seg_offsets[s]:seg_offsets[s + 1]``.
    seg_offsets:
        ``(S + 1,)`` non-decreasing slab boundaries with
        ``seg_offsets[0] == 0`` and ``seg_offsets[-1] == Q``.
    ms:
        Per-segment greedy iteration counts ``M``; ``0`` disables
        candidate selection for that segment (every row is a
        candidate), matching ``ApproximationConfig.iterations``.
    score_gap:
        Post-scoring gap ``t`` in score units (``ln(100 / T)``), or
        ``None`` to keep every candidate.
    min_skip_heuristic / fallback_top1:
        As in :func:`batched_candidate_search`, shared by all segments
        (a fused dispatch is always a single-config dispatch).

    Every per-segment slice of the pipeline performs exactly the
    operations of a standalone single-key dispatch of that segment, in
    the same order (``bincount`` accumulates in input scan order;
    ``reduceat`` reduces each query's slice independently), so each
    segment's outputs are bit-identical to dispatching it alone.
    """
    queries = np.asarray(queries, dtype=np.float64)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    num_segments = len(pres)
    if len(values) != num_segments or len(ms) != num_segments:
        raise ShapeError(
            f"got {num_segments} keys but {len(values)} values and "
            f"{len(ms)} iteration counts"
        )
    if queries.ndim != 2:
        raise ShapeError(f"queries must be 2-D (Q, d), got {queries.shape}")
    total_q = queries.shape[0]
    d = queries.shape[1]
    if (
        seg_offsets.shape != (num_segments + 1,)
        or seg_offsets[0] != 0
        or (np.diff(seg_offsets) < 0).any()
        or seg_offsets[-1] != total_q
    ):
        raise ShapeError(
            f"seg_offsets must be ({num_segments + 1},) non-decreasing "
            f"from 0 to {total_q}, got {seg_offsets!r}"
        )
    values = [np.asarray(v, dtype=np.float64) for v in values]
    for s in range(num_segments):
        if pres[s].d != d:
            raise ShapeError(
                f"segment {s} key width d={pres[s].d} does not match "
                f"query width d={d}"
            )
        if values[s].ndim != 2 or values[s].shape[0] != pres[s].n:
            raise ShapeError(
                f"segment {s} value shape {values[s].shape} does not "
                f"match key rows n={pres[s].n}"
            )
        if int(ms[s]) < 0:
            raise ValueError(f"segment {s} iteration count must be >= 0")
    if total_q == 0:
        empty = np.empty(0, dtype=np.int64)
        return RaggedAttendResult(
            outputs=[
                np.empty((0, v.shape[1]), dtype=np.float64) for v in values
            ],
            seg_offsets=seg_offsets,
            flat_query=empty,
            flat_rows=empty.copy(),
            num_candidates=empty.copy(),
            offsets=np.zeros(1, dtype=np.int64),
            keep=np.empty(0, dtype=bool),
            weights=np.empty(0, dtype=np.float64),
            kept_counts=empty.copy(),
            iterations=empty.copy(),
            used_fallback=np.empty(0, dtype=bool),
        )

    prof = profiling.HOOK
    stage_start = perf_counter() if prof is not None else 0.0

    # Stage 1a: search walks.  Segments sharing (n, d, m) fuse their
    # boundary estimate, stream extraction, and gated walk into one
    # group-batched pass (:func:`_grouped_segment_walk` — per-query-row
    # arithmetic is unchanged, so each segment's walk is bit-identical
    # to a standalone dispatch); lone segments run the single-key path.
    walks: list[tuple | None] = [None] * num_segments
    greedy_base = np.zeros(num_segments + 1, dtype=np.int64)
    fuse_groups: dict[tuple[int, int, int], list[int]] = {}
    for s in range(num_segments):
        lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
        q_s, n_s = hi - lo, pres[s].n
        selecting = int(ms[s]) >= 1 and q_s > 0
        greedy_base[s + 1] = greedy_base[s] + (q_s * n_s if selecting else 0)
        if selecting:
            signature = (pres[s].n, pres[s].d, int(ms[s]))
            fuse_groups.setdefault(signature, []).append(s)
    for (_n_g, _d_g, m_g), members in fuse_groups.items():
        if len(members) == 1:
            s = members[0]
            lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
            walks[s] = _segment_walk(
                pres[s],
                queries[lo:hi],
                m_g,
                min_skip_heuristic=min_skip_heuristic,
            )
        else:
            parts = [
                queries[int(seg_offsets[s]) : int(seg_offsets[s + 1])]
                for s in members
            ]
            group_walks = _grouped_segment_walk(
                [pres[s] for s in members],
                parts,
                m_g,
                min_skip_heuristic=min_skip_heuristic,
            )
            for s, walk in zip(members, group_walks):
                walks[s] = walk

    bins_parts: list[np.ndarray] = []
    weight_parts: list[np.ndarray] = []
    for s in range(num_segments):
        if walks[s] is None:
            continue
        lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
        q_s, n_s = hi - lo, pres[s].n
        (
            m_eff,
            max_rows,
            max_vals,
            min_rows,
            min_vals,
            min_pos,
            min_iter,
            iterations_s,
            _skipped,
        ) = walks[s]
        slot_rows, slot_vals = _slot_grid(
            m_eff, iterations_s, max_rows, max_vals,
            min_rows, min_vals, min_pos, min_iter,
        )
        bins = (
            np.arange(q_s, dtype=np.int64)[:, np.newaxis] * n_s + slot_rows
        ).ravel()
        bins_parts.append(greedy_base[s] + bins)
        weight_parts.append(slot_vals.ravel())

    # Stage 1b: fused greedy-score accumulation.  One bincount over the
    # concatenated per-segment bin spaces; input scan order keeps every
    # segment's additions in its standalone order, bit-for-bit.
    t0 = perf_counter() if prof is not None else 0.0
    if bins_parts:
        greedy_flat = np.bincount(
            np.concatenate(bins_parts),
            weights=np.concatenate(weight_parts),
            minlength=int(greedy_base[-1]),
        )
    else:
        greedy_flat = np.zeros(int(greedy_base[-1]), dtype=np.float64)
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.accumulate", t1 - t0)
        t0 = t1

    # Stage 1c: per-segment finalize into one global flat candidate
    # layout (global query index, segment-local candidate rows).
    qi_parts: list[np.ndarray] = []
    row_parts: list[np.ndarray] = []
    counts_parts: list[np.ndarray] = []
    fallback_parts: list[np.ndarray] = []
    iter_parts: list[np.ndarray] = []
    for s in range(num_segments):
        lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
        q_s, n_s = hi - lo, pres[s].n
        if q_s == 0:
            continue
        if walks[s] is None:
            qi_parts.append(lo + np.repeat(np.arange(q_s, dtype=np.int64), n_s))
            row_parts.append(np.tile(np.arange(n_s, dtype=np.int64), q_s))
            counts_parts.append(np.full(q_s, n_s, dtype=np.int64))
            fallback_parts.append(np.zeros(q_s, dtype=bool))
            iter_parts.append(np.zeros(q_s, dtype=np.int64))
            continue
        m_eff, max_rows = walks[s][0], walks[s][1]
        greedy = greedy_flat[greedy_base[s] : greedy_base[s + 1]].reshape(
            q_s, n_s
        )
        query_idx, row_idx, counts, used_fallback_s = _positive_candidates(
            greedy, max_rows[:, 0], fallback_top1
        )
        qi_parts.append(lo + query_idx)
        row_parts.append(row_idx)
        counts_parts.append(counts)
        fallback_parts.append(used_fallback_s)
        iter_parts.append(walks[s][7])
    flat_query = np.concatenate(qi_parts)
    flat_rows = np.concatenate(row_parts)
    num_candidates = np.concatenate(counts_parts)
    used_fallback = np.concatenate(fallback_parts)
    iterations = np.concatenate(iter_parts)
    if not num_candidates.all():
        raise ValueError(
            "empty candidate set (no positive greedy score with "
            "fallback_top1 disabled); attention has no rows to attend to"
        )
    offsets = np.concatenate(([0], np.cumsum(num_candidates))).astype(np.int64)
    segment_starts = offsets[:-1]
    if prof is not None:
        t1 = perf_counter()
        prof.record("search.finalize", t1 - t0)
        prof.record("attend.candidate_search", t1 - stage_start)
        t0 = t1

    # Stage 2: exact dot products — one GEMM per segment over its
    # contiguous slab view, gathered into the global flat layout.
    score_parts: list[np.ndarray] = []
    for s in range(num_segments):
        lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
        if hi == lo:
            continue
        scores_full = queries[lo:hi] @ pres[s].key.T  # (q_s, n_s)
        sel = slice(int(offsets[lo]), int(offsets[hi]))
        score_parts.append(
            scores_full[flat_query[sel] - lo, flat_rows[sel]]
        )
    scores = np.concatenate(score_parts)
    if prof is not None:
        t1 = perf_counter()
        prof.record("attend.score_gemm", t1 - t0)
        t0 = t1

    # Stage 3: post-scoring over the global ragged segments.  reduceat
    # reduces each query's slice independently and sequentially, so the
    # fused reductions match the per-segment dispatches bit-for-bit.
    qi = flat_query
    max_score = np.maximum.reduceat(scores, segment_starts)
    if score_gap is not None:
        keep = (max_score[qi] - scores) <= score_gap
    else:
        keep = np.ones(scores.shape[0], dtype=bool)
    kept_counts = np.add.reduceat(keep.astype(np.int64), segment_starts)
    if prof is not None:
        t1 = perf_counter()
        prof.record("attend.post_scoring", t1 - t0)
        t0 = t1

    # Stage 4: grouped softmax over the survivors, then one weighted-sum
    # GEMM per segment against its own value matrix.
    shifted = np.where(keep, scores - max_score[qi], 0.0)
    exps = np.where(keep, np.exp(shifted), 0.0)
    weights = exps / np.add.reduceat(exps, segment_starts)[qi]
    outputs: list[np.ndarray] = []
    for s in range(num_segments):
        lo, hi = int(seg_offsets[s]), int(seg_offsets[s + 1])
        q_s, n_s = hi - lo, pres[s].n
        if q_s == 0:
            outputs.append(
                np.empty((0, values[s].shape[1]), dtype=np.float64)
            )
            continue
        sel = slice(int(offsets[lo]), int(offsets[hi]))
        dense = np.zeros((q_s, n_s), dtype=np.float64)
        dense[flat_query[sel] - lo, flat_rows[sel]] = weights[sel]
        outputs.append(dense @ values[s])
    if prof is not None:
        prof.record("attend.softmax_scatter", perf_counter() - t0)

    return RaggedAttendResult(
        outputs=outputs,
        seg_offsets=seg_offsets,
        flat_query=flat_query,
        flat_rows=flat_rows,
        num_candidates=num_candidates,
        offsets=offsets,
        keep=keep,
        weights=weights,
        kept_counts=kept_counts,
        iterations=iterations,
        used_fallback=used_fallback,
    )
