"""Base greedy candidate search (Section IV-B, Figure 6).

Given the element-wise product matrix between the key matrix and a
replicated query, the greedy search walks the globally largest (and the
globally smallest) products for ``M`` iterations, accumulating each visited
value into a per-row *greedy score*.  Rows that end the walk with a positive
greedy score are selected as candidates for the exact dot-product stage.

The implementation here consumes the two product streams from two
pre-sorted arrays, which is the direct ``O(nd log nd)`` formulation of the
paper; :mod:`repro.core.efficient_search` implements the functionally
identical ``O(M log d)`` query-time algorithm (Figure 7), and
:mod:`repro.core.batched_search` runs the same walk for a whole query
batch in vectorized NumPy.  All three are cross-checked by property
tests; shared result construction lives in :mod:`repro.core.selection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.selection import CandidateResult, finalize_result
from repro.errors import ShapeError

__all__ = ["CandidateResult", "greedy_candidate_search", "product_matrix"]


def product_matrix(key: np.ndarray, query: np.ndarray) -> np.ndarray:
    """The element-wise product of the key matrix and the replicated query.

    Entry ``(i, j)`` is the contribution of dimension ``j`` to the dot
    product between key row ``i`` and the query; each row sums to the true
    score (Figure 6).
    """
    key = np.asarray(key, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if key.ndim != 2 or query.ndim != 1 or key.shape[1] != query.shape[0]:
        raise ShapeError(
            f"incompatible shapes: key {key.shape}, query {query.shape}"
        )
    return key * query[np.newaxis, :]


@dataclass
class _Stream:
    """One direction of the sorted product stream."""

    values: np.ndarray
    rows: np.ndarray
    pos: int = 0

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.values.shape[0]

    def pop(self) -> tuple[float, int]:
        value = float(self.values[self.pos])
        row = int(self.rows[self.pos])
        self.pos += 1
        return value, row


def _sorted_streams(products: np.ndarray, m: int) -> tuple[_Stream, _Stream]:
    """Build descending (max) and ascending (min) product streams.

    Only the first ``m`` entries of each stream can ever be consumed, so a
    partial sort via :func:`numpy.argpartition` keeps this ``O(nd + m log m)``.
    """
    flat = products.ravel()
    total = flat.shape[0]
    rows = np.repeat(np.arange(products.shape[0]), products.shape[1])
    m = min(m, total)
    if m == total:
        order = np.argsort(flat, kind="stable")
        asc = order
        desc = order[::-1]
    else:
        top = np.argpartition(flat, total - m)[total - m:]
        desc = top[np.argsort(flat[top], kind="stable")][::-1]
        bottom = np.argpartition(flat, m - 1)[:m]
        asc = bottom[np.argsort(flat[bottom], kind="stable")]
    max_stream = _Stream(flat[desc], rows[desc])
    min_stream = _Stream(flat[asc], rows[asc])
    return max_stream, min_stream


def greedy_candidate_search(
    key: np.ndarray,
    query: np.ndarray,
    m: int,
    *,
    min_skip_heuristic: bool = True,
    fallback_top1: bool = True,
) -> CandidateResult:
    """Run the base greedy candidate search of Figure 6 for ``m`` iterations.

    Each iteration consumes the next-largest product (adding it to its
    row's greedy score when positive) and, unless skipped by the heuristic,
    the next-smallest product (adding it when negative).  Rows with a
    positive final greedy score become candidates.

    Parameters
    ----------
    m:
        The user-configurable iteration count ``M``.
    min_skip_heuristic:
        Skip the min-stream pop while the cumulative sum of consumed
        entries is negative (Section IV-C, final paragraph).
    fallback_top1:
        If no row ends with a positive score, return the row that holds the
        globally largest product so attention always has a target.
    """
    products = product_matrix(key, query)
    n = products.shape[0]
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")

    max_stream, min_stream = _sorted_streams(products, m)
    greedy = np.zeros(n, dtype=np.float64)
    running_total = 0.0
    iterations = max_pops = min_pops = skipped = 0
    first_max_row = -1

    for _ in range(m):
        if max_stream.exhausted and min_stream.exhausted:
            break
        iterations += 1
        if not max_stream.exhausted:
            value, row = max_stream.pop()
            max_pops += 1
            if first_max_row < 0:
                first_max_row = row
            running_total += value
            if value > 0.0:
                greedy[row] += value
        if min_skip_heuristic and running_total < 0.0:
            skipped += 1
            continue
        if not min_stream.exhausted:
            value, row = min_stream.pop()
            min_pops += 1
            running_total += value
            if value < 0.0:
                greedy[row] += value

    return finalize_result(
        greedy,
        first_max_row,
        iterations=iterations,
        max_pops=max_pops,
        min_pops=min_pops,
        skipped_min=skipped,
        fallback_top1=fallback_top1,
    )


@dataclass
class _TraceEntry:
    """One iteration of the greedy walk, for visualization and debugging."""

    iteration: int
    max_value: float | None
    max_row: int | None
    min_value: float | None
    min_row: int | None
    min_skipped: bool
    greedy_scores: np.ndarray = field(repr=False)


def greedy_search_trace(
    key: np.ndarray,
    query: np.ndarray,
    m: int,
    *,
    min_skip_heuristic: bool = True,
) -> list[_TraceEntry]:
    """Like :func:`greedy_candidate_search` but recording every iteration.

    Used by the quickstart example to reproduce the walk shown in Figure 6.
    """
    products = product_matrix(key, query)
    max_stream, min_stream = _sorted_streams(products, m)
    greedy = np.zeros(products.shape[0], dtype=np.float64)
    running_total = 0.0
    trace: list[_TraceEntry] = []

    for iteration in range(m):
        if max_stream.exhausted and min_stream.exhausted:
            break
        max_value = max_row = None
        if not max_stream.exhausted:
            value, row = max_stream.pop()
            running_total += value
            if value > 0.0:
                greedy[row] += value
            max_value, max_row = value, row
        min_value = min_row = None
        skipped = min_skip_heuristic and running_total < 0.0
        if not skipped and not min_stream.exhausted:
            value, row = min_stream.pop()
            running_total += value
            if value < 0.0:
                greedy[row] += value
            min_value, min_row = value, row
        trace.append(
            _TraceEntry(
                iteration=iteration,
                max_value=max_value,
                max_row=max_row,
                min_value=min_value,
                min_row=min_row,
                min_skipped=skipped,
                greedy_scores=greedy.copy(),
            )
        )
    return trace
