"""Configuration objects for the approximate attention mechanism.

The paper exposes two user-configurable knobs (Section IV):

``M``
    The number of greedy candidate-selection iterations.  The paper sweeps
    ``M`` as a fraction of ``n`` (Figure 11) and defines two named operating
    points: *conservative* (``M = n/2``) and *aggressive* (``M = n/8``).

``T``
    The post-scoring threshold, expressed as a percentage: a row is kept
    only if its post-softmax weight would be at least ``T`` percent of the
    maximum weight (Section IV-D).  The named operating points use
    ``T = 5%`` (conservative) and ``T = 10%`` (aggressive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = [
    "ApproximationConfig",
    "TIERS",
    "conservative",
    "aggressive",
    "exact",
    "tier_rank",
    "threshold_from_percent",
    "percent_from_threshold",
]

#: The named quality tiers of the serving layer, best quality first.
#: ``"exact"`` disables both approximation stages, ``"conservative"``
#: and ``"aggressive"`` are the paper's two operating points (Section
#: IV).  The order is the degradation ladder an overloaded server walks
#: down: each step to the right trades accuracy for latency.
TIERS = ("exact", "conservative", "aggressive")


def tier_rank(tier: str) -> int:
    """Position of ``tier`` on the degradation ladder (0 = best quality).

    Raises :class:`~repro.errors.ConfigError` for unknown tier names, so
    every serving-layer surface rejects a typo'd tier identically.
    """
    try:
        return TIERS.index(tier)
    except ValueError:
        raise ConfigError(
            f"unknown quality tier {tier!r}; expected one of {TIERS}"
        ) from None


def threshold_from_percent(t_percent: float) -> float:
    """Convert the paper's ``T`` (percent of max weight) into a score gap ``t``.

    A row whose dot-product score trails the best score by more than
    ``t = ln(100 / T)`` ends up with a post-softmax weight smaller than
    ``T%`` of the maximum weight, because softmax weights are proportional
    to ``exp(score)``.
    """
    if not 0.0 < t_percent <= 100.0:
        raise ConfigError(f"T must be in (0, 100], got {t_percent}")
    return math.log(100.0 / t_percent)


def percent_from_threshold(t_gap: float) -> float:
    """Inverse of :func:`threshold_from_percent`: ``T = 100 * exp(-t)``."""
    if t_gap < 0.0:
        raise ConfigError(f"score gap t must be non-negative, got {t_gap}")
    return 100.0 * math.exp(-t_gap)


@dataclass(frozen=True)
class ApproximationConfig:
    """Settings for the two approximation stages of A3.

    Attributes
    ----------
    m_fraction:
        Candidate-selection iteration count as a fraction of ``n``.  Used
        when ``m_absolute`` is ``None``; this matches how the paper sweeps
        ``M`` (``M = n``, ``3/4 n``, ..., ``1/8 n``).
    m_absolute:
        Absolute iteration count; overrides ``m_fraction`` when set.
    t_percent:
        Post-scoring threshold ``T`` in percent, or ``None`` to disable the
        post-scoring selection stage entirely.
    candidate_selection:
        Whether the greedy candidate-selection stage is enabled.  When
        disabled every row is treated as a candidate (used to isolate the
        post-scoring stage, as in Figure 12).
    min_skip_heuristic:
        Enables the paper's heuristic of skipping the minQ pop while the
        cumulative sum of consumed entries is negative, which avoids
        selecting too few candidates when similarity scores are low.
    fallback_top1:
        When the greedy search produces no positive-score candidate, fall
        back to the single best greedy-score row so that attention always
        has at least one row to attend to.  (The paper does not specify the
        empty-candidate behaviour; this is the natural hardware-safe
        choice and is exercised by tests.)
    """

    m_fraction: float | None = 0.5
    m_absolute: int | None = None
    t_percent: float | None = 5.0
    candidate_selection: bool = True
    min_skip_heuristic: bool = True
    fallback_top1: bool = True

    def __post_init__(self) -> None:
        if self.candidate_selection:
            if self.m_absolute is None and self.m_fraction is None:
                raise ConfigError(
                    "candidate selection requires m_fraction or m_absolute"
                )
            if self.m_absolute is not None and self.m_absolute < 1:
                raise ConfigError(f"m_absolute must be >= 1, got {self.m_absolute}")
            if (
                self.m_absolute is None
                and self.m_fraction is not None
                and self.m_fraction <= 0.0
            ):
                raise ConfigError(f"m_fraction must be > 0, got {self.m_fraction}")
        if self.t_percent is not None and not 0.0 < self.t_percent <= 100.0:
            raise ConfigError(f"t_percent must be in (0, 100], got {self.t_percent}")

    def iterations(self, n: int) -> int:
        """Resolve the iteration count ``M`` for a key matrix with ``n`` rows.

        An absolute ``M`` is used as-is (it may exceed ``n``; the search
        itself stops when the product streams are exhausted at ``n * d``).
        A fractional ``M`` follows the paper's sweep convention and is a
        fraction of ``n``.
        """
        if not self.candidate_selection:
            return 0
        if self.m_absolute is not None:
            return self.m_absolute
        return max(1, min(n, round(self.m_fraction * n)))

    def score_gap(self) -> float | None:
        """The post-scoring gap ``t`` in score units, or ``None`` if disabled."""
        if self.t_percent is None:
            return None
        return threshold_from_percent(self.t_percent)

    def with_overrides(self, **changes: object) -> "ApproximationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def conservative() -> ApproximationConfig:
    """The paper's conservative operating point: ``M = n/2``, ``T = 5%``."""
    return ApproximationConfig(m_fraction=0.5, t_percent=5.0)


def aggressive() -> ApproximationConfig:
    """The paper's aggressive operating point: ``M = n/8``, ``T = 10%``."""
    return ApproximationConfig(m_fraction=0.125, t_percent=10.0)


def exact() -> ApproximationConfig:
    """A configuration with both approximation stages disabled."""
    return ApproximationConfig(
        m_fraction=None,
        m_absolute=None,
        t_percent=None,
        candidate_selection=False,
    )
