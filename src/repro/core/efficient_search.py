"""Efficient greedy candidate search (Section IV-C, Figures 7 and 8).

The key matrix is preprocessed off the critical path: every column is
sorted independently, keeping ``(value, rowID)`` pairs.  At query time two
priority queues (one walking the largest products, one the smallest) merge
the ``d`` per-column sorted streams, so each of the ``M`` iterations costs
``O(log d)`` instead of touching the whole matrix.

This module is the software ground truth for the candidate-selection
hardware in :mod:`repro.hardware.candidate_module`; both must produce the
same candidate set as :func:`repro.core.candidate_search.greedy_candidate_search`
on tie-free inputs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.selection import CandidateResult, finalize_result
from repro.errors import ShapeError

__all__ = ["PreprocessedKey", "efficient_candidate_search"]


@dataclass(frozen=True)
class PreprocessedKey:
    """Per-column sorted view of a key matrix (the ``sortedKey`` of Figure 8).

    Attributes
    ----------
    sorted_values:
        ``(n, d)`` array; column ``j`` holds the values of the original
        column ``j`` in ascending order.
    row_ids:
        ``(n, d)`` array of the original row index of each sorted value.
    key:
        The original ``(n, d)`` key matrix (kept for the exact dot-product
        stage that follows candidate selection).
    """

    sorted_values: np.ndarray
    row_ids: np.ndarray
    key: np.ndarray

    @classmethod
    def build(cls, key: np.ndarray) -> "PreprocessedKey":
        """Sort every column of ``key`` (the preprocessing step, Fig. 7 L1-5)."""
        key = np.asarray(key, dtype=np.float64)
        if key.ndim != 2:
            raise ShapeError(f"key must be 2-D (n, d), got {key.shape}")
        order = np.argsort(key, axis=0, kind="stable")
        sorted_values = np.take_along_axis(key, order, axis=0)
        return cls(sorted_values=sorted_values, row_ids=order, key=key)

    @property
    def n(self) -> int:
        return int(self.key.shape[0])

    @property
    def d(self) -> int:
        return int(self.key.shape[1])

    @property
    def nbytes(self) -> int:
        """Total bytes held by the three array planes (the payload size a
        packed :class:`repro.core.artifacts.ArtifactBuffer` carries)."""
        return int(
            self.sorted_values.nbytes + self.row_ids.nbytes + self.key.nbytes
        )

    def entry(self, ptr: int, col: int) -> tuple[float, int]:
        """The ``(value, rowID)`` pair at sorted position ``ptr`` of ``col``."""
        return float(self.sorted_values[ptr, col]), int(self.row_ids[ptr, col])


class _ColumnWalker:
    """Pointer state for one priority queue (max or min side).

    ``direction=+1`` walks products in descending order (the maxQ side),
    ``direction=-1`` in ascending order (the minQ side).  For each column
    the walk starts at the end of the sorted column that maximizes (or
    minimizes) ``value * query[col]`` and steps toward the other end, which
    is exactly the ``max_ptr`` / ``min_ptr`` update rule of Figure 7.
    """

    def __init__(self, pre: PreprocessedKey, query: np.ndarray, direction: int):
        self._pre = pre
        self._query = query
        self._direction = direction
        n = pre.n
        # ``want_high[j]`` is True when this side should start from the
        # largest key value of column j.
        positive = query > 0.0
        want_high = positive if direction > 0 else ~positive
        self.ptr = np.where(want_high, n - 1, 0).astype(np.int64)
        self._step = np.where(want_high, -1, 1).astype(np.int64)
        self._heap: list[tuple[float, int, int]] = []
        sign = -1.0 if direction > 0 else 1.0
        for col in range(pre.d):
            value, row = pre.entry(int(self.ptr[col]), col)
            product = value * float(query[col])
            self._heap.append((sign * product, col, row))
        heapq.heapify(self._heap)
        self._sign = sign

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> tuple[float, int, int]:
        """Pop the best product; refill from the popped column if possible."""
        keyed, col, row = heapq.heappop(self._heap)
        product = self._sign * keyed
        next_ptr = int(self.ptr[col]) + int(self._step[col])
        if 0 <= next_ptr < self._pre.n:
            self.ptr[col] = next_ptr
            value, next_row = self._pre.entry(next_ptr, col)
            next_product = value * float(self._query[col])
            heapq.heappush(self._heap, (self._sign * next_product, col, next_row))
        else:
            self.ptr[col] = next_ptr  # off the end: column exhausted
        return product, row, col


def efficient_candidate_search(
    pre: PreprocessedKey,
    query: np.ndarray,
    m: int,
    *,
    min_skip_heuristic: bool = True,
    fallback_top1: bool = True,
) -> CandidateResult:
    """Query-time candidate selection over a preprocessed key (Fig. 7 L6-31).

    Functionally identical to
    :func:`repro.core.candidate_search.greedy_candidate_search`; the cost of
    each iteration is ``O(log d)`` and is independent of ``n``.
    """
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (pre.d,):
        raise ShapeError(f"query shape {query.shape} does not match d={pre.d}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")

    max_side = _ColumnWalker(pre, query, direction=+1)
    min_side = _ColumnWalker(pre, query, direction=-1)
    greedy = np.zeros(pre.n, dtype=np.float64)
    running_total = 0.0
    iterations = max_pops = min_pops = skipped = 0
    first_max_row = -1

    for _ in range(m):
        if not max_side and not min_side:
            break
        iterations += 1
        if max_side:
            product, row, _ = max_side.pop()
            max_pops += 1
            if first_max_row < 0:
                first_max_row = row
            running_total += product
            if product > 0.0:
                greedy[row] += product
        if min_skip_heuristic and running_total < 0.0:
            skipped += 1
            continue
        if min_side:
            product, row, _ = min_side.pop()
            min_pops += 1
            running_total += product
            if product < 0.0:
                greedy[row] += product

    return finalize_result(
        greedy,
        first_max_row,
        iterations=iterations,
        max_pops=max_pops,
        min_pops=min_pops,
        skipped_min=skipped,
        fallback_top1=fallback_top1,
    )
