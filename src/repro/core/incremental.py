"""Incremental maintenance of the per-column sorted key structures.

The paper prepares a key matrix once (the Figure 7 column sort) and
amortizes it over many queries — but a live serving context *mutates*:
chat-style sessions append new memory rows, KV stores delete and
replace entries.  Re-running ``PreprocessedKey.build`` on every edit
costs ``O(n d log n)``; this module maintains the sorted structures
incrementally instead:

* :func:`splice_append` inserts ``k`` new rows with one batched binary
  search per column prefix — ``O(d (log n + k))`` comparisons plus the
  unavoidable ``O((n + k) d)`` array splice (a memcpy, not a sort);
* :func:`splice_delete` compacts the deleted rows out of every column
  and renumbers the surviving row ids in one vectorized pass;
* :func:`splice_replace` moves a single row's entry inside each sorted
  column via two binary searches and a band shift.

**Bit-identity contract.**  Every function returns a
:class:`~repro.core.efficient_search.PreprocessedKey` whose
``sorted_values`` / ``row_ids`` / ``key`` arrays are *exactly* equal to
``PreprocessedKey.build(final_key)`` on the equivalent final key —
including tie order.  ``build`` uses a stable sort, so within a run of
equal column values the row ids ascend; each splice preserves that
invariant (appended rows carry the largest ids and are inserted after
their ties; deletion preserves relative order; replacement re-inserts
at the exact ``(value, row id)`` lexicographic position).  The
property tests in ``tests/core/test_incremental.py`` pin this down on
tie-heavy inputs, which is what makes a mutated serving session's
attention output bit-identical to a freshly prepared backend.

**Copy-on-write contract.**  Every splice only *reads* the incoming
``pre`` arrays and allocates fresh output arrays — it never writes into
``pre`` in place.  This is load-bearing for the zero-copy artifact
store (:mod:`repro.core.artifacts`): a backend that adopted read-only
``np.frombuffer`` views over a shared-memory segment or an mmap'd spill
file can be mutated freely — the splice re-materializes the prepared
state as private heap arrays (a copy-on-write re-export), and the
shared buffer other adopters may still be mapping is never touched.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core import profiling
from repro.core.efficient_search import PreprocessedKey
from repro.errors import ShapeError

__all__ = [
    "splice_append",
    "splice_delete",
    "splice_replace",
    "validate_delete_rows",
    "validate_replace_row",
]


def validate_delete_rows(rows, n: int) -> np.ndarray:
    """Validate delete indices against an ``n``-row key; returns them
    as int64.  Shared by the splice and full-rebuild paths so the two
    reject exactly the same inputs (numpy would otherwise wrap
    negatives silently on the rebuild path)."""
    rows = np.asarray(rows, dtype=np.int64).ravel()
    if rows.size == 0:
        return rows
    if rows.min() < 0 or rows.max() >= n:
        raise ShapeError(
            f"delete rows must lie in [0, {n}), got {rows.tolist()}"
        )
    if np.unique(rows).size != rows.size:
        raise ShapeError(f"duplicate delete rows: {rows.tolist()}")
    if rows.size >= n:
        raise ShapeError("cannot delete every row; the key must stay non-empty")
    return rows


def validate_replace_row(row: int, new_row: np.ndarray, n: int, d: int):
    """Validate one replacement against an ``(n, d)`` key; returns
    ``(row, new_row)`` normalized.  Shared by splice and rebuild."""
    new_row = np.asarray(new_row, dtype=np.float64).ravel()
    if new_row.shape != (d,):
        raise ShapeError(
            f"replacement row must have shape ({d},), got {new_row.shape}"
        )
    row = int(row)
    if not 0 <= row < n:
        raise ShapeError(f"replace row must lie in [0, {n}), got {row}")
    return row, new_row


def _bisect_columns(
    sorted_cols: np.ndarray, targets: np.ndarray, *, side: str
) -> np.ndarray:
    """Per-column ``searchsorted`` for a ``(k, d)`` target matrix.

    Column ``j`` of the result is
    ``np.searchsorted(sorted_cols[:, j], targets[:, j], side=side)``;
    the bisection advances all ``k * d`` searches together in
    ``O(log n)`` array passes instead of ``d`` Python-level calls.
    """
    n = sorted_cols.shape[0]
    lo = np.zeros(targets.shape, dtype=np.int64)
    hi = np.full(targets.shape, n, dtype=np.int64)
    cols = np.arange(targets.shape[1], dtype=np.int64)[np.newaxis, :]
    for _ in range(int(n).bit_length() + 1):
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        vals = sorted_cols[np.minimum(mid, n - 1), cols]
        if side == "right":
            go_right = vals <= targets
        else:
            go_right = vals < targets
        lo = np.where(active & go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    return lo


def splice_append(pre: PreprocessedKey, rows: np.ndarray) -> PreprocessedKey:
    """Insert ``k`` new key rows into the sorted structures by splice.

    The new rows take row ids ``n .. n + k - 1``.  Each column's
    insertion points come from one batched binary search against the
    existing sorted column (``side="right"``, so new entries land after
    their value ties — exactly where a stable re-sort would put the
    higher row ids), and the block itself is stably pre-sorted so equal
    values within it keep ascending ids.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[1] != pre.d:
        raise ShapeError(
            f"appended rows must be 2-D (k, d={pre.d}), got {rows.shape}"
        )
    k = rows.shape[0]
    if k == 0:
        return pre
    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0
    n, d = pre.n, pre.d

    order = np.argsort(rows, axis=0, kind="stable")  # (k, d)
    block_vals = np.take_along_axis(rows, order, axis=0)
    block_ids = order.astype(np.int64) + n
    pos = _bisect_columns(pre.sorted_values, block_vals, side="right")

    # Final positions: block entry b of a column lands at pos[b] plus
    # the b block entries inserted before it; old entry i shifts down
    # by the number of block entries inserted at or before it, counted
    # with one histogram + cumulative sum per column.
    # Per-column insertion histogram, laid out column-major so the
    # running count is one cache-friendly contiguous cumsum per column.
    cols_k = np.broadcast_to(np.arange(d, dtype=np.int64), (k, d))
    ins = pos + np.arange(k, dtype=np.int64)[:, np.newaxis]
    hist = np.bincount(
        (cols_k * (n + 1) + pos).ravel(), minlength=(n + 1) * d
    ).reshape(d, n + 1)
    shift = np.cumsum(hist, axis=1)[:, :n].T

    # Scatter through flat indices: one index computation serves both
    # the value and the row-id planes.
    cols_n = np.arange(d, dtype=np.int64)[np.newaxis, :]
    old_flat = (
        (np.arange(n, dtype=np.int64)[:, np.newaxis] + shift) * d + cols_n
    ).ravel()
    ins_flat = (ins * d + cols_k).ravel()
    sorted_values = np.empty((n + k, d), dtype=np.float64)
    row_ids = np.empty((n + k, d), dtype=np.int64)
    sorted_values.ravel()[old_flat] = pre.sorted_values.ravel()
    row_ids.ravel()[old_flat] = pre.row_ids.ravel()
    sorted_values.ravel()[ins_flat] = block_vals.ravel()
    row_ids.ravel()[ins_flat] = block_ids.ravel()
    out = PreprocessedKey(
        sorted_values=sorted_values,
        row_ids=row_ids,
        key=np.concatenate([pre.key, rows]),
    )
    if prof is not None:
        prof.record("splice.append", perf_counter() - t0)
    return out


def splice_delete(pre: PreprocessedKey, rows) -> PreprocessedKey:
    """Remove the given rows, renumbering the survivors densely.

    The surviving rows keep their relative order (row ``i`` becomes
    ``i - #deleted_below_i``), so each column is compacted in place —
    relative order of the kept entries never changes, which is exactly
    what a stable re-sort of the shrunken key would produce.
    """
    n, d = pre.n, pre.d
    rows = validate_delete_rows(rows, n)
    if rows.size == 0:
        return pre
    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0

    keep = np.ones(n, dtype=bool)
    keep[rows] = False
    remap = np.cumsum(keep) - 1  # old row id -> new row id (kept rows)
    kept = keep[pre.row_ids]  # (n, d): which sorted entries survive
    target = np.cumsum(kept, axis=0) - 1
    cols = np.broadcast_to(np.arange(d, dtype=np.int64), (n, d))
    out_n = n - rows.size
    sorted_values = np.empty((out_n, d), dtype=np.float64)
    row_ids = np.empty((out_n, d), dtype=np.int64)
    sorted_values[target[kept], cols[kept]] = pre.sorted_values[kept]
    row_ids[target[kept], cols[kept]] = remap[pre.row_ids[kept]]
    out = PreprocessedKey(
        sorted_values=sorted_values,
        row_ids=row_ids,
        key=pre.key[keep],
    )
    if prof is not None:
        prof.record("splice.delete", perf_counter() - t0)
    return out


def splice_replace(
    pre: PreprocessedKey, row: int, new_row: np.ndarray
) -> PreprocessedKey:
    """Replace one key row, moving its entry inside each sorted column.

    Per column the old entry is located, the new value's stable
    position is found with two binary searches (value bounds, then row
    id among ties — columns are sorted by ``(value, row id)``), and the
    band between the two positions shifts by one slot.
    """
    n, d = pre.n, pre.d
    row, new_row = validate_replace_row(row, new_row, n, d)
    prof = profiling.HOOK
    t0 = perf_counter() if prof is not None else 0.0

    # Where the old entry sits in each column.
    removed = np.argmax(pre.row_ids == row, axis=0)

    # Where the new value belongs among the *remaining* entries: count
    # the entries lexicographically before (value, row) and discount
    # the removed entry when it qualified.
    target = new_row[np.newaxis, :]
    lo = _bisect_columns(pre.sorted_values, target, side="left")[0]
    hi = _bisect_columns(pre.sorted_values, target, side="right")[0]
    q = lo.copy()
    for j in np.flatnonzero(hi > lo):  # value ties: rare for real keys
        tied_ids = pre.row_ids[lo[j] : hi[j], j]
        q[j] += int(np.searchsorted(tied_ids, row))
    q -= (pre.key[row] < new_row).astype(np.int64)

    i = np.arange(n, dtype=np.int64)[:, np.newaxis]
    q_ = q[np.newaxis, :]
    r_ = removed[np.newaxis, :]
    shift = np.where(
        (q_ <= r_) & (i > q_) & (i <= r_),
        -1,
        np.where((q_ > r_) & (i >= r_) & (i < q_), 1, 0),
    )
    src = i + shift
    cols = np.broadcast_to(np.arange(d, dtype=np.int64), (n, d))
    sorted_values = pre.sorted_values[src, cols]
    row_ids = pre.row_ids[src, cols]
    sorted_values[q, np.arange(d)] = new_row
    row_ids[q, np.arange(d)] = row
    key = pre.key.copy()
    key[row] = new_row
    out = PreprocessedKey(
        sorted_values=sorted_values, row_ids=row_ids, key=key
    )
    if prof is not None:
        prof.record("splice.replace", perf_counter() - t0)
    return out
