"""Post-scoring approximation (Section IV-D).

After the exact dot products of the selected candidates are computed, rows
whose score trails the best score by more than a gap ``t`` are dropped
before the softmax and the weighted sum.  Because softmax weights are
proportional to ``exp(score)``, a row trailing by ``t`` would receive a
weight at least ``e^t`` times smaller than the top row; the paper
parameterizes this as ``T = 100 * exp(-t)``, the minimum post-softmax
weight (as a percentage of the maximum weight) a row must reach to be kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import threshold_from_percent

__all__ = ["PostScoringResult", "post_scoring_select", "static_top_k_select"]


@dataclass
class PostScoringResult:
    """Outcome of the post-scoring selection stage.

    Attributes
    ----------
    kept:
        Indices *into the candidate score array* of the rows that survive.
    mask:
        Boolean mask over the candidate scores (``mask[i]`` is ``True`` when
        candidate ``i`` is kept).
    max_score:
        The maximum candidate score (the reference the gap is measured from).
    threshold_gap:
        The score gap ``t`` that was applied.
    """

    kept: np.ndarray
    mask: np.ndarray
    max_score: float
    threshold_gap: float

    @property
    def num_kept(self) -> int:
        return int(self.kept.shape[0])

    def selection_fraction(self) -> float:
        """Fraction of candidate rows kept for the softmax stage."""
        total = self.mask.shape[0]
        return self.num_kept / total if total else 0.0


def post_scoring_select(
    scores: np.ndarray, t_percent: float
) -> PostScoringResult:
    """Keep rows whose post-softmax weight would reach ``T%`` of the maximum.

    Parameters
    ----------
    scores:
        ``(c,)`` exact dot-product scores of the candidate rows.
    t_percent:
        The paper's ``T`` in percent.  ``T = 1`` keeps nearly everything;
        ``T = 20`` keeps only rows scoring close to the best.

    Notes
    -----
    The hardware realizes this with 16 parallel subtract-and-compare lanes
    (Section V-B); the arithmetic here is identical.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.shape[0] == 0:
        raise ValueError(f"scores must be a non-empty 1-D array, got {scores.shape}")
    gap = threshold_from_percent(t_percent)
    max_score = float(np.max(scores))
    mask = (max_score - scores) <= gap
    kept = np.flatnonzero(mask)
    return PostScoringResult(
        kept=kept.astype(np.int64),
        mask=mask,
        max_score=max_score,
        threshold_gap=gap,
    )


def static_top_k_select(scores: np.ndarray, k: int) -> PostScoringResult:
    """Ablation baseline: keep a fixed number of top-scoring rows.

    Section IV-D argues the dynamic threshold adapts to the score
    distribution while a static ``k`` cannot; the ablation benchmark
    compares the two.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.shape[0] == 0:
        raise ValueError(f"scores must be a non-empty 1-D array, got {scores.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, scores.shape[0])
    kept = np.sort(np.argpartition(scores, -k)[-k:])
    mask = np.zeros(scores.shape[0], dtype=bool)
    mask[kept] = True
    max_score = float(np.max(scores))
    kept_min = float(np.min(scores[kept]))
    return PostScoringResult(
        kept=kept.astype(np.int64),
        mask=mask,
        max_score=max_score,
        threshold_gap=max_score - kept_min,
    )
