"""Kernel-stage profiling seam (zero cost when disabled).

The serving layer wants per-stage kernel timings (stream extraction,
gated walk, GEMM, scatter; splice vs rebuild), but the kernels in
:mod:`repro.core` must stay importable and fast without any serving
machinery.  The seam is a module-global ``HOOK``:

* disabled (the default) — ``HOOK is None`` and the instrumented
  kernels pay one global load plus one ``is None`` test per stage;
* enabled — ``HOOK.record(stage, seconds)`` is called with the wall
  time of each stage.

Install a hook with :func:`set_hook`, or use :class:`StageProfiler` as
a context manager::

    with StageProfiler() as prof:
        backend.attend_many(key, value, queries)
    print(prof.summary())

The hook is process-global: it observes every kernel call in the
process while installed (the intended usage — profile a bounded run,
then read the summary).  Hooks must be cheap and must not raise;
``StageProfiler.record`` is thread-safe.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict

__all__ = ["HOOK", "StageProfiler", "get_hook", "set_hook"]

# The seam.  Hot kernels read this into a local once per call and skip
# all timing when it is None.
HOOK = None

clock = time.perf_counter


def set_hook(hook):
    """Install ``hook`` as the process-global profiling sink.

    ``hook`` must expose ``record(stage: str, seconds: float)`` (or be
    ``None`` to disable profiling).  Returns the previously installed
    hook so callers can restore it.
    """
    global HOOK
    previous = HOOK
    HOOK = hook
    return previous


def get_hook():
    """The currently installed profiling hook (``None`` when disabled)."""
    return HOOK


class StageProfiler:
    """Thread-safe per-stage call-count / wall-time accumulator.

    Usable directly via :func:`set_hook` or as a context manager that
    installs itself on entry and restores the previous hook on exit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, int] = defaultdict(int)
        self._seconds: dict[str, float] = defaultdict(float)
        self._previous = None

    def record(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._calls[stage] += 1
            self._seconds[stage] += seconds

    def reset(self) -> None:
        with self._lock:
            self._calls.clear()
            self._seconds.clear()

    def summary(self) -> dict[str, dict[str, float]]:
        """``{stage: {calls, total_seconds, mean_seconds}}``, sorted by
        stage name."""
        with self._lock:
            return {
                stage: {
                    "calls": self._calls[stage],
                    "total_seconds": self._seconds[stage],
                    "mean_seconds": self._seconds[stage] / self._calls[stage],
                }
                for stage in sorted(self._calls)
            }

    def __enter__(self) -> "StageProfiler":
        self._previous = set_hook(self)
        return self

    def __exit__(self, *exc) -> None:
        set_hook(self._previous)
        self._previous = None
