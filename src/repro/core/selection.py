"""Shared candidate-selection result construction.

All three candidate-search engines — the reference partial-sort walk
(:mod:`repro.core.candidate_search`), the heap-and-pointer formulation
(:mod:`repro.core.efficient_search`), and the batched vectorized engine
(:mod:`repro.core.batched_search`) — end the same way: rows with a
positive greedy score become candidates, and when no row qualifies the
search optionally falls back to the row holding the globally largest
product.  This module owns that finalization so every engine builds its
:class:`CandidateResult` through one code path and the semantics cannot
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CandidateResult", "select_candidate_rows", "finalize_result"]


@dataclass
class CandidateResult:
    """Outcome of a greedy candidate search.

    Attributes
    ----------
    candidates:
        Row indices selected as candidates, in ascending row order (the
        hardware emits them by linearly scanning the greedy-score register
        file, so row order is the natural output order).
    greedy_scores:
        The ``(n,)`` greedy score array after ``M`` iterations.
    iterations:
        Number of loop iterations actually executed (``<= M``; fewer only
        when both product streams are exhausted).
    max_pops / min_pops:
        How many entries were consumed from the descending (max) and
        ascending (min) product streams.
    skipped_min:
        Iterations whose minQ pop was skipped by the negative-running-sum
        heuristic.
    used_fallback:
        ``True`` when no row had a positive greedy score and the fallback
        row (the row holding the globally largest product) was returned.
    """

    candidates: np.ndarray
    greedy_scores: np.ndarray
    iterations: int
    max_pops: int
    min_pops: int
    skipped_min: int
    used_fallback: bool = False

    @property
    def num_candidates(self) -> int:
        return int(self.candidates.shape[0])

    def selection_fraction(self) -> float:
        """Fraction of key rows selected as candidates."""
        n = self.greedy_scores.shape[0]
        return self.num_candidates / n if n else 0.0


def select_candidate_rows(
    greedy_scores: np.ndarray,
    first_max_row: int,
    *,
    fallback_top1: bool = True,
) -> tuple[np.ndarray, bool]:
    """Positive-greedy-score rows, with the optional top-1 fallback.

    Parameters
    ----------
    greedy_scores:
        The ``(n,)`` accumulated greedy scores.
    first_max_row:
        The row of the first max-stream pop (the globally largest
        product), or ``-1`` when the max stream was never popped.
    fallback_top1:
        When no row has a positive score, return ``first_max_row`` (or,
        if that is unavailable, the best greedy-score row) so attention
        always has a target.

    Returns
    -------
    tuple
        ``(candidates, used_fallback)`` where ``candidates`` is an
        ascending ``int64`` row-index array.
    """
    candidates = np.flatnonzero(greedy_scores > 0.0)
    used_fallback = False
    if candidates.size == 0 and fallback_top1:
        fallback = (
            first_max_row
            if first_max_row >= 0
            else int(np.argmax(greedy_scores))
        )
        candidates = np.array([fallback], dtype=np.int64)
        used_fallback = True
    return candidates.astype(np.int64), used_fallback


def finalize_result(
    greedy_scores: np.ndarray,
    first_max_row: int,
    *,
    iterations: int,
    max_pops: int,
    min_pops: int,
    skipped_min: int,
    fallback_top1: bool = True,
) -> CandidateResult:
    """Build the :class:`CandidateResult` every engine returns."""
    candidates, used_fallback = select_candidate_rows(
        greedy_scores, first_max_row, fallback_top1=fallback_top1
    )
    return CandidateResult(
        candidates=candidates,
        greedy_scores=greedy_scores,
        iterations=iterations,
        max_pops=max_pops,
        min_pops=min_pops,
        skipped_min=skipped_min,
        used_fallback=used_fallback,
    )
