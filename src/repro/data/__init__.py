"""Synthetic dataset substrates for the three paper workloads.

* :mod:`repro.data.babi` — bAbI-style stories (MemN2N workload)
* :mod:`repro.data.wikimovies` — movie knowledge-base QA (KV-MemN2N)
* :mod:`repro.data.squad` — extractive span QA (BERT workload)
"""

from repro.data.babi import BabiConfig, BabiDataset, Story, generate_babi
from repro.data.squad import SquadConfig, SquadDataset, SquadExample, generate_squad
from repro.data.vocab import PAD, UNK, Vocab
from repro.data.wikimovies import (
    Fact,
    Movie,
    MovieKb,
    MovieKbConfig,
    MovieQuestion,
)

__all__ = [
    "BabiConfig",
    "BabiDataset",
    "Story",
    "generate_babi",
    "SquadConfig",
    "SquadDataset",
    "SquadExample",
    "generate_squad",
    "PAD",
    "UNK",
    "Vocab",
    "Fact",
    "Movie",
    "MovieKb",
    "MovieKbConfig",
    "MovieQuestion",
]
