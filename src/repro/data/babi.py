"""Synthetic bAbI-style question answering (Weston et al. [15]).

The original bAbI corpus is itself template-generated: simulated actors
move between locations and templated English sentences describe the world.
This module reimplements that simulation for the two task families the
MemN2N evaluation leans on:

* **single supporting fact** (bAbI task 1): "Where is Mary?" — answered by
  the most recent movement sentence of the queried actor.
* **two supporting facts** (bAbI task 2): "Where is the football?" —
  requires chaining the take/drop events of an object with the carrier's
  movements.

Every story records its supporting-fact sentence indices, which the
selection-quality metrics (Figure 13b) use as the ground-truth top rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.vocab import Vocab
from repro.errors import ConfigError

__all__ = ["BabiConfig", "Story", "BabiDataset", "generate_babi"]

_ACTORS = [
    "mary", "john", "sandra", "daniel", "bill", "fred",
    "julie", "emily", "hannah", "jason",
]
_LOCATIONS = [
    "kitchen", "garden", "hallway", "bathroom", "bedroom",
    "office", "park", "school", "cinema", "cellar",
]
_OBJECTS = ["football", "apple", "milk", "book", "lamp", "key"]
_MOVE_VERBS = ["moved", "went", "journeyed", "travelled"]


@dataclass(frozen=True)
class BabiConfig:
    """Generator parameters.

    The paper reports an average memory of 20 statements and a maximum of
    50 for bAbI; the defaults reproduce that range.

    Attributes
    ----------
    num_actors / num_locations / num_objects:
        Entity pool sizes (capped by the built-in token lists).
    min_sentences / max_sentences:
        Story length range (the attention ``n`` for a query).
    task:
        ``"single"`` for one supporting fact, ``"two"`` for the
        object-tracking task with two supporting facts.
    """

    num_actors: int = 5
    num_locations: int = 6
    num_objects: int = 3
    min_sentences: int = 8
    max_sentences: int = 50
    task: str = "single"

    def __post_init__(self) -> None:
        if not 2 <= self.num_actors <= len(_ACTORS):
            raise ConfigError(f"num_actors must be in [2, {len(_ACTORS)}]")
        if not 2 <= self.num_locations <= len(_LOCATIONS):
            raise ConfigError(f"num_locations must be in [2, {len(_LOCATIONS)}]")
        if not 1 <= self.num_objects <= len(_OBJECTS):
            raise ConfigError(f"num_objects must be in [1, {len(_OBJECTS)}]")
        if self.min_sentences < 2 or self.max_sentences < self.min_sentences:
            raise ConfigError("need 2 <= min_sentences <= max_sentences")
        if self.task not in ("single", "two"):
            raise ConfigError(f"task must be 'single' or 'two', got {self.task!r}")


@dataclass
class Story:
    """One generated example.

    Attributes
    ----------
    sentences:
        Tokenized statements, oldest first (the attention memory rows).
    question / answer:
        Tokenized question and the single-word answer.
    support:
        Indices of the supporting sentences (ground-truth relevant rows).
    """

    sentences: list[list[str]]
    question: list[str]
    answer: str
    support: list[int]

    @property
    def num_sentences(self) -> int:
        return len(self.sentences)


def _simulate_single(rng: np.random.Generator, config: BabiConfig) -> Story:
    actors = _ACTORS[: config.num_actors]
    locations = _LOCATIONS[: config.num_locations]
    length = int(rng.integers(config.min_sentences, config.max_sentences + 1))
    sentences: list[list[str]] = []
    location_of: dict[str, tuple[str, int]] = {}
    for idx in range(length):
        actor = actors[rng.integers(len(actors))]
        location = locations[rng.integers(len(locations))]
        verb = _MOVE_VERBS[rng.integers(len(_MOVE_VERBS))]
        sentences.append([actor, verb, "to", "the", location])
        location_of[actor] = (location, idx)
    # Ask about an actor that actually appears.
    known = sorted(location_of)
    actor = known[rng.integers(len(known))]
    location, support_idx = location_of[actor]
    return Story(
        sentences=sentences,
        question=["where", "is", actor],
        answer=location,
        support=[support_idx],
    )


def _simulate_two(rng: np.random.Generator, config: BabiConfig) -> Story:
    actors = _ACTORS[: config.num_actors]
    locations = _LOCATIONS[: config.num_locations]
    objects = _OBJECTS[: config.num_objects]
    length = int(rng.integers(config.min_sentences, config.max_sentences + 1))
    sentences: list[list[str]] = []
    actor_loc: dict[str, tuple[str, int]] = {}
    holder: dict[str, tuple[str, int] | None] = {o: None for o in objects}

    for idx in range(length):
        actor = actors[rng.integers(len(actors))]
        roll = rng.random()
        if roll < 0.6 or actor not in actor_loc:
            location = locations[rng.integers(len(locations))]
            verb = _MOVE_VERBS[rng.integers(len(_MOVE_VERBS))]
            sentences.append([actor, verb, "to", "the", location])
            actor_loc[actor] = (location, idx)
        elif roll < 0.85:
            obj = objects[rng.integers(len(objects))]
            sentences.append([actor, "took", "the", obj])
            holder[obj] = (actor, idx)
        else:
            held = [o for o, h in holder.items() if h is not None and h[0] == actor]
            if held:
                obj = held[rng.integers(len(held))]
                sentences.append([actor, "dropped", "the", obj])
                holder[obj] = None
            else:
                location = locations[rng.integers(len(locations))]
                sentences.append([actor, "went", "to", "the", location])
                actor_loc[actor] = (location, idx)

    # Ask about an object currently held by an actor with a known location.
    answerable = [
        (obj, actor, take_idx)
        for obj, entry in holder.items()
        if entry is not None
        for actor, take_idx in [entry]
        if actor in actor_loc
    ]
    if not answerable:
        # Rare when stories are short: fall back to the single-fact task so
        # the generator always yields a valid story.
        return _simulate_single(rng, config)
    obj, actor, take_idx = answerable[rng.integers(len(answerable))]
    location, move_idx = actor_loc[actor]
    return Story(
        sentences=sentences,
        question=["where", "is", "the", obj],
        answer=location,
        support=sorted({take_idx, move_idx}),
    )


def generate_babi(
    num_stories: int,
    config: BabiConfig | None = None,
    seed: int = 0,
) -> list[Story]:
    """Generate ``num_stories`` independent stories."""
    config = config or BabiConfig()
    rng = np.random.default_rng(seed)
    simulate = _simulate_single if config.task == "single" else _simulate_two
    return [simulate(rng, config) for _ in range(num_stories)]


@dataclass
class BabiDataset:
    """Stories plus the vocabulary and answer candidates.

    Attributes
    ----------
    answer_ids:
        Vocabulary ids of the possible answers (the location words); the
        MemN2N classifier predicts over the full vocabulary, and accuracy
        compares argmax-restricted-to-vocab with the gold id.
    """

    stories: list[Story]
    vocab: Vocab
    answer_ids: list[int] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        num_train: int,
        num_test: int,
        config: BabiConfig | None = None,
        seed: int = 0,
    ) -> tuple["BabiDataset", "BabiDataset"]:
        """Generate a train/test split sharing one vocabulary."""
        config = config or BabiConfig()
        train_stories = generate_babi(num_train, config, seed=seed)
        test_stories = generate_babi(num_test, config, seed=seed + 1)
        tokens: list[str] = []
        for story in train_stories + test_stories:
            for sentence in story.sentences:
                tokens.extend(sentence)
            tokens.extend(story.question)
            tokens.append(story.answer)
        vocab = Vocab(sorted(set(tokens)))
        answers = sorted({s.answer for s in train_stories + test_stories})
        answer_ids = [vocab.encode_one(a) for a in answers]
        return (
            cls(train_stories, vocab, answer_ids),
            cls(test_stories, vocab, answer_ids),
        )

    def __len__(self) -> int:
        return len(self.stories)

    def mean_sentences(self) -> float:
        if not self.stories:
            return 0.0
        return sum(s.num_sentences for s in self.stories) / len(self.stories)
