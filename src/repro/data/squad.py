"""Synthetic SQuAD-style extractive span QA (Rajpurkar et al. [20]).

BERT answers SQuAD by pointing at a start and an end token inside the
passage.  This generator builds passages of templated fact sentences
("the red ball is in the north tower .") interleaved with filler, and
questions asking for the location of one subject; the answer is the
two-token place span inside the passage.  Span F1 — the paper's SQuAD
metric — is computed over token overlap exactly as in the SQuAD
evaluation script.

Passage lengths are configurable; the paper's BERT workload uses n = 320
tokens (passage + question), which the benchmarks approximate subject to
pure-Python training budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.vocab import Vocab
from repro.errors import ConfigError

__all__ = ["SquadConfig", "SquadExample", "SquadDataset", "generate_squad"]

_ADJECTIVES = [
    "red", "blue", "green", "golden", "silver", "wooden",
    "ancient", "tiny", "giant", "purple", "rusty", "shiny",
]
_NOUNS = [
    "ball", "sword", "crown", "lantern", "statue", "mirror",
    "scroll", "chalice", "compass", "amulet", "banner", "drum",
]
_PLACE_ADJ = [
    "north", "south", "east", "west", "upper", "lower",
    "inner", "outer", "grand", "old",
]
_PLACE_NOUN = [
    "tower", "garden", "cellar", "library", "courtyard",
    "chapel", "armory", "kitchen", "stable", "gallery",
]
_FILLERS = [
    ["the", "weather", "was", "calm", "that", "day", "."],
    ["many", "visitors", "walked", "the", "halls", "."],
    ["a", "bell", "rang", "in", "the", "distance", "."],
    ["the", "guards", "changed", "at", "noon", "."],
    ["dust", "settled", "over", "the", "floor", "."],
]


@dataclass(frozen=True)
class SquadConfig:
    """Generator parameters.

    Attributes
    ----------
    num_facts:
        Fact sentences per passage (one is queried; the rest distract).
    filler_per_fact:
        Filler sentences inserted per fact to stretch the passage.
    """

    num_facts: int = 5
    filler_per_fact: float = 0.5

    def __post_init__(self) -> None:
        if self.num_facts < 1:
            raise ConfigError("num_facts must be >= 1")
        if self.filler_per_fact < 0:
            raise ConfigError("filler_per_fact must be >= 0")


@dataclass
class SquadExample:
    """One passage/question/answer triple.

    Attributes
    ----------
    passage:
        Token list.
    question:
        Token list ("where is the <adj> <noun> ?").
    answer_span:
        ``(start, end)`` inclusive token indices of the answer in the
        passage (the two-token place name).
    answer_tokens:
        The gold answer tokens, for F1 computation.
    """

    passage: list[str]
    question: list[str]
    answer_span: tuple[int, int]
    answer_tokens: list[str]

    @property
    def passage_length(self) -> int:
        return len(self.passage)


def _make_example(rng: np.random.Generator, config: SquadConfig) -> SquadExample:
    if config.num_facts > min(len(_ADJECTIVES), len(_NOUNS)):
        raise ConfigError(
            f"num_facts must be <= {min(len(_ADJECTIVES), len(_NOUNS))}"
        )
    # Subjects within one passage share no tokens, as in SQuAD passages
    # where distinct entities rarely collide; this keeps the task about
    # matching rather than disambiguation.
    adjectives = rng.choice(len(_ADJECTIVES), size=config.num_facts, replace=False)
    nouns = rng.choice(len(_NOUNS), size=config.num_facts, replace=False)
    subjects = [
        (_ADJECTIVES[a], _NOUNS[n]) for a, n in zip(adjectives, nouns)
    ]
    places = [
        (
            _PLACE_ADJ[rng.integers(len(_PLACE_ADJ))],
            _PLACE_NOUN[rng.integers(len(_PLACE_NOUN))],
        )
        for _ in subjects
    ]

    passage: list[str] = []
    spans: list[tuple[int, int]] = []
    for subject, place in zip(subjects, places):
        if rng.random() < config.filler_per_fact:
            passage.extend(_FILLERS[rng.integers(len(_FILLERS))])
        sentence = ["the", subject[0], subject[1], "is", "in", "the"]
        start = len(passage) + len(sentence)
        passage.extend(sentence)
        passage.extend(place)
        spans.append((start, start + 1))
        passage.append(".")

    target = int(rng.integers(len(subjects)))
    subject = subjects[target]
    question = ["where", "is", "the", subject[0], subject[1], "?"]
    span = spans[target]
    return SquadExample(
        passage=passage,
        question=question,
        answer_span=span,
        answer_tokens=passage[span[0] : span[1] + 1],
    )


def generate_squad(
    num_examples: int,
    config: SquadConfig | None = None,
    seed: int = 0,
) -> list[SquadExample]:
    """Generate independent span-QA examples."""
    config = config or SquadConfig()
    rng = np.random.default_rng(seed)
    return [_make_example(rng, config) for _ in range(num_examples)]


@dataclass
class SquadDataset:
    """Examples plus a shared vocabulary."""

    examples: list[SquadExample]
    vocab: Vocab

    @classmethod
    def build(
        cls,
        num_train: int,
        num_test: int,
        config: SquadConfig | None = None,
        seed: int = 0,
    ) -> tuple["SquadDataset", "SquadDataset"]:
        config = config or SquadConfig()
        train = generate_squad(num_train, config, seed=seed)
        test = generate_squad(num_test, config, seed=seed + 1)
        tokens: set[str] = set()
        for example in train + test:
            tokens.update(example.passage)
            tokens.update(example.question)
        vocab = Vocab(sorted(tokens))
        return cls(train, vocab), cls(test, vocab)

    def __len__(self) -> int:
        return len(self.examples)

    def max_sequence_length(self) -> int:
        """Longest passage+question pair, for position-embedding sizing."""
        if not self.examples:
            return 0
        return max(len(e.passage) + len(e.question) for e in self.examples)
