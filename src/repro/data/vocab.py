"""Vocabulary mapping between tokens and integer ids.

Id 0 is reserved for padding (and the :class:`repro.nn.layers.Embedding`
table keeps row 0 at zero), id 1 for unknown tokens.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["Vocab", "PAD", "UNK"]

PAD = "<pad>"
UNK = "<unk>"


class Vocab:
    """A frozen token <-> id mapping."""

    def __init__(self, tokens: Iterable[str]):
        self._token_to_id: dict[str, int] = {PAD: 0, UNK: 1}
        for token in tokens:
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._token_to_id)
        self._id_to_token = {i: t for t, i in self._token_to_id.items()}

    def __len__(self) -> int:
        return len(self._token_to_id)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def encode(self, tokens: Iterable[str]) -> list[int]:
        unk = self._token_to_id[UNK]
        return [self._token_to_id.get(t, unk) for t in tokens]

    def encode_one(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self._id_to_token.get(int(i), UNK) for i in ids]

    def decode_one(self, token_id: int) -> str:
        return self._id_to_token.get(int(token_id), UNK)

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def tokens(self) -> list[str]:
        """All tokens in id order (including the specials)."""
        return [self._id_to_token[i] for i in range(len(self))]
