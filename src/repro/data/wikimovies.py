"""Synthetic WikiMovies-style knowledge-base QA (Miller et al. [19]).

WikiMovies pairs template questions about movies with a knowledge base of
(subject, relation, object) facts.  The KV-MemN2N model stores each fact
as a key (subject + relation tokens) and a value (the object entity), and
answers by attending over the keys.  This generator builds an equivalent
synthetic universe: movies with directors, writers, casts, genres, and
release years, plus forward questions over five relations.  Multi-answer
questions ("who starred in ...") make Mean Average Precision — the
paper's metric for this workload — meaningful.

For each question the memory holds the facts of the subject movie plus
those of sampled distractor movies; the paper reports an average memory of
186 entries, reproduced by the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.vocab import Vocab
from repro.errors import ConfigError

__all__ = ["MovieKbConfig", "Fact", "Movie", "MovieQuestion", "MovieKb"]

_TITLE_ADJECTIVES = [
    "dark", "silent", "crimson", "golden", "hidden", "broken",
    "electric", "frozen", "burning", "lost", "iron", "velvet",
]
_TITLE_NOUNS = [
    "castle", "river", "empire", "garden", "shadow", "horizon",
    "engine", "harbor", "signal", "meadow", "circus", "lantern",
]
_NAME_FIRST = [
    "alice", "marco", "yuki", "priya", "omar", "lena",
    "carlos", "ingrid", "tomas", "amara", "felix", "nadia",
]
_NAME_LAST = [
    "reyes", "tanaka", "muller", "okafor", "silva", "novak",
    "haddad", "larsen", "moreau", "kimura", "petrov", "banda",
]
_GENRES = [
    "drama", "comedy", "thriller", "horror", "romance",
    "documentary", "animation", "western",
]
_RELATIONS = (
    "directed_by",
    "written_by",
    "starred_actors",
    "has_genre",
    "release_year",
)
_QUESTION_TEMPLATES = {
    "directed_by": ["who", "directed"],
    "written_by": ["who", "wrote"],
    "starred_actors": ["who", "starred", "in"],
    "has_genre": ["what", "genre", "is"],
    "release_year": ["when", "was"],
}


@dataclass(frozen=True)
class MovieKbConfig:
    """Knowledge-base generator parameters.

    With the defaults each movie contributes ~7 facts and each question's
    memory covers ``movies_per_question = 26`` movies, landing near the
    paper's average of 186 memory slots.
    """

    num_movies: int = 120
    num_people: int = 80
    actors_per_movie: int = 3
    genres_per_movie: int = 1
    year_range: tuple[int, int] = (1960, 2019)
    movies_per_question: int = 26

    def __post_init__(self) -> None:
        if self.num_movies < 2:
            raise ConfigError("need at least 2 movies")
        if self.num_people < 4:
            raise ConfigError("need at least 4 people")
        if self.actors_per_movie < 1:
            raise ConfigError("actors_per_movie must be >= 1")
        if self.movies_per_question < 1:
            raise ConfigError("movies_per_question must be >= 1")
        if self.movies_per_question > self.num_movies:
            raise ConfigError("movies_per_question cannot exceed num_movies")


@dataclass(frozen=True)
class Fact:
    """One KB entry: ``key`` = subject + relation tokens, ``value`` = object."""

    movie_index: int
    key_tokens: tuple[str, ...]
    value_token: str
    relation: str


@dataclass
class Movie:
    """A synthetic movie and its attribute facts."""

    index: int
    title_tokens: tuple[str, ...]
    director: str
    writer: str
    actors: tuple[str, ...]
    genres: tuple[str, ...]
    year: str

    def facts(self) -> list[Fact]:
        entries: list[Fact] = []

        def add(relation: str, value: str) -> None:
            entries.append(
                Fact(
                    movie_index=self.index,
                    key_tokens=self.title_tokens + (relation,),
                    value_token=value,
                    relation=relation,
                )
            )

        add("directed_by", self.director)
        add("written_by", self.writer)
        for actor in self.actors:
            add("starred_actors", actor)
        for genre in self.genres:
            add("has_genre", genre)
        add("release_year", self.year)
        return entries


@dataclass
class MovieQuestion:
    """A question, its gold answers, and its memory of candidate facts.

    Attributes
    ----------
    memory:
        The facts visible to the model for this question (subject movie's
        facts plus distractors), shuffled.
    gold_memory_rows:
        Indices into ``memory`` of the facts that answer the question —
        the ground-truth relevant rows for the top-k retention metric.
    """

    question_tokens: tuple[str, ...]
    relation: str
    answers: frozenset[str]
    memory: list[Fact]
    gold_memory_rows: tuple[int, ...]

    @property
    def memory_size(self) -> int:
        return len(self.memory)


class MovieKb:
    """The generated universe: movies, facts, entities, and questions."""

    def __init__(self, config: MovieKbConfig | None = None, seed: int = 0):
        self.config = config or MovieKbConfig()
        rng = np.random.default_rng(seed)
        self._rng = rng
        self.people = self._make_people(rng)
        self.movies = self._make_movies(rng)
        self.facts_by_movie = [m.facts() for m in self.movies]
        self.entities = self._collect_entities()
        self.vocab = self._build_vocab()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _make_people(self, rng: np.random.Generator) -> list[str]:
        people: list[str] = []
        seen: set[str] = set()
        while len(people) < self.config.num_people:
            name = (
                f"{_NAME_FIRST[rng.integers(len(_NAME_FIRST))]}_"
                f"{_NAME_LAST[rng.integers(len(_NAME_LAST))]}"
            )
            if name in seen:
                name = f"{name}_{len(people)}"
            seen.add(name)
            people.append(name)
        return people

    def _make_movies(self, rng: np.random.Generator) -> list[Movie]:
        movies: list[Movie] = []
        titles: set[tuple[str, ...]] = set()
        lo, hi = self.config.year_range
        for index in range(self.config.num_movies):
            title = (
                _TITLE_ADJECTIVES[rng.integers(len(_TITLE_ADJECTIVES))],
                _TITLE_NOUNS[rng.integers(len(_TITLE_NOUNS))],
            )
            if title in titles:
                title = title + (f"{index}",)
            titles.add(title)
            cast = rng.choice(
                len(self.people),
                size=min(self.config.actors_per_movie + 2, len(self.people)),
                replace=False,
            )
            director = self.people[cast[0]]
            writer = self.people[cast[1]]
            actors = tuple(
                self.people[i] for i in cast[2 : 2 + self.config.actors_per_movie]
            )
            genres = tuple(
                _GENRES[i]
                for i in rng.choice(
                    len(_GENRES), size=self.config.genres_per_movie, replace=False
                )
            )
            year = str(int(rng.integers(lo, hi + 1)))
            movies.append(
                Movie(
                    index=index,
                    title_tokens=title,
                    director=director,
                    writer=writer,
                    actors=actors,
                    genres=genres,
                    year=year,
                )
            )
        return movies

    def _collect_entities(self) -> list[str]:
        entities: set[str] = set(self.people) | set(_GENRES)
        for movie in self.movies:
            entities.add(movie.year)
        return sorted(entities)

    def _build_vocab(self) -> Vocab:
        tokens: set[str] = set(self.entities) | set(_RELATIONS)
        for movie in self.movies:
            tokens.update(movie.title_tokens)
        for template in _QUESTION_TEMPLATES.values():
            tokens.update(template)
        return Vocab(sorted(tokens))

    # ------------------------------------------------------------------
    # question generation
    # ------------------------------------------------------------------
    def generate_questions(
        self, num_questions: int, seed: int = 0
    ) -> list[MovieQuestion]:
        """Template questions with per-question shuffled memories."""
        rng = np.random.default_rng(seed)
        questions: list[MovieQuestion] = []
        for _ in range(num_questions):
            movie = self.movies[rng.integers(len(self.movies))]
            relation = _RELATIONS[rng.integers(len(_RELATIONS))]
            template = _QUESTION_TEMPLATES[relation]
            question_tokens = tuple(template) + movie.title_tokens
            answers = self._answers_for(movie, relation)
            memory, gold_rows = self._build_memory(movie, relation, rng)
            questions.append(
                MovieQuestion(
                    question_tokens=question_tokens,
                    relation=relation,
                    answers=frozenset(answers),
                    memory=memory,
                    gold_memory_rows=tuple(gold_rows),
                )
            )
        return questions

    @staticmethod
    def _answers_for(movie: Movie, relation: str) -> set[str]:
        if relation == "directed_by":
            return {movie.director}
        if relation == "written_by":
            return {movie.writer}
        if relation == "starred_actors":
            return set(movie.actors)
        if relation == "has_genre":
            return set(movie.genres)
        return {movie.year}

    def _build_memory(
        self, movie: Movie, relation: str, rng: np.random.Generator
    ) -> tuple[list[Fact], list[int]]:
        distractor_count = self.config.movies_per_question - 1
        others = [i for i in range(len(self.movies)) if i != movie.index]
        chosen = rng.choice(len(others), size=distractor_count, replace=False)
        memory: list[Fact] = list(self.facts_by_movie[movie.index])
        for pick in chosen:
            memory.extend(self.facts_by_movie[others[pick]])
        order = rng.permutation(len(memory))
        memory = [memory[i] for i in order]
        gold_rows = [
            row
            for row, fact in enumerate(memory)
            if fact.movie_index == movie.index and fact.relation == relation
        ]
        return memory, gold_rows

    def mean_memory_size(self, questions: list[MovieQuestion]) -> float:
        if not questions:
            return 0.0
        return sum(q.memory_size for q in questions) / len(questions)
