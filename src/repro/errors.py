"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ShapeError(ReproError):
    """An input array has an incompatible shape."""


class ConfigError(ReproError):
    """A configuration object holds inconsistent or out-of-range values."""


class CapacityError(ReproError):
    """A hardware buffer was asked to hold more data than it can fit."""


class QuantizationError(ReproError):
    """A value cannot be represented in the requested fixed-point format."""
