"""Experiment drivers, one per paper table/figure.

==========  ==========================================================
id          paper artifact
==========  ==========================================================
``fig03``   Figure 3 — attention share of inference time
``fig11``   Figure 11 — candidate-selection sweep over M
``fig12``   Figure 12 — post-scoring sweep over T
``fig13``   Figure 13 — combined conservative/aggressive schemes
``quant``   Section VI-B — fixed-point quantization impact
``fig14``   Figure 14 — throughput/latency across platforms
``fig15a``  Figure 15a — energy efficiency across platforms
``fig15b``  Figure 15b — per-module energy breakdown
``table1``  Table I — area and power database
==========  ==========================================================

Run them all with ``python -m repro.experiments.runner``.
"""

from repro.experiments.cache import WorkloadCache
from repro.experiments.perf_common import PerformanceStudy
from repro.experiments.results import ExperimentResult

__all__ = ["WorkloadCache", "PerformanceStudy", "ExperimentResult"]
