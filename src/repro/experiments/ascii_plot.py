"""ASCII bar charts for the figure experiments.

The paper's evaluation artifacts are bar charts; this module renders an
:class:`~repro.experiments.results.ExperimentResult` column as grouped
horizontal bars so the regenerated figures can be eyeballed in a terminal
(``python -m repro.experiments.runner --plot``).
"""

from __future__ import annotations

import math

from repro.experiments.results import ExperimentResult, format_value

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """A unicode bar of ``value`` against ``scale``, ``width`` cells max."""
    if scale <= 0 or value <= 0:
        return ""
    cells = max(0.0, min(1.0, value / scale)) * width
    whole = int(cells)
    fraction = cells - whole
    partial = _PART[round(fraction * 8)] if whole < width else ""
    return _FULL * whole + partial


def bar_chart(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
    log_scale: bool = False,
) -> str:
    """Render one series of horizontal bars.

    ``log_scale`` plots ``log10`` of positive values (used for the
    throughput/efficiency figures whose axes span orders of magnitude).
    """
    if len(labels) != len(values):
        raise ValueError(
            f"length mismatch: {len(labels)} labels vs {len(values)} values"
        )
    plotted = [
        (math.log10(v) if log_scale and v > 0 else 0.0) if log_scale else v
        for v in values
    ]
    scale = max((p for p in plotted if p > 0), default=1.0)
    label_width = max((len(text) for text in labels), default=0)
    lines = []
    if title:
        lines.append(title + (" (log10)" if log_scale else ""))
    for label, raw, plot in zip(labels, values, plotted):
        bar = _bar(plot, scale, width)
        lines.append(f"  {label:<{label_width}} |{bar} {format_value(raw)}")
    return "\n".join(lines)


def grouped_bar_chart(
    result: ExperimentResult,
    value_column: str,
    group_column: str = "workload",
    label_column: str = "config",
    width: int = 36,
    log_scale: bool = False,
) -> str:
    """Render one result column as per-group bar charts.

    Mirrors the paper's figure layout: one group of bars per workload,
    one bar per configuration.
    """
    groups: dict[str, tuple[list[str], list[float]]] = {}
    for row in result.rows:
        group = str(row.get(group_column, ""))
        labels, values = groups.setdefault(group, ([], []))
        value = row.get(value_column)
        if isinstance(value, (int, float)) and value is not None:
            labels.append(str(row.get(label_column, "")))
            values.append(float(value))
    sections = [f"-- {result.experiment}: {value_column} --"]
    for group, (labels, values) in groups.items():
        sections.append(
            bar_chart(labels, values, title=group, width=width, log_scale=log_scale)
        )
    return "\n".join(sections)
