"""Process-level cache of prepared (trained) workloads.

Training the three models is the expensive part of every accuracy
experiment; the cache trains each (name, scale, seed) combination once and
shares it across the fig03/fig11/fig12/fig13/quantization drivers, which
is also how the paper's methodology works (one trained model, many
approximation configurations).
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.registry import make_workload

__all__ = ["WorkloadCache"]


class WorkloadCache:
    """Lazily trains and memoizes workloads."""

    def __init__(self, scale: str = "small", seed: int = 0):
        self.scale = scale
        self.seed = seed
        self._workloads: dict[str, Workload] = {}

    def get(self, name: str) -> Workload:
        """The prepared workload for ``name``, training it on first use."""
        if name not in self._workloads:
            workload = make_workload(name, scale=self.scale, seed=self.seed)
            workload.prepare()
            self._workloads[name] = workload
        return self._workloads[name]

    def loaded(self) -> list[str]:
        return sorted(self._workloads)
