"""Figure 3: portion of inference time spent in the attention mechanism.

The paper profiles its three workloads on a Xeon CPU and reports the
attention share of (a) the whole inference time and (b) the
query-response time only.  We profile the same decomposition on our NumPy
substrate: comprehension (memory construction + key preprocessing) versus
query response, with the attention calls timed inside each.
"""

from __future__ import annotations

from repro.core.backends import ExactBackend, SerialBackend
from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.results import ExperimentResult

__all__ = ["run"]


def run(
    cache: WorkloadCache | None = None,
    limit: int | None = None,
) -> ExperimentResult:
    """Profile all three workloads with exact attention."""
    cache = cache or WorkloadCache()
    result = ExperimentResult(
        experiment="fig03",
        title="Portion of time accountable for attention mechanism",
        columns=[
            "workload",
            "attention % (whole inference)",
            "attention % (query response)",
            "paper floor (whole)",
            "paper floor (response)",
        ],
        notes=[
            "Profiled on the NumPy substrate standing in for the paper's "
            "Xeon measurements; BERT integrates comprehension into the "
            "response so both fractions coincide.",
        ],
    )
    for name in paper_data.WORKLOADS:
        workload = cache.get(name)
        # Profile the query-at-a-time execution the accelerator services
        # (one attention search per arriving query), not the batched
        # NumPy fast path the software models default to.
        eval_result = workload.evaluate(SerialBackend(ExactBackend()), limit=limit)
        response_floor = (
            paper_data.FIG3_MIN_ATTENTION_FRACTION_RESPONSE
            if name != "BERT"
            else paper_data.FIG3_MIN_ATTENTION_FRACTION_TOTAL
        )
        result.add_row(
            **{
                "workload": name,
                "attention % (whole inference)": 100.0
                * eval_result.attention_fraction_total,
                "attention % (query response)": 100.0
                * eval_result.attention_fraction_response,
                "paper floor (whole)": 100.0
                * paper_data.FIG3_MIN_ATTENTION_FRACTION_TOTAL,
                "paper floor (response)": 100.0 * response_floor,
            }
        )
    return result
