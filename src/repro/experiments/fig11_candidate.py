"""Figure 11: impact of candidate selection across iteration counts.

Sweeps ``M`` over the paper's fractions of ``n`` (with post-scoring
disabled) and reports, per workload:

* panel (a) — the end-to-end metric;
* panel (b) — the normalized number of selected candidates ``C/n``.
"""

from __future__ import annotations

from repro.core.backends import ApproximateBackend, ExactBackend
from repro.core.config import ApproximationConfig
from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.results import ExperimentResult

__all__ = ["run", "backend_for_fraction"]


def backend_for_fraction(fraction: float | None) -> ApproximateBackend | ExactBackend:
    """The backend for one sweep point (``None`` = exact baseline)."""
    if fraction is None:
        return ExactBackend()
    config = ApproximationConfig(
        m_fraction=fraction,
        t_percent=None,  # isolate the candidate-selection stage
    )
    return ApproximateBackend(config)


def run(
    cache: WorkloadCache | None = None,
    limit: int | None = None,
) -> ExperimentResult:
    """Evaluate every workload at every ``M`` sweep point."""
    cache = cache or WorkloadCache()
    result = ExperimentResult(
        experiment="fig11",
        title="Impact of candidate selection on accuracy and candidate count",
        columns=[
            "workload",
            "config",
            "metric",
            "paper metric",
            "candidates/n",
        ],
        notes=[
            "Post-scoring disabled (T=None) to isolate candidate selection, "
            "matching Section VI-B.",
            "Metrics are measured on retrained synthetic-substrate models; "
            "compare trends (monotone degradation as M shrinks), not "
            "absolute values.",
        ],
    )
    for name in paper_data.WORKLOADS:
        workload = cache.get(name)
        for label, fraction in zip(
            paper_data.FIG11_M_LABELS, paper_data.FIG11_M_FRACTIONS
        ):
            backend = backend_for_fraction(fraction)
            eval_result = workload.evaluate(backend, limit=limit)
            stats = eval_result.stats
            result.add_row(
                workload=name,
                config=label,
                metric=eval_result.metric,
                **{
                    "paper metric": paper_data.FIG11_ACCURACY[label][name],
                    "candidates/n": stats.candidate_fraction if stats else 1.0,
                },
            )
    return result
