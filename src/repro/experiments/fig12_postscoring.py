"""Figure 12: impact of post-scoring selection across thresholds.

Sweeps ``T`` over the paper's values (with candidate selection disabled)
and reports the end-to-end metric and the normalized number of selected
entries ``K/n``.
"""

from __future__ import annotations

from repro.core.backends import ApproximateBackend, ExactBackend
from repro.core.config import ApproximationConfig
from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.results import ExperimentResult

__all__ = ["run", "backend_for_threshold"]


def backend_for_threshold(
    t_percent: float | None,
) -> ApproximateBackend | ExactBackend:
    """The backend for one sweep point (``None`` = exact baseline)."""
    if t_percent is None:
        return ExactBackend()
    config = ApproximationConfig(
        m_fraction=None,
        m_absolute=None,
        candidate_selection=False,  # isolate the post-scoring stage
        t_percent=t_percent,
    )
    return ApproximateBackend(config)


def run(
    cache: WorkloadCache | None = None,
    limit: int | None = None,
) -> ExperimentResult:
    """Evaluate every workload at every ``T`` sweep point."""
    cache = cache or WorkloadCache()
    result = ExperimentResult(
        experiment="fig12",
        title="Impact of post-scoring selection on accuracy and entry count",
        columns=[
            "workload",
            "config",
            "metric",
            "paper metric",
            "kept/n",
        ],
        notes=[
            "Candidate selection disabled to isolate post-scoring, matching "
            "Section VI-B.",
            "Higher T keeps fewer entries; BERT should degrade first "
            "(paper: F1 drops from .888 to .841 at T=20%).",
        ],
    )
    for name in paper_data.WORKLOADS:
        workload = cache.get(name)
        for label, t_percent in zip(
            paper_data.FIG12_T_LABELS, paper_data.FIG12_T_PERCENTS
        ):
            backend = backend_for_threshold(t_percent)
            eval_result = workload.evaluate(backend, limit=limit)
            stats = eval_result.stats
            result.add_row(
                workload=name,
                config=label,
                metric=eval_result.metric,
                **{
                    "paper metric": paper_data.FIG12_ACCURACY[label][name],
                    "kept/n": stats.kept_fraction if stats else 1.0,
                },
            )
    return result
