"""Figure 13: the combined approximation schemes.

Evaluates the paper's two named operating points — conservative
(``M = n/2``, ``T = 5%``) and aggressive (``M = n/8``, ``T = 10%``) —
reporting the end-to-end metric (panel a) and the portion of the true
top-k rows (top-2 for bAbI, top-5 otherwise) that survive both selection
stages (panel b).
"""

from __future__ import annotations

from repro.core.backends import ApproximateBackend, ExactBackend
from repro.core.config import aggressive, conservative
from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.results import ExperimentResult

__all__ = ["run"]


def run(
    cache: WorkloadCache | None = None,
    limit: int | None = None,
) -> ExperimentResult:
    """Evaluate base / conservative / aggressive on every workload."""
    cache = cache or WorkloadCache()
    result = ExperimentResult(
        experiment="fig13",
        title="Impact of the combined approximation scheme",
        columns=[
            "workload",
            "config",
            "metric",
            "paper metric",
            "top-k retention",
            "candidates/n",
            "kept/n",
        ],
        notes=[
            "top-k retention uses k=2 for MemN2N (bAbI) and k=5 otherwise, "
            "as in Figure 13b.",
        ],
    )
    configs = {
        "base": None,
        "conservative": conservative(),
        "aggressive": aggressive(),
    }
    for name in paper_data.WORKLOADS:
        workload = cache.get(name)
        k = paper_data.FIG13_TOPK[name]
        for label, config in configs.items():
            if config is None:
                backend = ExactBackend()
            else:
                backend = ApproximateBackend(config, track_topk=k)
            eval_result = workload.evaluate(backend, limit=limit)
            stats = eval_result.stats
            result.add_row(
                workload=name,
                config=label,
                metric=eval_result.metric,
                **{
                    "paper metric": paper_data.FIG13_ACCURACY[label][name],
                    "top-k retention": stats.topk_retention if stats else 1.0,
                    "candidates/n": stats.candidate_fraction if stats else 1.0,
                    "kept/n": stats.kept_fraction if stats else 1.0,
                },
            )
    return result
