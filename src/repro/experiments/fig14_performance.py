"""Figure 14: attention throughput and latency across platforms.

Per workload, five platforms are compared: the Xeon CPU baseline, the
Titan V GPU baseline (BERT only — the other two workloads had no GPU
implementation), base A3, approximate A3 (conservative), and approximate
A3 (aggressive).  Throughput is normalized to the CPU (panel a) and
latency to base A3 (panel b); the ratios versus base A3 — the numbers the
paper prints above its bars — are reported as separate columns.

For BERT the amortized key-sort preprocessing time (measured on the GPU
model) is charged to the approximate configurations, exactly as in
Section VI-C "Preprocessing".
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.perf_common import PerformanceStudy
from repro.experiments.results import ExperimentResult

__all__ = ["run"]


def run(
    cache: WorkloadCache | None = None,
    study: PerformanceStudy | None = None,
) -> ExperimentResult:
    """Simulate all platforms at the paper's workload sizes."""
    study = study or PerformanceStudy(cache=cache)
    result = ExperimentResult(
        experiment="fig14",
        title="Normalized throughput and latency of an attention operation",
        columns=[
            "workload",
            "platform",
            "throughput (ops/s)",
            "throughput vs CPU",
            "throughput vs base A3",
            "paper vs base A3",
            "latency (us)",
            "latency vs base A3",
        ],
        notes=[
            "CPU/GPU numbers come from the analytic baseline models "
            "(published peak specs + calibrated efficiency/overhead); "
            "see repro.hardware.baselines.",
            "BERT approximate configurations include the amortized GPU "
            "key-sort preprocessing (Section VI-C).",
        ],
    )
    for name in paper_data.WORKLOADS:
        base = study.base_run(name)
        base_tp = base.throughput_qps()
        base_lat = base.mean_latency_seconds()
        cpu_time = study.cpu_time_per_op(name)
        cpu_tp = 1.0 / cpu_time

        platforms: list[tuple[str, float, float, float | None]] = [
            ("CPU", cpu_tp, cpu_time, None),
        ]
        gpu_time = study.gpu_time_per_op(name)
        if gpu_time is not None:
            platforms.append(("GPU", 1.0 / gpu_time, gpu_time, None))
        platforms.append(("Base A3", base_tp, base_lat, None))
        for label in ("conservative", "aggressive"):
            run_ = study.approx_run(name, label)
            preprocessing = study.preprocessing_per_query_s(name)
            time_per_query = 1.0 / run_.throughput_qps() + preprocessing
            latency = run_.mean_latency_seconds() + preprocessing
            platforms.append(
                (f"Approx A3 ({label})", 1.0 / time_per_query, latency, label)
            )

        for platform, throughput, latency, approx_label in platforms:
            paper_ratio = (
                paper_data.FIG14_THROUGHPUT_VS_BASE[approx_label][name]
                if approx_label
                else None
            )
            result.add_row(
                workload=name,
                platform=platform,
                **{
                    "throughput (ops/s)": throughput,
                    "throughput vs CPU": throughput / cpu_tp,
                    "throughput vs base A3": throughput / base_tp,
                    "paper vs base A3": paper_ratio,
                    "latency (us)": latency * 1e6,
                    "latency vs base A3": latency / base_lat,
                },
            )
    return result
