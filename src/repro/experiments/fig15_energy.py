"""Figure 15: energy efficiency and per-module energy breakdown.

Panel (a) compares attention operations per joule across CPU, GPU (BERT
only), base A3, and the two approximate configurations, normalized to the
CPU.  Panel (b) breaks each A3 configuration's energy into the five
module groups; the paper's qualitative finding — output computation
dominates base A3 while candidate selection dominates approximate A3 —
must reproduce.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.perf_common import PerformanceStudy
from repro.experiments.results import ExperimentResult
from repro.hardware.energy import BREAKDOWN_GROUPS, EnergyModel

__all__ = ["run", "run_breakdown"]


def run(
    cache: WorkloadCache | None = None,
    study: PerformanceStudy | None = None,
) -> ExperimentResult:
    """Figure 15a: normalized energy efficiency (operations/joule)."""
    study = study or PerformanceStudy(cache=cache)
    base_model = EnergyModel(include_approximation=False)
    approx_model = EnergyModel(include_approximation=True)
    result = ExperimentResult(
        experiment="fig15a",
        title="Normalized energy efficiency (attention operations per joule)",
        columns=[
            "workload",
            "platform",
            "ops/J",
            "vs CPU",
            "vs base A3",
            "paper vs base A3",
        ],
        notes=[
            "CPU/GPU energy assumes TDP draw, as in Section VI-D.",
        ],
    )
    for name in paper_data.WORKLOADS:
        base_report = base_model.energy(study.base_run(name))
        base_eff = base_report.ops_per_joule()
        cpu_energy = study.cpu_time_per_op(name) * study.cpu.spec.tdp_w
        cpu_eff = 1.0 / cpu_energy

        rows: list[tuple[str, float, str | None]] = [("CPU", cpu_eff, None)]
        gpu_time = study.gpu_time_per_op(name)
        if gpu_time is not None:
            rows.append(("GPU", 1.0 / (gpu_time * study.gpu.spec.tdp_w), None))
        rows.append(("Base A3", base_eff, None))
        for label in ("conservative", "aggressive"):
            report = approx_model.energy(study.approx_run(name, label))
            rows.append((f"Approx A3 ({label})", report.ops_per_joule(), label))

        for platform, efficiency, approx_label in rows:
            paper_ratio = (
                paper_data.FIG15_EFFICIENCY_VS_BASE[approx_label][name]
                if approx_label
                else None
            )
            result.add_row(
                workload=name,
                platform=platform,
                **{
                    "ops/J": efficiency,
                    "vs CPU": efficiency / cpu_eff,
                    "vs base A3": efficiency / base_eff,
                    "paper vs base A3": paper_ratio,
                },
            )
    return result


def run_breakdown(
    cache: WorkloadCache | None = None,
    study: PerformanceStudy | None = None,
) -> ExperimentResult:
    """Figure 15b: energy fractions by module group."""
    study = study or PerformanceStudy(cache=cache)
    base_model = EnergyModel(include_approximation=False)
    approx_model = EnergyModel(include_approximation=True)
    group_names = list(BREAKDOWN_GROUPS)
    result = ExperimentResult(
        experiment="fig15b",
        title="Energy breakdown by module group (fractions of total)",
        columns=["workload", "config"] + group_names,
        notes=[
            "Base A3 has no candidate-selection/post-scoring modules, so "
            "their fractions are zero there by construction.",
        ],
    )
    for name in paper_data.WORKLOADS:
        reports = {"base": base_model.energy(study.base_run(name))}
        for label in ("conservative", "aggressive"):
            reports[label] = approx_model.energy(study.approx_run(name, label))
        for config_label, report in reports.items():
            fractions = report.breakdown()
            result.add_row(
                workload=name,
                config=config_label,
                **{g: fractions.get(g, 0.0) for g in group_names},
            )
    return result
