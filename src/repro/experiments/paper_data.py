"""Published numbers from the paper, used for side-by-side comparison.

All values are transcribed from the paper's figures and tables:

* Figure 11a/12a/13a bar labels (accuracy / MAP / F1 per configuration);
* Figure 14a/15a bar labels (throughput and energy efficiency of the
  approximate configurations normalized to base A3);
* Table I (area/power);
* Section VI-A workload statistics (n per workload, d = 64).

The reproduction is not expected to match these absolutely — our models
are retrained on synthetic substrates — but the *shape* (ordering,
monotonicity, rough ratios) must hold, and EXPERIMENTS.md records both.
"""

from __future__ import annotations

WORKLOADS = ("MemN2N", "KV-MemN2N", "BERT")

METRIC_NAMES = {
    "MemN2N": "accuracy",
    "KV-MemN2N": "MAP",
    "BERT": "F1",
}

# Section VI-A: d = 64 for all workloads; n varies.
PAPER_D = 64
PAPER_N = {"MemN2N": 20, "KV-MemN2N": 186, "BERT": 320}
PAPER_N_MAX = {"MemN2N": 50, "KV-MemN2N": 186, "BERT": 320}

# Figure 11a: accuracy across candidate-selection iteration counts.
FIG11_M_LABELS = ("no approx", "M=n", "M=3/4n", "M=1/2n", "M=1/4n", "M=1/8n")
FIG11_M_FRACTIONS = (None, 1.0, 0.75, 0.5, 0.25, 0.125)
FIG11_ACCURACY = {
    "no approx": {"MemN2N": 0.826, "KV-MemN2N": 0.620, "BERT": 0.888},
    "M=n": {"MemN2N": 0.827, "KV-MemN2N": 0.621, "BERT": 0.890},
    "M=3/4n": {"MemN2N": 0.825, "KV-MemN2N": 0.620, "BERT": 0.884},
    "M=1/2n": {"MemN2N": 0.815, "KV-MemN2N": 0.601, "BERT": 0.889},
    "M=1/4n": {"MemN2N": 0.780, "KV-MemN2N": 0.567, "BERT": 0.879},
    "M=1/8n": {"MemN2N": 0.730, "KV-MemN2N": 0.545, "BERT": 0.824},
}

# Figure 12a: accuracy across post-scoring thresholds.
FIG12_T_LABELS = ("no approx", "T=1%", "T=2.5%", "T=5%", "T=10%", "T=20%")
FIG12_T_PERCENTS = (None, 1.0, 2.5, 5.0, 10.0, 20.0)
FIG12_ACCURACY = {
    "no approx": {"MemN2N": 0.826, "KV-MemN2N": 0.620, "BERT": 0.888},
    "T=1%": {"MemN2N": 0.826, "KV-MemN2N": 0.621, "BERT": 0.889},
    "T=2.5%": {"MemN2N": 0.826, "KV-MemN2N": 0.622, "BERT": 0.887},
    "T=5%": {"MemN2N": 0.826, "KV-MemN2N": 0.624, "BERT": 0.885},
    "T=10%": {"MemN2N": 0.825, "KV-MemN2N": 0.626, "BERT": 0.867},
    "T=20%": {"MemN2N": 0.826, "KV-MemN2N": 0.629, "BERT": 0.841},
}

# Figure 13a: accuracy of the combined schemes.
FIG13_CONFIG_LABELS = ("base", "conservative", "aggressive")
FIG13_ACCURACY = {
    "base": {"MemN2N": 0.826, "KV-MemN2N": 0.620, "BERT": 0.888},
    "conservative": {"MemN2N": 0.816, "KV-MemN2N": 0.604, "BERT": 0.875},
    "aggressive": {"MemN2N": 0.730, "KV-MemN2N": 0.545, "BERT": 0.805},
}
# Figure 13b uses top-2 for bAbI and top-5 for the other two workloads.
FIG13_TOPK = {"MemN2N": 2, "KV-MemN2N": 5, "BERT": 5}

# Figure 14a: throughput of approximate A3 normalized to base A3
# (the labels printed above the bars).
FIG14_THROUGHPUT_VS_BASE = {
    "conservative": {"MemN2N": 1.39, "KV-MemN2N": 2.01, "BERT": 1.85},
    "aggressive": {"MemN2N": 2.62, "KV-MemN2N": 7.03, "BERT": 5.69},
}

# Figure 15a: energy efficiency normalized to base A3.
FIG15_EFFICIENCY_VS_BASE = {
    "conservative": {"MemN2N": 1.40, "KV-MemN2N": 2.89, "BERT": 3.74},
    "aggressive": {"MemN2N": 2.99, "KV-MemN2N": 9.86, "BERT": 11.65},
}

# Table I totals (per-module rows live in repro.hardware.energy.TABLE_I).
TABLE1_TOTAL_AREA_MM2 = 2.082
TABLE1_TOTAL_DYNAMIC_MW = 98.92
TABLE1_TOTAL_STATIC_MW = 11.502

# Section VI-B, "Impact of Quantization": f = 4 costs < 0.1% accuracy.
QUANTIZATION_F = 4
QUANTIZATION_MAX_DEGRADATION = 0.001

# Figure 3 qualitative claims.
FIG3_MIN_ATTENTION_FRACTION_TOTAL = 0.35
FIG3_MIN_ATTENTION_FRACTION_RESPONSE = 0.70  # MemN2N and KV-MemN2N only
