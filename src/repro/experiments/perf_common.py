"""Shared machinery for the performance and energy experiments.

Figures 14 and 15 are driven by per-query selection shapes ``(n, M, C, K)``
at the paper's workload sizes (``n`` = 20 / 186 / 320, ``d = 64``).  The
iteration count ``M`` follows directly from the configuration; the
candidate and survivor counts ``C`` and ``K`` are *measured* by running
the trained workloads through the approximate backend and averaging the
selection fractions, then rescaled to the paper's ``n``.

When no trained workloads are available (fast tests), documented default
fractions — representative of the measured ones — are used instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import ApproximateBackend
from repro.core.config import ApproximationConfig, aggressive, conservative
from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.hardware.baselines import CpuModel, GpuModel
from repro.hardware.config import HardwareConfig
from repro.hardware.pipeline import (
    ApproxA3Pipeline,
    BaseA3Pipeline,
    PipelineRun,
    QueryShape,
)

__all__ = [
    "APPROX_CONFIGS",
    "SelectionFractions",
    "DEFAULT_FRACTIONS",
    "PerformanceStudy",
]

APPROX_CONFIGS: dict[str, ApproximationConfig] = {
    "conservative": conservative(),
    "aggressive": aggressive(),
}


@dataclass(frozen=True)
class SelectionFractions:
    """Mean selection sizes as fractions of ``n``."""

    candidate: float
    kept: float


# Fallback fractions when measurement is skipped; close to what the
# trained synthetic workloads produce (see EXPERIMENTS.md).
DEFAULT_FRACTIONS: dict[str, dict[str, SelectionFractions]] = {
    "conservative": {
        "MemN2N": SelectionFractions(0.40, 0.10),
        "KV-MemN2N": SelectionFractions(0.40, 0.05),
        "BERT": SelectionFractions(0.40, 0.05),
    },
    "aggressive": {
        "MemN2N": SelectionFractions(0.12, 0.05),
        "KV-MemN2N": SelectionFractions(0.10, 0.02),
        "BERT": SelectionFractions(0.10, 0.02),
    },
}


class PerformanceStudy:
    """Builds pipeline runs and baseline timings for every workload/config.

    Parameters
    ----------
    cache:
        When provided, selection fractions are measured from the trained
        workloads; otherwise :data:`DEFAULT_FRACTIONS` are used.
    num_queries:
        Stream length for steady-state throughput simulation.
    measure_limit:
        Test-set cap when measuring fractions.
    """

    def __init__(
        self,
        cache: WorkloadCache | None = None,
        num_queries: int = 200,
        measure_limit: int | None = 40,
        hardware: HardwareConfig | None = None,
        cpu: CpuModel | None = None,
        gpu: GpuModel | None = None,
    ):
        self.cache = cache
        self.num_queries = num_queries
        self.measure_limit = measure_limit
        self.hardware = hardware or HardwareConfig()
        self.cpu = cpu or CpuModel()
        self.gpu = gpu or GpuModel()
        self._fractions: dict[tuple[str, str], SelectionFractions] = {}

    # ------------------------------------------------------------------
    # selection fractions
    # ------------------------------------------------------------------
    def fractions(self, workload: str, config_label: str) -> SelectionFractions:
        """Measured (or default) mean C/n and K/n for one operating point."""
        key = (workload, config_label)
        if key not in self._fractions:
            if self.cache is None:
                self._fractions[key] = DEFAULT_FRACTIONS[config_label][workload]
            else:
                self._fractions[key] = self._measure(workload, config_label)
        return self._fractions[key]

    def _measure(self, workload_name: str, config_label: str) -> SelectionFractions:
        workload = self.cache.get(workload_name)
        backend = ApproximateBackend(APPROX_CONFIGS[config_label])
        workload.evaluate(backend, limit=self.measure_limit)
        stats = backend.stats
        return SelectionFractions(
            candidate=stats.candidate_fraction, kept=stats.kept_fraction
        )

    # ------------------------------------------------------------------
    # pipeline runs at paper scale
    # ------------------------------------------------------------------
    def paper_n(self, workload: str) -> int:
        return paper_data.PAPER_N[workload]

    def base_run(self, workload: str) -> PipelineRun:
        n = self.paper_n(workload)
        pipeline = BaseA3Pipeline(self.hardware)
        return pipeline.run([n] * self.num_queries)

    def approx_run(self, workload: str, config_label: str) -> PipelineRun:
        n = self.paper_n(workload)
        config = APPROX_CONFIGS[config_label]
        frac = self.fractions(workload, config_label)
        shape = QueryShape(
            n=n,
            m=config.iterations(n),
            candidates=max(1, round(frac.candidate * n)),
            kept=max(1, round(frac.kept * n)),
        )
        pipeline = ApproxA3Pipeline(self.hardware)
        return pipeline.run([shape] * self.num_queries)

    # ------------------------------------------------------------------
    # baseline devices
    # ------------------------------------------------------------------
    def cpu_time_per_op(self, workload: str) -> float:
        """Seconds per attention op on the CPU baseline."""
        n = self.paper_n(workload)
        d = paper_data.PAPER_D
        if workload == "BERT":
            # Self-attention: one batched call serves all n queries.
            return self.cpu.attention_time_s(n, d, batch=n) / n
        return self.cpu.attention_time_s(n, d, batch=1)

    def gpu_time_per_op(self, workload: str) -> float | None:
        """Seconds per attention op on the GPU baseline (BERT only)."""
        if workload != "BERT":
            return None  # the paper had no GPU implementation for these
        n = self.paper_n(workload)
        return self.gpu.attention_time_s(n, paper_data.PAPER_D, batch=n) / n

    def preprocessing_per_query_s(self, workload: str) -> float:
        """Amortized key-sort time added to approximate A3 on BERT.

        For MemN2N / KV-MemN2N the sort happens at comprehension time, off
        the critical path; for BERT it is on the critical path but shared
        by the n queries of the self-attention (Section VI-C,
        "Preprocessing").
        """
        if workload != "BERT":
            return 0.0
        n = self.paper_n(workload)
        return self.gpu.column_sort_time_s(n, paper_data.PAPER_D) / n
