"""Section VI-B "Impact of Quantization Scheme".

Evaluates each workload with the fixed-point base-A3 pipeline at several
fraction bit-widths.  The paper's finding: with the Section III-B width
rules, ``f = 4`` degrades accuracy by less than 0.1% on every workload.
"""

from __future__ import annotations

from repro.core.backends import ExactBackend, QuantizedBackend
from repro.experiments import paper_data
from repro.experiments.cache import WorkloadCache
from repro.experiments.results import ExperimentResult

__all__ = ["run", "DEFAULT_F_SWEEP"]

DEFAULT_F_SWEEP = (2, 3, 4, 6)


def run(
    cache: WorkloadCache | None = None,
    limit: int | None = None,
    f_sweep: tuple[int, ...] = DEFAULT_F_SWEEP,
) -> ExperimentResult:
    """Sweep fraction bits; integer bits stay at the paper's i=4."""
    cache = cache or WorkloadCache()
    result = ExperimentResult(
        experiment="quant",
        title="Impact of quantization (fixed-point pipeline, i=4)",
        columns=["workload", "config", "metric", "degradation"],
        notes=[
            "Paper: f=4 keeps degradation under 0.1% on all workloads; "
            "fewer fraction bits start to cost accuracy.",
        ],
    )
    for name in paper_data.WORKLOADS:
        workload = cache.get(name)
        baseline = workload.evaluate(ExactBackend(), limit=limit)
        result.add_row(
            workload=name,
            config="float64",
            metric=baseline.metric,
            degradation=0.0,
        )
        for f in f_sweep:
            backend = QuantizedBackend(i=4, f=f, d=workload.attention_dim)
            eval_result = workload.evaluate(backend, limit=limit)
            result.add_row(
                workload=name,
                config=f"i=4, f={f}",
                metric=eval_result.metric,
                degradation=baseline.metric - eval_result.metric,
            )
    return result
