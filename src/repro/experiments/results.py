"""Result containers and table formatting for the experiment drivers.

Every driver returns an :class:`ExperimentResult` whose rows regenerate
one paper table or figure; ``format_table`` renders the same rows/series
the paper reports, side by side with the published values where they
exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_value"]


def format_value(value: object) -> str:
    """Render one cell: floats get 3-4 significant digits, rest ``str``."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentResult:
    """Rows regenerating one paper artifact.

    Attributes
    ----------
    experiment:
        Short id ("fig11", "table1", ...).
    title:
        Human-readable description matching the paper caption.
    columns:
        Column order for rendering.
    rows:
        One dict per table row; keys are column names.
    notes:
        Free-form caveats (scale substitutions, calibration knobs, ...).
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        """Aligned plain-text table with title and notes."""
        header = [str(c) for c in self.columns]
        body = [
            [format_value(row.get(c, "")) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "notes": list(self.notes),
        }
