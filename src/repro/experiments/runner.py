"""Run every paper experiment and print its table.

Usage::

    python -m repro.experiments.runner                 # everything, small scale
    python -m repro.experiments.runner --scale tiny    # fast smoke pass
    python -m repro.experiments.runner --only fig11 fig13
    python -m repro.experiments.runner --limit 40      # cap test examples
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig03_profile,
    fig11_candidate,
    fig12_postscoring,
    fig13_combined,
    fig14_performance,
    fig15_energy,
    quantization,
    table1_area_power,
)
from repro.experiments.cache import WorkloadCache
from repro.experiments.perf_common import PerformanceStudy
from repro.experiments.results import ExperimentResult

__all__ = ["EXPERIMENT_IDS", "run_experiment", "main"]

EXPERIMENT_IDS = (
    "fig03",
    "fig11",
    "fig12",
    "fig13",
    "quant",
    "fig14",
    "fig15a",
    "fig15b",
    "table1",
)


def run_experiment(
    experiment_id: str,
    cache: WorkloadCache,
    study: PerformanceStudy,
    limit: int | None,
) -> ExperimentResult:
    """Dispatch one experiment by id."""
    if experiment_id == "fig03":
        return fig03_profile.run(cache, limit=limit)
    if experiment_id == "fig11":
        return fig11_candidate.run(cache, limit=limit)
    if experiment_id == "fig12":
        return fig12_postscoring.run(cache, limit=limit)
    if experiment_id == "fig13":
        return fig13_combined.run(cache, limit=limit)
    if experiment_id == "quant":
        return quantization.run(cache, limit=limit)
    if experiment_id == "fig14":
        return fig14_performance.run(study=study)
    if experiment_id == "fig15a":
        return fig15_energy.run(study=study)
    if experiment_id == "fig15b":
        return fig15_energy.run_breakdown(study=study)
    if experiment_id == "table1":
        return table1_area_power.run()
    raise ValueError(f"unknown experiment {experiment_id!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        nargs="+",
        choices=EXPERIMENT_IDS,
        default=list(EXPERIMENT_IDS),
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        choices=("tiny", "small"),
        default="small",
        help="workload training scale",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="cap test examples per eval"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render the headline column as ASCII bar charts",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    cache = WorkloadCache(scale=args.scale, seed=args.seed)
    study = PerformanceStudy(cache=cache)
    for experiment_id in args.only:
        started = time.perf_counter()
        result = run_experiment(experiment_id, cache, study, args.limit)
        elapsed = time.perf_counter() - started
        print(result.format_table())
        if args.plot:
            chart = _plot(experiment_id, result)
            if chart:
                print()
                print(chart)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


_PLOT_COLUMNS = {
    "fig03": ("attention % (query response)", "workload", "workload", False),
    "fig11": ("metric", "workload", "config", False),
    "fig12": ("metric", "workload", "config", False),
    "fig13": ("metric", "workload", "config", False),
    "quant": ("metric", "workload", "config", False),
    "fig14": ("throughput (ops/s)", "workload", "platform", True),
    "fig15a": ("ops/J", "workload", "platform", True),
}


def _plot(experiment_id: str, result: ExperimentResult) -> str | None:
    from repro.experiments.ascii_plot import grouped_bar_chart

    spec = _PLOT_COLUMNS.get(experiment_id)
    if spec is None:
        return None
    value_column, group_column, label_column, log_scale = spec
    return grouped_bar_chart(
        result,
        value_column,
        group_column=group_column,
        label_column=label_column,
        log_scale=log_scale,
    )


if __name__ == "__main__":
    sys.exit(main())
