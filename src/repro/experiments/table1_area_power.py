"""Table I: area and power characteristics of A3.

The per-module numbers are the paper's synthesis results (our calibrated
database); this driver renders them with group subtotals and cross-checks
the totals, and adds the derived SRAM capacities from the hardware
configuration.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.results import ExperimentResult
from repro.hardware.config import HardwareConfig
from repro.hardware.energy import APPROX_MODULES, TABLE_I

__all__ = ["run"]

_DISPLAY_NAMES = {
    "dot_product": "Dot Product",
    "exponent": "Exponent Computation",
    "output": "Output Computation",
    "candidate_selection": "Candidate Selection",
    "post_scoring": "Post-Scoring Selection",
    "sram_key": "Key Matrix SRAM (20KB)",
    "sram_value": "Value Matrix SRAM (20KB)",
    "sram_sorted_key": "Sorted Key Matrix SRAM (40KB)",
}


def run(config: HardwareConfig | None = None) -> ExperimentResult:
    """Render Table I and verify the totals."""
    config = config or HardwareConfig()
    result = ExperimentResult(
        experiment="table1",
        title="Area and power characteristics of A3 (TSMC 40nm, 1 GHz)",
        columns=["module", "area (mm^2)", "dynamic (mW)", "static (mW)"],
        notes=[
            f"SRAM capacities derived from n={config.n}, d={config.d}: "
            f"key/value {config.sram_bytes_per_matrix() // 1024}KB each, "
            f"sorted key {config.sram_bytes_sorted_key() // 1024}KB.",
        ],
    )
    for module in APPROX_MODULES:
        row = TABLE_I[module]
        result.add_row(
            module=_DISPLAY_NAMES[module],
            **{
                "area (mm^2)": row.area_mm2,
                "dynamic (mW)": row.dynamic_mw,
                "static (mW)": row.static_mw,
            },
        )
    total_area = sum(TABLE_I[m].area_mm2 for m in APPROX_MODULES)
    total_dyn = sum(TABLE_I[m].dynamic_mw for m in APPROX_MODULES)
    total_stat = sum(TABLE_I[m].static_mw for m in APPROX_MODULES)
    result.add_row(
        module="Total A3",
        **{
            "area (mm^2)": round(total_area, 3),
            "dynamic (mW)": round(total_dyn, 3),
            "static (mW)": round(total_stat, 3),
        },
    )
    result.notes.append(
        f"paper totals: {paper_data.TABLE1_TOTAL_AREA_MM2} mm^2, "
        f"{paper_data.TABLE1_TOTAL_DYNAMIC_MW} mW dynamic, "
        f"{paper_data.TABLE1_TOTAL_STATIC_MW} mW static."
    )
    return result
