"""Fixed-point quantization substrate (Section III-B).

Public API: :class:`~repro.fixedpoint.qformat.QFormat`,
:class:`~repro.fixedpoint.widths.PipelineWidths`,
:class:`~repro.fixedpoint.exp_lut.ExpLUT`,
:class:`~repro.fixedpoint.fixed_attention.QuantizedAttention`.
"""

from repro.fixedpoint.exp_lut import ExpLUT
from repro.fixedpoint.fixed_attention import QuantizedAttention, QuantizedAttentionResult
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import (
    QuantizationStats,
    quantization_stats,
    quantize,
    saturation_fraction,
)
from repro.fixedpoint.widths import PipelineWidths

__all__ = [
    "ExpLUT",
    "QuantizedAttention",
    "QuantizedAttentionResult",
    "QFormat",
    "QuantizationStats",
    "quantization_stats",
    "quantize",
    "saturation_fraction",
    "PipelineWidths",
]
