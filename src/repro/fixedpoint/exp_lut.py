"""Split-table exponent lookup (Section III-A, Module 2).

The exponent computation module evaluates ``exp(x)`` for non-positive
fixed-point inputs (the dot product after max-subtraction).  A monolithic
table would need ``2**total_bits`` entries; the paper instead exploits

    ``exp(0.10101111b) = exp(0.10100000b) * exp(0.00001111b)``

splitting the magnitude's bit pattern into an upper and a lower half, each
indexing a small table, with one multiplier combining the halves.  For a
16-bit input this shrinks 65,536 entries to two tables of 256.

The paper's footnote proves the LUT error *shrinks* through ``exp`` when
the argument is non-positive: ``|exp(x + eps) - exp(x)| < |eps|`` for
``x <= 0``; :meth:`ExpLUT.error_bound` exposes this bound and the property
tests verify it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.fixedpoint.qformat import QFormat

__all__ = ["ExpLUT"]


class ExpLUT:
    """Two-half exponent lookup table for non-positive arguments.

    Parameters
    ----------
    input_format:
        Fixed-point format of the (non-positive) argument, typically the
        ``shifted_dot`` format from
        :class:`repro.fixedpoint.widths.PipelineWidths`.
    output_format:
        Format of the produced exponent value, typically the ``score``
        format (unsigned, ``2f`` fraction bits).
    guard_bits:
        Extra fraction bits kept in the table entries so the single
        multiply does not dominate the rounding error.
    """

    def __init__(
        self,
        input_format: QFormat,
        output_format: QFormat,
        guard_bits: int = 2,
    ):
        if guard_bits < 0:
            raise ConfigError(f"guard_bits must be >= 0, got {guard_bits}")
        self.input_format = input_format
        self.output_format = output_format
        magnitude_bits = input_format.integer_bits + input_format.fraction_bits
        if magnitude_bits < 2:
            raise ConfigError("input format needs at least 2 magnitude bits")
        self.magnitude_bits = magnitude_bits
        self.lower_bits = magnitude_bits // 2
        self.upper_bits = magnitude_bits - self.lower_bits
        self._table_format = QFormat(
            0, output_format.fraction_bits + guard_bits, signed=False
        )
        scale = input_format.resolution
        upper_codes = np.arange(1 << self.upper_bits, dtype=np.int64)
        lower_codes = np.arange(1 << self.lower_bits, dtype=np.int64)
        self._upper_table = np.asarray(
            self._table_format.quantize(
                np.exp(-(upper_codes.astype(np.float64) * (1 << self.lower_bits)) * scale)
            )
        )
        self._lower_table = np.asarray(
            self._table_format.quantize(
                np.exp(-lower_codes.astype(np.float64) * scale)
            )
        )

    # ------------------------------------------------------------------
    # sizing (used by the area model and the LUT ablation)
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Total entries across both split tables."""
        return (1 << self.upper_bits) + (1 << self.lower_bits)

    @property
    def monolithic_entries(self) -> int:
        """Entries a single unsplit table would need."""
        return 1 << self.magnitude_bits

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``exp(x)`` for ``x <= 0`` via the split tables.

        Positive inputs are clamped to zero (the pipeline guarantees
        non-positive inputs by subtracting the running maximum); inputs
        below the representable range saturate, mapping to the smallest
        table value (effectively zero).
        """
        scalar = np.isscalar(x)
        arr = np.asarray(x, dtype=np.float64)
        magnitude = np.clip(-arr, 0.0, None)
        codes = np.clip(
            np.rint(magnitude / self.input_format.resolution),
            0,
            (1 << self.magnitude_bits) - 1,
        ).astype(np.int64)
        upper = codes >> self.lower_bits
        lower = codes & ((1 << self.lower_bits) - 1)
        product = self._upper_table[upper] * self._lower_table[lower]
        out = np.asarray(self.output_format.quantize(product))
        return float(out) if scalar else out

    def error_bound(self) -> float:
        """Worst-case absolute error versus the true ``exp``.

        Composed of the input rounding error (halved LSB, attenuated by the
        paper's footnote inequality ``|exp(x+eps) - exp(x)| < |eps|`` for
        non-positive arguments), the two table rounding errors, and the
        output rounding error.
        """
        input_err = self.input_format.resolution / 2.0
        table_err = 2.0 * self._table_format.resolution
        output_err = self.output_format.resolution / 2.0
        return input_err + table_err + output_err

    def exact(self, x: np.ndarray | float) -> np.ndarray | float:
        """Reference ``exp`` with the same clamping, for error measurement."""
        scalar = np.isscalar(x)
        arr = np.asarray(x, dtype=np.float64)
        out = np.exp(np.clip(arr, None, 0.0))
        return float(out) if scalar else out
