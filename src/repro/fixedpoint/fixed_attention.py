"""Stage-faithful fixed-point attention (Figure 5 with Section III-B widths).

Runs the three base-pipeline modules with every intermediate value held in
its derived :class:`~repro.fixedpoint.qformat.QFormat`, including the split
exponent LUT.  This is the numeric model used for the paper's "Impact of
Quantization" study (Section VI-B): with ``i = f = 4`` accuracy degrades by
less than 0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attention import attention as exact_attention
from repro.errors import ShapeError
from repro.fixedpoint.exp_lut import ExpLUT
from repro.fixedpoint.widths import PipelineWidths

__all__ = ["QuantizedAttentionResult", "QuantizedAttention"]


@dataclass
class QuantizedAttentionResult:
    """Output of a quantized attention evaluation.

    Attributes
    ----------
    output:
        The attended vector, dequantized to float.
    weights:
        The fixed-point softmax weights (dequantized).
    max_abs_error:
        Worst-case absolute deviation from the float64 reference output.
    """

    output: np.ndarray
    weights: np.ndarray
    max_abs_error: float


class QuantizedAttention:
    """Attention evaluated with the A3 pipeline's fixed-point arithmetic.

    Parameters
    ----------
    i, f:
        Input integer and fraction bits (the paper uses 4 and 4).
    n, d:
        Pipeline dimensions, used to derive the accumulator widths.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> qa = QuantizedAttention(i=4, f=4, n=16, d=8)
    >>> key = rng.normal(size=(16, 8)); value = rng.normal(size=(16, 8))
    >>> res = qa.attend(key, value, rng.normal(size=8))
    >>> res.output.shape
    (8,)
    """

    def __init__(self, i: int = 4, f: int = 4, n: int = 320, d: int = 64):
        self.widths = PipelineWidths.derive(i=i, f=f, n=n, d=d)
        self.exp_lut = ExpLUT(self.widths.shifted_dot, self.widths.score)

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> QuantizedAttentionResult:
        """Run the full quantized pipeline for one query."""
        key = np.asarray(key, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        if key.ndim != 2 or key.shape[0] > self.widths.n or key.shape[1] != self.widths.d:
            raise ShapeError(
                f"key shape {key.shape} exceeds pipeline dims "
                f"(n<={self.widths.n}, d={self.widths.d})"
            )
        w = self.widths

        # Input quantization (the only lossy step on the inputs).
        q_key = np.asarray(w.input.quantize(key))
        q_value = np.asarray(w.input.quantize(value))
        q_query = np.asarray(w.input.quantize(query))

        # Module 1: dot product.  Products need (2i, 2f); the d-way adder
        # tree result needs (log2 d + 2i, 2f).  Both are exact by
        # construction, but we clip to model the physical registers.
        products = np.asarray(w.product.quantize(q_key * q_query[np.newaxis, :]))
        dots = np.asarray(w.dot_product.quantize(products.sum(axis=1)))

        # Module 2: exponent.  Subtract the running maximum (one extra
        # integer bit), then the split-LUT exponent and the exp sum.
        shifted = np.asarray(w.shifted_dot.quantize(dots - np.max(dots)))
        scores = np.asarray(self.exp_lut(shifted))
        expsum = float(np.asarray(w.expsum.quantize(scores.sum())))
        if expsum <= 0.0:
            # All scores quantized to zero: fall back to attending the
            # single maximum row, which is what the real divider would
            # produce in the limit.
            weights = np.zeros_like(scores)
            weights[int(np.argmax(dots))] = 1.0
        else:
            weights = np.asarray(w.weight.quantize(scores / expsum))

        # Module 3: output.  Each weighted row is accumulated in the
        # (i + log2 n, 3f) output registers.
        terms = np.asarray(w.output.quantize(weights[:, np.newaxis] * q_value))
        output = np.asarray(w.output.quantize(terms.sum(axis=0)))

        reference = exact_attention(key, value, query)
        return QuantizedAttentionResult(
            output=output,
            weights=weights,
            max_abs_error=float(np.max(np.abs(output - reference))),
        )
