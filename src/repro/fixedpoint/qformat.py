"""Signed fixed-point number formats (Section III-B).

A :class:`QFormat` describes a two's-complement fixed-point representation
with ``integer_bits`` bits left of the binary point, ``fraction_bits`` to
the right, and one sign bit — the paper's "``i`` integer bits and ``f``
fraction bits (plus a sign bit)".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["QFormat"]


@dataclass(frozen=True)
class QFormat:
    """A signed (or unsigned) fixed-point format.

    Attributes
    ----------
    integer_bits:
        Bits to the left of the binary point (excluding the sign bit).
    fraction_bits:
        Bits to the right of the binary point.
    signed:
        Whether a sign bit is present.  Values like the softmax ``score``
        and ``weight`` are bounded to ``[0, 1]`` and use unsigned formats
        with zero integer bits.
    """

    integer_bits: int
    fraction_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 0:
            raise ConfigError(f"integer_bits must be >= 0, got {self.integer_bits}")
        if self.fraction_bits < 0:
            raise ConfigError(f"fraction_bits must be >= 0, got {self.fraction_bits}")
        if self.integer_bits + self.fraction_bits == 0:
            raise ConfigError("format must have at least one magnitude bit")

    # ------------------------------------------------------------------
    # derived properties
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Storage width: sign bit (if any) + integer bits + fraction bits."""
        return int(self.signed) + self.integer_bits + self.fraction_bits

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit: ``2**-fraction_bits``."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self) -> float:
        """Largest representable value: ``2**integer_bits - resolution``."""
        return 2.0 ** self.integer_bits - self.resolution

    @property
    def min_value(self) -> float:
        """Smallest representable value (``-2**integer_bits`` if signed)."""
        return -(2.0 ** self.integer_bits) if self.signed else 0.0

    @property
    def max_int(self) -> int:
        """Largest raw integer code."""
        return (1 << (self.integer_bits + self.fraction_bits)) - 1

    @property
    def min_int(self) -> int:
        """Smallest raw integer code."""
        return -(1 << (self.integer_bits + self.fraction_bits)) if self.signed else 0

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray | float) -> np.ndarray | float:
        """Round ``x`` to the nearest representable value, saturating."""
        scalar = np.isscalar(x)
        arr = np.asarray(x, dtype=np.float64)
        scaled = np.rint(arr * 2.0 ** self.fraction_bits)
        clipped = np.clip(scaled, self.min_int, self.max_int)
        out = clipped * self.resolution
        return float(out) if scalar else out

    def to_int(self, x: np.ndarray | float) -> np.ndarray | int:
        """The raw integer code of ``x`` after quantization."""
        scalar = np.isscalar(x)
        arr = np.asarray(x, dtype=np.float64)
        scaled = np.rint(arr * 2.0 ** self.fraction_bits)
        clipped = np.clip(scaled, self.min_int, self.max_int).astype(np.int64)
        return int(clipped) if scalar else clipped

    def from_int(self, code: np.ndarray | int) -> np.ndarray | float:
        """Decode a raw integer code back to its real value."""
        scalar = np.isscalar(code)
        out = np.asarray(code, dtype=np.float64) * self.resolution
        return float(out) if scalar else out

    def representable(self, x: np.ndarray | float, atol: float = 1e-12) -> bool:
        """Whether every element of ``x`` is exactly representable."""
        arr = np.asarray(x, dtype=np.float64)
        if np.any(arr > self.max_value + atol) or np.any(arr < self.min_value - atol):
            return False
        scaled = arr * 2.0 ** self.fraction_bits
        return bool(np.all(np.abs(scaled - np.rint(scaled)) <= atol))

    def describe(self) -> str:
        """Human-readable summary, e.g. ``s4.4 (9 bits)``."""
        sign = "s" if self.signed else "u"
        return f"{sign}{self.integer_bits}.{self.fraction_bits} ({self.total_bits} bits)"
