"""Array quantization helpers built on :class:`repro.fixedpoint.qformat.QFormat`."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import QFormat

__all__ = ["QuantizationStats", "quantize", "quantization_stats", "saturation_fraction"]


@dataclass(frozen=True)
class QuantizationStats:
    """Error statistics from quantizing an array.

    Attributes
    ----------
    max_abs_error:
        Largest absolute difference between original and quantized values.
    mean_abs_error:
        Mean absolute difference.
    saturated_fraction:
        Fraction of elements clipped to the format's range limits.
    """

    max_abs_error: float
    mean_abs_error: float
    saturated_fraction: float


def quantize(x: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Quantize an array to ``fmt`` (round-to-nearest, saturating)."""
    return np.asarray(fmt.quantize(np.asarray(x, dtype=np.float64)))


def saturation_fraction(x: np.ndarray, fmt: QFormat) -> float:
    """Fraction of elements of ``x`` outside the representable range."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    half_lsb = fmt.resolution / 2.0
    out_of_range = (arr > fmt.max_value + half_lsb) | (arr < fmt.min_value - half_lsb)
    return float(np.mean(out_of_range))


def quantization_stats(x: np.ndarray, fmt: QFormat) -> QuantizationStats:
    """Quantize ``x`` and report the introduced error."""
    arr = np.asarray(x, dtype=np.float64)
    quantized = quantize(arr, fmt)
    error = np.abs(arr - quantized)
    return QuantizationStats(
        max_abs_error=float(np.max(error)) if arr.size else 0.0,
        mean_abs_error=float(np.mean(error)) if arr.size else 0.0,
        saturated_fraction=saturation_fraction(arr, fmt),
    )
