"""Per-stage bit-width derivation for the A3 pipeline (Section III-B).

Given the input format (``i`` integer bits, ``f`` fraction bits, plus a
sign bit) and the pipeline dimensions ``n`` and ``d``, the paper derives
the width of every intermediate value so that no stage overflows or loses
precision:

===============  =======================  ==================
value            integer bits             fraction bits
===============  =======================  ==================
input            ``i``                    ``f``
product          ``2i``                   ``2f``
dot product      ``log2(d) + 2i``         ``2f``
shifted dot      ``log2(d) + 2i + 1``     ``2f``
score (exp)      ``0``                    ``2f``
exp sum          ``log2(n)``              ``2f``
weight           ``0``                    ``2f``
output           ``i + log2(n)``          ``3f``
===============  =======================  ==================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fixedpoint.qformat import QFormat

__all__ = ["PipelineWidths"]


def _clog2(x: int) -> int:
    """Ceiling of log2, the number of extra bits an x-way sum may need."""
    if x < 1:
        raise ConfigError(f"log2 argument must be >= 1, got {x}")
    return max(1, math.ceil(math.log2(x))) if x > 1 else 0


@dataclass(frozen=True)
class PipelineWidths:
    """The fixed-point format of every A3 pipeline stage.

    Build with :meth:`derive`; the attribute names follow the pseudocode of
    Figure 5 (``temp``/``product``, ``dot_product``, ``score``, ``expsum``,
    ``weight``, ``output``).
    """

    input: QFormat
    product: QFormat
    dot_product: QFormat
    shifted_dot: QFormat
    score: QFormat
    expsum: QFormat
    weight: QFormat
    output: QFormat
    n: int
    d: int

    @classmethod
    def derive(cls, i: int, f: int, n: int, d: int) -> "PipelineWidths":
        """Apply the Section III-B growth rules for an ``(i, f)`` input format.

        The paper's evaluation uses ``i = 4`` and ``f = 4`` with
        ``n = 320`` and ``d = 64``.
        """
        if n < 1 or d < 1:
            raise ConfigError(f"n and d must be >= 1, got n={n}, d={d}")
        if i < 1 or f < 1:
            raise ConfigError(f"i and f must be >= 1, got i={i}, f={f}")
        log_d = _clog2(d)
        log_n = _clog2(n)
        return cls(
            input=QFormat(i, f, signed=True),
            product=QFormat(2 * i, 2 * f, signed=True),
            dot_product=QFormat(log_d + 2 * i, 2 * f, signed=True),
            shifted_dot=QFormat(log_d + 2 * i + 1, 2 * f, signed=True),
            score=QFormat(0, 2 * f, signed=False),
            expsum=QFormat(log_n, 2 * f, signed=False),
            weight=QFormat(0, 2 * f, signed=False),
            output=QFormat(i + log_n, 3 * f, signed=True),
            n=n,
            d=d,
        )

    def stage_formats(self) -> dict[str, QFormat]:
        """All stage formats keyed by stage name, in pipeline order."""
        return {
            "input": self.input,
            "product": self.product,
            "dot_product": self.dot_product,
            "shifted_dot": self.shifted_dot,
            "score": self.score,
            "expsum": self.expsum,
            "weight": self.weight,
            "output": self.output,
        }

    def total_register_bits(self) -> int:
        """Bits held in the per-stage register files (n-deep where needed).

        Used by the energy model to sanity-check that the output-computation
        module, with its wide ``3f``-fraction accumulators, is the largest
        register consumer — the reason Figure 15b shows it dominating base
        A3 energy.
        """
        return (
            self.n * self.dot_product.total_bits  # dot-product outcome regs
            + self.n * self.score.total_bits      # score regs
            + self.expsum.total_bits
            + self.d * self.output.total_bits     # output accumulators
        )
