"""Cycle-level hardware models of the A3 accelerator (Sections III and V).

Public API:

* configuration: :class:`~repro.hardware.config.HardwareConfig`
* base pipeline: :class:`~repro.hardware.pipeline.BaseA3Pipeline`
* approximate pipeline: :class:`~repro.hardware.pipeline.ApproxA3Pipeline`,
  :class:`~repro.hardware.pipeline.QueryShape`
* approximation modules:
  :class:`~repro.hardware.candidate_module.CandidateSelectionModule`,
  :class:`~repro.hardware.post_scoring_module.PostScoringModule`
* energy/area: :data:`~repro.hardware.energy.TABLE_I`,
  :class:`~repro.hardware.energy.EnergyModel`
* baselines: :class:`~repro.hardware.baselines.CpuModel`,
  :class:`~repro.hardware.baselines.GpuModel`
"""

from repro.hardware.baselines import (
    CpuModel,
    DeviceSpec,
    GpuModel,
    TITAN_V,
    XEON_GOLD_6128,
    attention_flops,
)
from repro.hardware.candidate_module import (
    CandidateSelectionModule,
    CandidateSelectionRun,
)
from repro.hardware.config import PAPER_CONFIG, HardwareConfig
from repro.hardware.dram import DramConfig, DramSpillModel, SpillTiming
from repro.hardware.multi_unit import MultiUnitA3, MultiUnitConfig, MultiUnitResult
from repro.hardware.energy import (
    APPROX_MODULES,
    BASE_MODULES,
    BREAKDOWN_GROUPS,
    EnergyModel,
    EnergyReport,
    ModuleAreaPower,
    TABLE_I,
    total_area_mm2,
    total_power_mw,
)
from repro.hardware.modules import (
    DotProductModule,
    ExponentModule,
    OutputModule,
    StageRecord,
    scan_cycles,
)
from repro.hardware.pipeline import (
    ApproxA3Pipeline,
    BaseA3Pipeline,
    PipelineRun,
    PipelineTiming,
    QueryShape,
    simulate_pipeline,
)
from repro.hardware.post_scoring_module import PostScoringModule, PostScoringRun
from repro.hardware.sram import SramBuffer, build_standard_buffers

__all__ = [
    "CpuModel",
    "DeviceSpec",
    "GpuModel",
    "TITAN_V",
    "XEON_GOLD_6128",
    "attention_flops",
    "CandidateSelectionModule",
    "CandidateSelectionRun",
    "PAPER_CONFIG",
    "HardwareConfig",
    "DramConfig",
    "DramSpillModel",
    "SpillTiming",
    "MultiUnitA3",
    "MultiUnitConfig",
    "MultiUnitResult",
    "APPROX_MODULES",
    "BASE_MODULES",
    "BREAKDOWN_GROUPS",
    "EnergyModel",
    "EnergyReport",
    "ModuleAreaPower",
    "TABLE_I",
    "total_area_mm2",
    "total_power_mw",
    "DotProductModule",
    "ExponentModule",
    "OutputModule",
    "StageRecord",
    "scan_cycles",
    "ApproxA3Pipeline",
    "BaseA3Pipeline",
    "PipelineRun",
    "PipelineTiming",
    "QueryShape",
    "simulate_pipeline",
    "PostScoringModule",
    "PostScoringRun",
    "SramBuffer",
    "build_standard_buffers",
]
