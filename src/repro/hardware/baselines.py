"""Analytic CPU and GPU baseline models (Section VI-A / VI-C substitutes).

The paper measures attention throughput on an Intel Xeon Gold 6128 and an
NVIDIA Titan V.  Without that hardware we model both analytically from
their published specifications plus two calibration knobs per device:

* ``efficiency`` — the fraction of peak FLOP/s a small attention kernel
  sustains.  Attention at the paper's sizes (n <= 320, d = 64) is a skinny
  matrix-vector (CPU) or small batched matmul (GPU) workload that utilizes
  a large device poorly; the paper itself notes "a large GPU often cannot
  fully utilize its resources for attention mechanism computation".
* ``overhead_s`` — fixed per-invocation framework/kernel-launch cost,
  which dominates small single-query attention ops on both devices.

These two knobs are documented, exposed, and swept in the sensitivity
benchmark; the paper's qualitative results (A3 beats the CPU by orders of
magnitude; the GPU beats a *single* A3 unit on BERT's easily-batched
self-attention; 6-7 conservative A3 units match the GPU) hold across wide
ranges of them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "XEON_GOLD_6128",
    "TITAN_V",
    "attention_flops",
    "BaselineDevice",
    "CpuModel",
    "GpuModel",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Published specifications of a baseline device."""

    name: str
    peak_flops: float
    tdp_w: float
    die_area_mm2: float
    process_nm: int


XEON_GOLD_6128 = DeviceSpec(
    name="Intel Xeon Gold 6128",
    # 6 cores x 3.4 GHz x 2 AVX-512 FMA ports x 16 lanes x 2 (FMA)
    peak_flops=6 * 3.4e9 * 2 * 16 * 2,
    tdp_w=115.0,
    die_area_mm2=325.0,  # Skylake-SP die (Section VI-D)
    process_nm=14,
)

TITAN_V = DeviceSpec(
    name="NVIDIA Titan V",
    peak_flops=14.9e12,  # fp32
    tdp_w=250.0,
    die_area_mm2=815.0,
    process_nm=12,
)


def attention_flops(n: int, d: int) -> float:
    """Floating-point operations of one exact attention op (Section II-B).

    Step 1: ``nd`` multiplies + ``n(d-1)`` adds; Step 2: ``n`` exps,
    ``n-1`` adds, ``n`` divides; Step 3: ``nd`` multiplies + ``(n-1)d``
    adds.  Exponent/divide are counted as one op each.
    """
    step1 = n * d + n * (d - 1)
    step2 = 3 * n - 1
    step3 = n * d + (n - 1) * d
    return float(step1 + step2 + step3)


class BaselineDevice:
    """Shared analytic timing/energy model for CPU and GPU baselines."""

    def __init__(
        self,
        spec: DeviceSpec,
        efficiency: float,
        overhead_s: float,
        batched_efficiency: float,
    ):
        if not 0.0 < efficiency <= 1.0 or not 0.0 < batched_efficiency <= 1.0:
            raise ValueError("efficiency factors must be in (0, 1]")
        if overhead_s < 0.0:
            raise ValueError("overhead_s must be non-negative")
        self.spec = spec
        self.efficiency = efficiency
        self.batched_efficiency = batched_efficiency
        self.overhead_s = overhead_s

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def attention_time_s(self, n: int, d: int, batch: int = 1) -> float:
        """Wall-clock seconds to run ``batch`` attention ops of size (n, d).

        A batch of one models the MemN2N / KV-MemN2N pattern (one query per
        invocation); larger batches model BERT's batched self-attention,
        which sustains a higher fraction of peak.
        """
        if n < 1 or d < 1 or batch < 1:
            raise ValueError("n, d, batch must all be >= 1")
        eff = self.efficiency if batch == 1 else self.batched_efficiency
        compute = batch * attention_flops(n, d) / (self.spec.peak_flops * eff)
        return self.overhead_s + compute

    def attention_throughput_qps(self, n: int, d: int, batch: int = 1) -> float:
        """Sustained attention ops per second at the given batch size."""
        return batch / self.attention_time_s(n, d, batch)

    def attention_latency_s(self, n: int, d: int, batch: int = 1) -> float:
        """Latency of one op (the whole batch must finish for any output)."""
        return self.attention_time_s(n, d, batch)

    # ------------------------------------------------------------------
    # energy (the paper assumes the device draws its TDP, Section VI-D)
    # ------------------------------------------------------------------
    def energy_per_op_j(self, n: int, d: int, batch: int = 1) -> float:
        return self.spec.tdp_w * self.attention_time_s(n, d, batch) / batch

    def ops_per_joule(self, n: int, d: int, batch: int = 1) -> float:
        return 1.0 / self.energy_per_op_j(n, d, batch)


class CpuModel(BaselineDevice):
    """Xeon Gold 6128 running framework-based attention (numpy/TF/Torch).

    Default calibration: 10% of peak for the memory-bound single-query
    GEMV path, 30% for batched matmul, and a 10 microsecond per-invocation
    framework overhead (typical of eager-mode CPU frameworks on small
    tensors, and the dominant term at these sizes).
    """

    def __init__(
        self,
        efficiency: float = 0.10,
        overhead_s: float = 10e-6,
        batched_efficiency: float = 0.30,
    ):
        super().__init__(XEON_GOLD_6128, efficiency, overhead_s, batched_efficiency)


class GpuModel(BaselineDevice):
    """Titan V running batched attention (BERT only, as in the paper).

    Default calibration: 2% of peak for a single small GEMV (launch-bound),
    20% for the batched self-attention matmuls, and a 10 microsecond
    kernel-launch/driver overhead.
    """

    def __init__(
        self,
        efficiency: float = 0.02,
        overhead_s: float = 10e-6,
        batched_efficiency: float = 0.20,
    ):
        super().__init__(TITAN_V, efficiency, overhead_s, batched_efficiency)

    def column_sort_time_s(self, n: int, d: int) -> float:
        """Preprocessing cost: sorting every key-matrix column on the GPU.

        Used for BERT, where preprocessing sits on the critical path and is
        amortized over the ``n`` queries sharing the key matrix
        (Section VI-C, "Preprocessing").  Modeled as a bitonic-style sort:
        ``d * n * log2(n)^2`` comparator ops at batched efficiency.
        """
        if n < 2:
            return self.overhead_s
        log_n = float(max(1, (n - 1).bit_length()))
        ops = d * n * log_n * log_n
        return self.overhead_s + ops / (self.spec.peak_flops * self.batched_efficiency)
