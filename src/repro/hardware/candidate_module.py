"""Cycle-stepped model of the candidate selection module (Section V-A).

The hardware keeps, per column, a small circular queue of pre-computed
``key * query`` component products.  Every cycle a d-way comparator tree
picks the best queue head, the greedy-score register of that row is
updated, and a refill of the consumed column is launched down a ``c``-cycle
pipelined path (c = 4).  Because each queue holds ``c`` entries and at most
one entry per cycle is consumed from one column, the refill always lands
exactly when the queue would otherwise run dry, sustaining one iteration
per cycle.

This model steps that machine cycle by cycle — including the in-flight
refills — and must produce *bit-identical* candidates to the software
algorithm in :mod:`repro.core.efficient_search`; the property tests enforce
this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.candidate_search import CandidateResult
from repro.core.efficient_search import PreprocessedKey
from repro.errors import ShapeError
from repro.hardware.config import HardwareConfig
from repro.hardware.modules import StageRecord, scan_cycles

__all__ = ["CandidateSelectionModule", "CandidateSelectionRun"]


class _HardwareSide:
    """One half of the module (the max side or the min side).

    Owns the per-column pointer registers, the circular component
    multiplication buffers, and the comparator tree.
    """

    def __init__(
        self,
        pre: PreprocessedKey,
        query: np.ndarray,
        direction: int,
        depth: int,
    ):
        self._pre = pre
        self._query = query
        self._direction = direction
        self._depth = depth
        n, d = pre.n, pre.d
        positive = query > 0.0
        want_high = positive if direction > 0 else ~positive
        self.ptr = np.where(want_high, n - 1, 0).astype(np.int64)
        self._step = np.where(want_high, -1, 1).astype(np.int64)
        self._queues: list[deque[tuple[float, int]]] = [deque() for _ in range(d)]
        self._inflight: list[tuple[int, int]] = []  # (ready_cycle, column)
        self.sram_reads = 0
        self.multiplies = 0
        self.min_queue_depth = depth

    def initialize(self) -> None:
        """Fill every column queue with ``depth`` products (borrowed
        multipliers, Section V-A 'Initialization')."""
        for _ in range(self._depth):
            for col in range(self._pre.d):
                self._fetch_into_queue(col)

    def _fetch_into_queue(self, col: int) -> None:
        ptr = int(self.ptr[col])
        if not 0 <= ptr < self._pre.n:
            return  # column exhausted
        value, row = self._pre.entry(ptr, col)
        product = value * float(self._query[col])
        self._queues[col].append((product, row))
        self.ptr[col] = ptr + int(self._step[col])
        self.sram_reads += 1
        self.multiplies += 1

    def launch_refill(self, col: int, cycle: int, latency: int) -> None:
        self._inflight.append((cycle + latency, col))

    def drain_refills(self, cycle: int) -> None:
        ready = [(c, col) for (c, col) in self._inflight if c <= cycle]
        self._inflight = [(c, col) for (c, col) in self._inflight if c > cycle]
        for _, col in ready:
            self._fetch_into_queue(col)

    def best_head(self) -> tuple[float, int, int] | None:
        """Comparator-tree result: the best queue head ``(product, row, col)``.

        Ties resolve to the lowest column index, matching the fixed
        priority of a physical comparator tree (and the heap tie-break of
        the software algorithm).
        """
        best: tuple[float, int, int] | None = None
        for col, queue in enumerate(self._queues):
            if not queue:
                continue
            product, row = queue[0]
            if best is None or (
                product > best[0] if self._direction > 0 else product < best[0]
            ):
                best = (product, row, col)
        return best

    def pop(self, col: int) -> tuple[float, int]:
        queue = self._queues[col]
        entry = queue.popleft()
        self.min_queue_depth = min(self.min_queue_depth, len(queue))
        return entry

    @property
    def any_available(self) -> bool:
        return any(self._queues) or bool(self._inflight)


@dataclass
class CandidateSelectionRun:
    """Result of one candidate-selection hardware invocation.

    Attributes
    ----------
    result:
        The selected candidates, identical to the software search.
    record:
        Cycle/operation accounting for the energy and timing models.
    min_buffer_depth:
        Smallest component-buffer occupancy observed after a pop; with the
        paper's balanced ``c = depth = 4`` design this never reaches a
        state where the comparator sees an empty, non-exhausted column.
    """

    result: CandidateResult
    record: StageRecord
    min_buffer_depth: int


class CandidateSelectionModule:
    """The approximation front-end of A3 (Figure 9)."""

    name = "candidate_selection"

    def __init__(self, config: HardwareConfig):
        self.config = config

    def run(
        self,
        pre: PreprocessedKey,
        query: np.ndarray,
        m: int,
        *,
        min_skip_heuristic: bool = True,
        fallback_top1: bool = True,
    ) -> CandidateSelectionRun:
        """Execute ``m`` steady-state iterations plus init and scan phases."""
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (pre.d,):
            raise ShapeError(f"query shape {query.shape} does not match d={pre.d}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        depth = self.config.refill_latency

        max_side = _HardwareSide(pre, query, direction=+1, depth=depth)
        min_side = _HardwareSide(pre, query, direction=-1, depth=depth)
        max_side.initialize()
        min_side.initialize()

        greedy = np.zeros(pre.n, dtype=np.float64)
        running_total = 0.0
        iterations = max_pops = min_pops = skipped = 0
        first_max_row = -1

        for cycle in range(m):
            max_side.drain_refills(cycle)
            min_side.drain_refills(cycle)
            if not max_side.any_available and not min_side.any_available:
                break
            iterations += 1

            head = max_side.best_head()
            if head is not None:
                product, row, col = head
                max_side.pop(col)
                max_side.launch_refill(col, cycle, depth)
                max_pops += 1
                if first_max_row < 0:
                    first_max_row = row
                running_total += product
                if product > 0.0:
                    greedy[row] += product

            if min_skip_heuristic and running_total < 0.0:
                skipped += 1
                continue
            head = min_side.best_head()
            if head is not None:
                product, row, col = head
                min_side.pop(col)
                min_side.launch_refill(col, cycle, depth)
                min_pops += 1
                running_total += product
                if product < 0.0:
                    greedy[row] += product

        candidates = np.flatnonzero(greedy > 0.0)
        used_fallback = False
        if candidates.size == 0 and fallback_top1:
            fallback = first_max_row if first_max_row >= 0 else int(np.argmax(greedy))
            candidates = np.array([fallback], dtype=np.int64)
            used_fallback = True

        result = CandidateResult(
            candidates=candidates.astype(np.int64),
            greedy_scores=greedy,
            iterations=iterations,
            max_pops=max_pops,
            min_pops=min_pops,
            skipped_min=skipped,
            used_fallback=used_fallback,
        )

        init_cycles = depth  # 8d multiplies on 2d borrowed multipliers
        emit_cycles = scan_cycles(pre.n, self.config.scan_width)
        total_cycles = init_cycles + iterations + emit_cycles
        record = StageRecord(
            module=self.name,
            cycles=total_cycles,
            active_cycles=total_cycles,
            ops={
                "multiplies": max_side.multiplies + min_side.multiplies,
                "compares": iterations * 2 * max(0, pre.d - 1),
                "sram_sorted_reads": max_side.sram_reads + min_side.sram_reads,
                "greedy_updates": max_pops + min_pops,
            },
        )
        min_depth = min(max_side.min_queue_depth, min_side.min_queue_depth)
        return CandidateSelectionRun(
            result=result, record=record, min_buffer_depth=min_depth
        )
