"""Hardware configuration for the A3 accelerator model (Sections III and V)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["HardwareConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class HardwareConfig:
    """Synthesis-time parameters of one A3 unit.

    The paper's evaluation instance uses ``n = 320``, ``d = 64`` at 1 GHz in
    TSMC 40 nm (Section VI-D); these defaults mirror it.

    Attributes
    ----------
    n:
        Maximum number of key/value rows held in SRAM.
    d:
        Vector dimension (the paper fixes 64 and zero-pads smaller models).
    clock_hz:
        Pipeline clock; 1 GHz in the paper.
    refill_latency:
        ``c`` — cycles for the candidate-selection refill path (Section V-A);
        the paper's implementation uses 4, matched by 4-deep component
        multiplication buffers.
    scan_width:
        Greedy-score register entries scanned per cycle when emitting
        candidates (16 in the paper), also the post-scoring lane count.
    divider_latency:
        Cycles for the output module's divider (7 in the paper).
    mac_latency:
        Cycles for the output module's multiply-accumulate (2 in the paper).
    input_bits:
        Storage width of one key/value element (sign + i + f = 9 bits for
        the paper's ``i = f = 4``; SRAM sizing rounds to whole bytes).
    queries_in_flight:
        Queries the pipeline overlaps (3: one per module).
    """

    n: int = 320
    d: int = 64
    clock_hz: float = 1.0e9
    refill_latency: int = 4
    scan_width: int = 16
    divider_latency: int = 7
    mac_latency: int = 2
    input_bits: int = 9
    queries_in_flight: int = 3

    def __post_init__(self) -> None:
        if self.n < 1 or self.d < 1:
            raise ConfigError(f"n and d must be >= 1, got n={self.n}, d={self.d}")
        if self.clock_hz <= 0:
            raise ConfigError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.refill_latency < 1:
            raise ConfigError(
                f"refill_latency must be >= 1, got {self.refill_latency}"
            )
        if self.scan_width < 1:
            raise ConfigError(f"scan_width must be >= 1, got {self.scan_width}")
        if self.divider_latency < 0 or self.mac_latency < 0:
            raise ConfigError("latencies must be non-negative")

    @property
    def module_constant(self) -> int:
        """Per-module pipeline constant ``alpha``.

        The paper balances all three base modules to ``n + 9`` cycles per
        query (9 = 7-cycle divide + 2-cycle MAC of the slowest module), so
        the pipeline latency is ``3n + 27``.
        """
        return self.divider_latency + self.mac_latency

    def base_module_cycles(self, rows: int) -> int:
        """Per-query occupancy of one balanced base-pipeline module."""
        return rows + self.module_constant

    def base_latency(self, rows: int) -> int:
        """End-to-end latency of one query in the base pipeline: ``3n + 27``."""
        return self.queries_in_flight * self.base_module_cycles(rows)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def sram_bytes_per_matrix(self) -> int:
        """Key or value buffer size: ``n * d`` elements at one byte each.

        Table I labels these 20 KB for 320 x 64, i.e. one byte per
        element (ASIC SRAM macros pack the 9-bit payload into custom word
        widths; we size by the paper's nominal byte-per-element figure).
        """
        return self.n * self.d

    def sram_bytes_sorted_key(self) -> int:
        """Sorted-key buffer: value plus row-ID per element (two bytes,
        Table I's nominal 40 KB at 320 x 64)."""
        return self.n * self.d * 2


PAPER_CONFIG = HardwareConfig()
"""The configuration the paper synthesizes: n=320, d=64, 1 GHz."""
