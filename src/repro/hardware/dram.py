"""DRAM spill for key/value matrices larger than SRAM (Section III-C).

"When a larger n is desired, we store first n vectors to the SRAM while
leaving other vectors to the DRAM.  Since A3 accesses both the key matrix
and the value matrix in a sequential manner, it is possible to utilize a
prefetcher to read them from a memory without exposing memory latency."

This model quantifies that: rows beyond the SRAM capacity stream from
DRAM; because the access pattern is sequential, a prefetcher overlaps the
transfer with compute, and stalls appear only when the row-streaming
bandwidth demand exceeds what DRAM provides (plus one initial-latency
bubble that the prefetch depth may hide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.config import HardwareConfig

__all__ = ["DramConfig", "SpillTiming", "DramSpillModel"]


@dataclass(frozen=True)
class DramConfig:
    """DRAM channel parameters (one DDR4-3200 channel by default).

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Sustained sequential bandwidth.
    latency_cycles:
        First-access latency in accelerator cycles.
    prefetch_rows:
        Rows the prefetcher requests ahead; enough depth hides the
        first-access latency entirely.
    """

    bandwidth_bytes_per_s: float = 25.6e9
    latency_cycles: int = 200
    prefetch_rows: int = 8

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.latency_cycles < 0 or self.prefetch_rows < 0:
            raise ConfigError("latency and prefetch depth must be >= 0")


@dataclass
class SpillTiming:
    """Timing impact of serving one query with DRAM-resident rows.

    Attributes
    ----------
    sram_rows / dram_rows:
        How the ``n`` rows split across the hierarchy.
    stall_cycles:
        Extra cycles added to the dot-product (and output) streaming
        phases because DRAM could not keep up.
    effective_interval_cycles:
        Per-query reciprocal throughput including stalls.
    bandwidth_limited:
        True when the steady-state row rate exceeds DRAM bandwidth.
    """

    sram_rows: int
    dram_rows: int
    stall_cycles: int
    effective_interval_cycles: int
    bandwidth_limited: bool

    @property
    def slowdown(self) -> float:
        base = self.effective_interval_cycles - self.stall_cycles
        return self.effective_interval_cycles / base if base else math.inf


class DramSpillModel:
    """Base-pipeline timing when ``n`` exceeds the SRAM row capacity."""

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        dram: DramConfig | None = None,
    ):
        self.hardware = hardware or HardwareConfig()
        self.dram = dram or DramConfig()

    @property
    def sram_capacity_rows(self) -> int:
        """Rows of (key + value) that fit on chip: the synthesis-time n."""
        return self.hardware.n

    def bytes_per_row(self) -> int:
        """Key row + value row, one byte per element (Section III-B)."""
        return 2 * self.hardware.d

    def row_stream_cycles(self, rows: int) -> int:
        """Cycles to stream ``rows`` rows from DRAM at full bandwidth."""
        seconds = rows * self.bytes_per_row() / self.dram.bandwidth_bytes_per_s
        return math.ceil(seconds * self.hardware.clock_hz)

    def query_timing(self, n: int) -> SpillTiming:
        """Per-query timing for an ``n``-row attention op.

        The pipeline consumes one row per cycle; DRAM rows arrive at
        ``bandwidth / bytes_per_row`` rows per second.  With sequential
        prefetch the transfer overlaps compute, so the stall is the excess
        of transfer time over compute time, plus any unhidden fraction of
        the first-access latency.
        """
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        sram_rows = min(n, self.sram_capacity_rows)
        dram_rows = n - sram_rows
        base_interval = self.hardware.base_module_cycles(n)
        if dram_rows == 0:
            return SpillTiming(
                sram_rows=sram_rows,
                dram_rows=0,
                stall_cycles=0,
                effective_interval_cycles=base_interval,
                bandwidth_limited=False,
            )
        transfer = self.row_stream_cycles(dram_rows)
        compute = dram_rows  # one row per cycle while streaming
        if self.dram.prefetch_rows > 0:
            # The access pattern is fully sequential and known up front
            # (Section III-C), so the prefetcher issues the first DRAM
            # request while the pipeline is still consuming SRAM rows;
            # the initial latency is exposed only if the SRAM phase is
            # shorter than the DRAM round trip.
            exposed_latency = max(0, self.dram.latency_cycles - sram_rows)
        else:
            exposed_latency = self.dram.latency_cycles
        stall = max(0, transfer - compute) + exposed_latency
        return SpillTiming(
            sram_rows=sram_rows,
            dram_rows=dram_rows,
            stall_cycles=stall,
            effective_interval_cycles=base_interval + stall,
            bandwidth_limited=transfer > compute,
        )

    def max_stall_free_rows(self) -> int:
        """Largest ``n`` the prefetcher serves without bandwidth stalls.

        DRAM keeps up while ``bytes_per_row * clock <= bandwidth``; when
        that holds, any ``n`` streams stall-free (modulo the initial
        latency), otherwise only the SRAM-resident rows do.
        """
        rows_per_second = self.dram.bandwidth_bytes_per_s / self.bytes_per_row()
        if rows_per_second >= self.hardware.clock_hz:
            return 10**9  # effectively unbounded
        return self.sram_capacity_rows
