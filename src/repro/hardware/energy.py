"""Area, power, and energy models (Section VI-D, Table I, Figure 15).

Table I of the paper reports post-synthesis area and power for every A3
module at TSMC 40 nm, 1 GHz.  We encode those numbers as the calibrated
database and compute workload energy the same way the paper does: dynamic
power weighted by each module's activity (cycles in which its datapath
switches) plus static power for the full elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.pipeline import PipelineRun

__all__ = [
    "ModuleAreaPower",
    "TABLE_I",
    "BASE_MODULES",
    "APPROX_MODULES",
    "SRAM_MODULES",
    "total_area_mm2",
    "total_power_mw",
    "EnergyReport",
    "EnergyModel",
    "BREAKDOWN_GROUPS",
]


@dataclass(frozen=True)
class ModuleAreaPower:
    """One row of Table I."""

    area_mm2: float
    dynamic_mw: float
    static_mw: float


TABLE_I: dict[str, ModuleAreaPower] = {
    # Modules for base A3
    "dot_product": ModuleAreaPower(0.098, 14.338, 1.265),
    "exponent": ModuleAreaPower(0.016, 0.224, 0.053),
    "output": ModuleAreaPower(0.062, 50.918, 0.070),
    # Modules for approximation support
    "candidate_selection": ModuleAreaPower(0.277, 19.48, 5.08),
    "post_scoring": ModuleAreaPower(0.010, 2.055, 0.147),
    # SRAM modules
    "sram_key": ModuleAreaPower(0.350, 2.901, 0.987),
    "sram_value": ModuleAreaPower(0.350, 2.901, 0.987),
    "sram_sorted_key": ModuleAreaPower(0.919, 6.100, 2.913),
}
"""Area (mm^2), dynamic power (mW), static power (mW) per module."""

BASE_MODULES = ("dot_product", "exponent", "output", "sram_key", "sram_value")
APPROX_MODULES = BASE_MODULES + (
    "candidate_selection",
    "post_scoring",
    "sram_sorted_key",
)
SRAM_MODULES = ("sram_key", "sram_value", "sram_sorted_key")

# SRAM activity follows the module that streams it.
_SRAM_DRIVER = {
    "sram_key": "dot_product",
    "sram_value": "output",
    "sram_sorted_key": "candidate_selection",
}

BREAKDOWN_GROUPS: dict[str, tuple[str, ...]] = {
    "Candidate Sel.": ("candidate_selection",),
    "Dot Product": ("dot_product",),
    "Exponent Comp. (w/ Post-Scoring Selection)": ("exponent", "post_scoring"),
    "Output Computation": ("output",),
    "Memory": SRAM_MODULES,
}
"""The five energy groups plotted in Figure 15b."""


def total_area_mm2(modules: tuple[str, ...] = APPROX_MODULES) -> float:
    """Summed module area; the full A3 totals 2.082 mm^2 in Table I."""
    return sum(TABLE_I[m].area_mm2 for m in modules)


def total_power_mw(
    modules: tuple[str, ...] = APPROX_MODULES,
) -> tuple[float, float]:
    """(dynamic, static) mW with every module fully active; Table I's
    bottom row reports 98.92 mW dynamic and 11.502 mW static."""
    dynamic = sum(TABLE_I[m].dynamic_mw for m in modules)
    static = sum(TABLE_I[m].static_mw for m in modules)
    return dynamic, static


@dataclass
class EnergyReport:
    """Per-module energy for one simulated pipeline run.

    Attributes
    ----------
    module_energy_j:
        Joules per module (dynamic + static).
    total_energy_j:
        Sum over modules.
    elapsed_seconds:
        Wall-clock duration of the simulated run.
    num_queries:
        Attention operations completed.
    """

    module_energy_j: dict[str, float]
    total_energy_j: float
    elapsed_seconds: float
    num_queries: int

    def ops_per_joule(self) -> float:
        """The energy-efficiency metric of Figure 15a."""
        return self.num_queries / self.total_energy_j if self.total_energy_j else 0.0

    def energy_per_op_j(self) -> float:
        return self.total_energy_j / self.num_queries if self.num_queries else 0.0

    def average_power_w(self) -> float:
        return self.total_energy_j / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def breakdown(
        self, groups: dict[str, tuple[str, ...]] = BREAKDOWN_GROUPS
    ) -> dict[str, float]:
        """Energy fractions by Figure 15b group (fractions sum to 1)."""
        fractions: dict[str, float] = {}
        for label, members in groups.items():
            energy = sum(self.module_energy_j.get(m, 0.0) for m in members)
            fractions[label] = energy / self.total_energy_j if self.total_energy_j else 0.0
        return fractions


class EnergyModel:
    """Maps a :class:`~repro.hardware.pipeline.PipelineRun` to energy.

    ``include_approximation`` selects whether the approximation-support
    modules (candidate selection, post-scoring, sorted-key SRAM) exist in
    the synthesized instance: the base A3 of Section III does not pay even
    their static power.
    """

    def __init__(self, include_approximation: bool):
        self.include_approximation = include_approximation
        self.modules = APPROX_MODULES if include_approximation else BASE_MODULES

    def energy(self, run: PipelineRun) -> EnergyReport:
        """Integrate Table I power over the run's activity profile."""
        if run.total_cycles < 0:
            raise ConfigError("run has negative total cycles")
        clock = run.config.clock_hz
        elapsed_s = run.total_cycles / clock
        module_energy: dict[str, float] = {}
        for module in self.modules:
            row = TABLE_I[module]
            driver = _SRAM_DRIVER.get(module, module)
            active = run.module_active_cycles.get(driver, 0)
            dynamic_j = row.dynamic_mw * 1e-3 * (active / clock)
            static_j = row.static_mw * 1e-3 * elapsed_s
            module_energy[module] = dynamic_j + static_j
        return EnergyReport(
            module_energy_j=module_energy,
            total_energy_j=sum(module_energy.values()),
            elapsed_seconds=elapsed_s,
            num_queries=run.num_queries,
        )
