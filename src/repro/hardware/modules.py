"""Cycle and activity models of the three base A3 pipeline modules.

Each module reports a :class:`StageRecord` for a query: how many cycles it
occupies the module and how many operations of each kind it performs.  The
cycle counts follow Section III-A (every base module is balanced to
``rows + 9`` cycles per query); the operation counts drive the energy
model's activity factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.config import HardwareConfig

__all__ = [
    "StageRecord",
    "DotProductModule",
    "ExponentModule",
    "OutputModule",
]


@dataclass
class StageRecord:
    """Occupancy and activity of one module for one query.

    Attributes
    ----------
    module:
        Name matching the Table I row ("dot_product", "exponent",
        "output", "candidate_selection", "post_scoring").
    cycles:
        Cycles the query occupies this module (its reciprocal-throughput
        contribution).
    active_cycles:
        Cycles in which the module's datapath actually switches; the rest
        of the occupancy is pipeline fill/drain.
    ops:
        Operation counts by kind (multiplies, adds, lut lookups, ...).
    """

    module: str
    cycles: int
    active_cycles: int
    ops: dict[str, int] = field(default_factory=dict)


class DotProductModule:
    """Module 1: d multipliers + a d-way adder tree (Figure 4, left).

    Streams one key row per cycle; each cycle performs ``d`` multiplies and
    ``d - 1`` adds, plus the running-max comparison used later by the
    exponent module.
    """

    name = "dot_product"

    def __init__(self, config: HardwareConfig):
        self.config = config

    def process(self, rows: int) -> StageRecord:
        if rows < 0:
            raise ValueError(f"rows must be >= 0, got {rows}")
        d = self.config.d
        cycles = self.config.base_module_cycles(rows)
        return StageRecord(
            module=self.name,
            cycles=cycles,
            active_cycles=rows,
            ops={
                "multiplies": rows * d,
                "adds": rows * max(0, d - 1),
                "compares": rows,  # running maximum (Fig. 5 L9-10)
                "sram_key_reads": rows * d,
            },
        )


class ExponentModule:
    """Module 2: max-subtraction, split-LUT exponent, exp-sum accumulation."""

    name = "exponent"

    def __init__(self, config: HardwareConfig):
        self.config = config

    def process(self, rows: int) -> StageRecord:
        if rows < 0:
            raise ValueError(f"rows must be >= 0, got {rows}")
        cycles = self.config.base_module_cycles(rows)
        return StageRecord(
            module=self.name,
            cycles=cycles,
            active_cycles=rows,
            ops={
                "subtracts": rows,      # dot - max
                "lut_lookups": 2 * rows,  # upper and lower half tables
                "multiplies": rows,     # combine the two halves
                "adds": rows,           # expsum accumulation
            },
        )


class OutputModule:
    """Module 3: per-row divide (weight) then d-wide multiply-accumulate.

    The divider takes 7 cycles and the MAC 2, giving this module the
    longest constant of the pipeline (``rows + 9``) and setting the base
    throughput of ``n + 9`` cycles per query.
    """

    name = "output"

    def __init__(self, config: HardwareConfig):
        self.config = config

    def process(self, rows: int) -> StageRecord:
        if rows < 0:
            raise ValueError(f"rows must be >= 0, got {rows}")
        d = self.config.d
        cycles = self.config.base_module_cycles(rows)
        return StageRecord(
            module=self.name,
            cycles=cycles,
            active_cycles=rows,
            ops={
                "divides": rows,
                "multiplies": rows * d,
                "adds": rows * d,
                "sram_value_reads": rows * d,
            },
        )


def scan_cycles(entries: int, width: int) -> int:
    """Cycles to linearly scan ``entries`` register-file slots ``width`` at
    a time (used by the candidate emitter and the post-scorer)."""
    if entries < 0:
        raise ValueError(f"entries must be >= 0, got {entries}")
    return math.ceil(entries / width) if entries else 0
