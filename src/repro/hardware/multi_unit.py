"""Multiple A3 units (Section III-C, "Use of Multiple A3 Units").

The paper notes two ways to scale out: independent attention computations
map to different units (different key/value sets), and multiple queries to
the *same* key/value set can be spread across units that each hold a copy.
Both patterns have no inter-unit communication, so scaling is near-perfect
up to the host's dispatch bandwidth; this model adds a per-query dispatch
overhead to capture that ceiling.

This is the mechanism behind the paper's claim that 6-7 conservative
approximate A3 units beat the Titan V on BERT's batched self-attention
(Section VI-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.hardware.pipeline import ApproxA3Pipeline, BaseA3Pipeline, QueryShape

__all__ = ["MultiUnitConfig", "MultiUnitResult", "MultiUnitA3"]


@dataclass(frozen=True)
class MultiUnitConfig:
    """Scale-out parameters.

    Attributes
    ----------
    units:
        Number of A3 unit replicas.
    dispatch_overhead_cycles:
        Host-side cycles to hand one query (a d-element vector copy) to a
        unit; bounds the aggregate throughput.
    """

    units: int = 1
    dispatch_overhead_cycles: int = 8

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ConfigError(f"units must be >= 1, got {self.units}")
        if self.dispatch_overhead_cycles < 0:
            raise ConfigError("dispatch_overhead_cycles must be >= 0")


@dataclass
class MultiUnitResult:
    """Aggregate timing of a query stream over several units."""

    units: int
    total_cycles: int
    num_queries: int
    per_unit_cycles: list[int]
    clock_hz: float

    def throughput_qps(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.num_queries * self.clock_hz / self.total_cycles

    @property
    def scaling_efficiency(self) -> float:
        """Achieved speedup over one unit divided by the unit count."""
        single = max(self.per_unit_cycles) * self.units  # lower bound proxy
        return min(1.0, single / (self.total_cycles * self.units))


class MultiUnitA3:
    """Round-robin query dispatch over replicated A3 units."""

    def __init__(
        self,
        pipeline: BaseA3Pipeline | ApproxA3Pipeline,
        config: MultiUnitConfig,
    ):
        self.pipeline = pipeline
        self.config = config

    def run(self, shapes: Sequence[QueryShape]) -> MultiUnitResult:
        """Simulate a stream of queries spread round-robin across units."""
        units = self.config.units
        buckets: list[list[QueryShape]] = [[] for _ in range(units)]
        for index, shape in enumerate(shapes):
            buckets[index % units].append(shape)
        per_unit: list[int] = []
        for bucket in buckets:
            if not bucket:
                per_unit.append(0)
                continue
            if isinstance(self.pipeline, BaseA3Pipeline):
                run = self.pipeline.run([s.n for s in bucket])
            else:
                run = self.pipeline.run(bucket)
            per_unit.append(run.total_cycles)
        # The host dispatches queries serially; units compute in parallel.
        dispatch = self.config.dispatch_overhead_cycles * len(shapes)
        total = max(max(per_unit, default=0), dispatch)
        return MultiUnitResult(
            units=units,
            total_cycles=total,
            num_queries=len(shapes),
            per_unit_cycles=per_unit,
            clock_hz=self.pipeline.config.clock_hz,
        )

    def units_to_match(
        self, target_qps: float, shape: QueryShape, max_units: int = 64
    ) -> int | None:
        """Smallest unit count whose aggregate throughput reaches
        ``target_qps`` on a stream of identical ``shape`` queries, or
        ``None`` if even ``max_units`` cannot (dispatch-bound)."""
        if target_qps <= 0:
            raise ConfigError(f"target_qps must be positive, got {target_qps}")
        probe_queries = 256
        for units in range(1, max_units + 1):
            scaled = MultiUnitA3(
                self.pipeline,
                MultiUnitConfig(
                    units=units,
                    dispatch_overhead_cycles=self.config.dispatch_overhead_cycles,
                ),
            )
            result = scaled.run([shape] * probe_queries)
            if result.throughput_qps() >= target_qps:
                return units
        return None

    def ideal_units_to_match(self, target_qps: float, shape: QueryShape) -> float:
        """Continuous estimate ignoring dispatch: target / single-unit qps."""
        if isinstance(self.pipeline, BaseA3Pipeline):
            single = self.pipeline.run([shape.n] * 64).throughput_qps()
        else:
            single = self.pipeline.run([shape] * 64).throughput_qps()
        return target_qps / single if single else math.inf
