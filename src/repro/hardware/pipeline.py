"""Pipeline composition and cycle-level simulation of A3 (Sections III, V).

Two pipeline models are provided:

* :class:`BaseA3Pipeline` — the three-module base design.  Every module is
  balanced to ``rows + 9`` cycles, so a query's latency is ``3n + 27`` and
  a stream of queries completes one every ``n + 9`` cycles (Section III-A,
  "Throughput and Latency").
* :class:`ApproxA3Pipeline` — the five-module approximate design of
  Figure 10.  Per-query stage occupancies follow the selection trace
  ``(n, M, C, K)``: candidate selection ``~M``, dot product ``~C``,
  post-scoring + exponent ``~K``, output ``~K``, for a latency of
  ``M + C + K + K + alpha``.

Both feed a generic in-order pipeline recurrence:
``finish[s][q] = max(finish[s][q-1], finish[s-1][q]) + time[s][q]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.approximate import AttentionTrace
from repro.errors import ConfigError
from repro.hardware.config import HardwareConfig
from repro.hardware.modules import (
    DotProductModule,
    ExponentModule,
    OutputModule,
    scan_cycles,
)

__all__ = [
    "PipelineTiming",
    "PipelineRun",
    "QueryShape",
    "simulate_pipeline",
    "BaseA3Pipeline",
    "ApproxA3Pipeline",
]


@dataclass
class PipelineTiming:
    """Raw output of the pipeline recurrence.

    Attributes
    ----------
    finish_cycles:
        ``finish_cycles[s][q]`` — cycle at which stage ``s`` completes
        query ``q``.
    latencies:
        Per-query end-to-end latency in cycles (queries enter back-to-back
        at cycle 0, so latency of query ``q`` is its final finish time
        minus its earliest possible start).
    total_cycles:
        Completion time of the last query.
    """

    finish_cycles: list[list[int]]
    latencies: list[int]
    total_cycles: int


def simulate_pipeline(stage_times: Sequence[Sequence[int]]) -> PipelineTiming:
    """Simulate an in-order pipeline with per-query, per-stage occupancies.

    ``stage_times[q][s]`` is the number of cycles query ``q`` occupies
    stage ``s``.  Queries are issued in order and a stage serves one query
    at a time.
    """
    if not stage_times:
        return PipelineTiming(finish_cycles=[], latencies=[], total_cycles=0)
    num_stages = len(stage_times[0])
    if num_stages == 0:
        raise ConfigError("stage_times rows must be non-empty")
    for row in stage_times:
        if len(row) != num_stages:
            raise ConfigError("all queries must visit the same stages")

    finish = [[0] * len(stage_times) for _ in range(num_stages)]
    arrivals: list[int] = []
    for q, row in enumerate(stage_times):
        arrival = 0  # queries are queued and ready at cycle 0
        arrivals.append(arrival)
        for s in range(num_stages):
            prev_same_stage = finish[s][q - 1] if q > 0 else 0
            prev_stage = finish[s - 1][q] if s > 0 else arrival
            finish[s][q] = max(prev_same_stage, prev_stage) + int(row[s])
    # Latency of an unloaded query is the sum of its own stage times; under
    # back-to-back issue the measured latency includes queueing.  Report
    # the unloaded (service) latency, which is what the paper's Figure 14b
    # plots, alongside the loaded completion times.
    service_latencies = [sum(int(t) for t in row) for row in stage_times]
    return PipelineTiming(
        finish_cycles=finish,
        latencies=service_latencies,
        total_cycles=finish[num_stages - 1][-1],
    )


@dataclass
class QueryShape:
    """Per-query selection sizes driving the approximate pipeline timing.

    Attributes
    ----------
    n:
        Rows in the key matrix for this query.
    m:
        Candidate-selection iterations executed.
    candidates:
        ``C`` — rows surviving candidate selection.
    kept:
        ``K`` — rows surviving post-scoring selection.
    """

    n: int
    m: int
    candidates: int
    kept: int

    @classmethod
    def from_trace(cls, trace: AttentionTrace) -> "QueryShape":
        return cls(
            n=trace.n,
            m=trace.m,
            candidates=trace.num_candidates,
            kept=trace.num_kept,
        )

    @classmethod
    def exact(cls, n: int) -> "QueryShape":
        """The no-approximation shape: every row flows through every stage."""
        return cls(n=n, m=0, candidates=n, kept=n)


@dataclass
class PipelineRun:
    """Aggregated outcome of simulating a query stream on one pipeline.

    The per-module activity map feeds
    :class:`repro.hardware.energy.EnergyModel`.
    """

    name: str
    config: HardwareConfig
    num_queries: int
    total_cycles: int
    latencies: list[int] = field(repr=False)
    module_active_cycles: dict[str, int] = field(default_factory=dict)
    module_occupied_cycles: dict[str, int] = field(default_factory=dict)
    ops: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def cycles_per_query(self) -> float:
        """Steady-state reciprocal throughput."""
        return self.total_cycles / self.num_queries if self.num_queries else 0.0

    def throughput_qps(self) -> float:
        """Sustained queries per second."""
        if self.total_cycles == 0:
            return 0.0
        return self.num_queries / self.config.cycles_to_seconds(self.total_cycles)

    def mean_latency_cycles(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    def mean_latency_seconds(self) -> float:
        return self.config.cycles_to_seconds(self.mean_latency_cycles())

    def _merge_ops(self, module: str, ops: dict[str, int]) -> None:
        bucket = self.ops.setdefault(module, {})
        for kind, count in ops.items():
            bucket[kind] = bucket.get(kind, 0) + count


class BaseA3Pipeline:
    """The base (no approximation) A3 pipeline of Figure 4."""

    name = "base_a3"

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config or HardwareConfig()
        self.dot = DotProductModule(self.config)
        self.exponent = ExponentModule(self.config)
        self.output = OutputModule(self.config)

    def query_latency_cycles(self, rows: int) -> int:
        """Closed form: ``3n + 27`` for the paper's constants."""
        return self.config.base_latency(rows)

    def query_interval_cycles(self, rows: int) -> int:
        """Closed form reciprocal throughput: ``n + 9``."""
        return self.config.base_module_cycles(rows)

    def run(self, rows_per_query: Sequence[int]) -> PipelineRun:
        """Simulate a stream of queries, one entry of ``rows_per_query`` each."""
        records_per_query = [
            [self.dot.process(r), self.exponent.process(r), self.output.process(r)]
            for r in rows_per_query
        ]
        stage_times = [[rec.cycles for rec in recs] for recs in records_per_query]
        timing = simulate_pipeline(stage_times)
        run = PipelineRun(
            name=self.name,
            config=self.config,
            num_queries=len(rows_per_query),
            total_cycles=timing.total_cycles,
            latencies=timing.latencies,
        )
        for recs in records_per_query:
            for rec in recs:
                run.module_active_cycles[rec.module] = (
                    run.module_active_cycles.get(rec.module, 0) + rec.active_cycles
                )
                run.module_occupied_cycles[rec.module] = (
                    run.module_occupied_cycles.get(rec.module, 0) + rec.cycles
                )
                run._merge_ops(rec.module, rec.ops)
        return run


class ApproxA3Pipeline:
    """A3 with approximation support (Figure 10 dataflow)."""

    name = "approx_a3"

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config or HardwareConfig()

    # ------------------------------------------------------------------
    # stage occupancy models
    # ------------------------------------------------------------------
    def candidate_stage_cycles(self, shape: QueryShape) -> int:
        """Init (buffer fill) + M iterations + greedy-score scan."""
        cfg = self.config
        return (
            cfg.refill_latency
            + shape.m
            + scan_cycles(shape.n, cfg.scan_width)
        )

    def dot_stage_cycles(self, shape: QueryShape) -> int:
        return shape.candidates + self.config.module_constant

    def exponent_stage_cycles(self, shape: QueryShape) -> int:
        """Post-scoring filter overlapped with the exponent pipeline.

        The 16-lane filter consumes ``C`` entries at ``ceil(C/16)`` cycles
        while the exponent unit consumes the ``K`` survivors at one per
        cycle; the slower of the two paces the stage.
        """
        cfg = self.config
        filter_cycles = scan_cycles(shape.candidates, cfg.scan_width) + 1
        return max(filter_cycles, shape.kept) + cfg.module_constant

    def output_stage_cycles(self, shape: QueryShape) -> int:
        return shape.kept + self.config.module_constant

    def query_latency_cycles(self, shape: QueryShape) -> int:
        """The paper's ``M + C + K + K + alpha`` closed form."""
        return (
            self.candidate_stage_cycles(shape)
            + self.dot_stage_cycles(shape)
            + self.exponent_stage_cycles(shape)
            + self.output_stage_cycles(shape)
        )

    # ------------------------------------------------------------------
    # stream simulation
    # ------------------------------------------------------------------
    def run(self, shapes: Sequence[QueryShape]) -> PipelineRun:
        """Simulate a stream of queries described by their selection shapes."""
        stage_times = []
        for shape in shapes:
            stage_times.append(
                [
                    self.candidate_stage_cycles(shape),
                    self.dot_stage_cycles(shape),
                    self.exponent_stage_cycles(shape),
                    self.output_stage_cycles(shape),
                ]
            )
        timing = simulate_pipeline(stage_times)
        run = PipelineRun(
            name=self.name,
            config=self.config,
            num_queries=len(shapes),
            total_cycles=timing.total_cycles,
            latencies=timing.latencies,
        )
        cfg = self.config
        for shape, times in zip(shapes, stage_times):
            cand, dot, expo, outp = times
            post_cycles = scan_cycles(shape.candidates, cfg.scan_width) + 1
            activity = {
                "candidate_selection": cand,
                "dot_product": shape.candidates,
                "post_scoring": post_cycles,
                "exponent": shape.kept,
                "output": shape.kept,
            }
            occupancy = {
                "candidate_selection": cand,
                "dot_product": dot,
                "post_scoring": post_cycles,
                "exponent": expo,
                "output": outp,
            }
            for module, cycles in activity.items():
                run.module_active_cycles[module] = (
                    run.module_active_cycles.get(module, 0) + cycles
                )
            for module, cycles in occupancy.items():
                run.module_occupied_cycles[module] = (
                    run.module_occupied_cycles.get(module, 0) + cycles
                )
            run._merge_ops(
                "dot_product",
                {
                    "multiplies": shape.candidates * cfg.d,
                    "sram_key_reads": shape.candidates * cfg.d,
                },
            )
            run._merge_ops(
                "candidate_selection",
                {
                    "multiplies": 2 * cfg.refill_latency * cfg.d + 2 * shape.m,
                    "sram_sorted_reads": 2 * cfg.refill_latency * cfg.d
                    + 2 * shape.m,
                },
            )
            run._merge_ops("post_scoring", {"compares": shape.candidates})
            run._merge_ops("exponent", {"lut_lookups": 2 * shape.kept})
            run._merge_ops(
                "output",
                {
                    "divides": shape.kept,
                    "multiplies": shape.kept * cfg.d,
                    "sram_value_reads": shape.kept * cfg.d,
                },
            )
        return run

    def run_traces(self, traces: Sequence[AttentionTrace]) -> PipelineRun:
        """Convenience: simulate directly from software attention traces."""
        return self.run([QueryShape.from_trace(t) for t in traces])
