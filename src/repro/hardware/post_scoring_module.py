"""The post-scoring selection module (Section V-B).

Sixteen subtract-and-compare lanes stream the candidate dot-product
results, keeping only rows whose score trails the maximum by less than the
threshold gap.  The module sits at the entrance of the exponent
computation module, so its arithmetic is identical to
:func:`repro.core.post_scoring.post_scoring_select`; this model adds cycle
and operation accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.post_scoring import PostScoringResult, post_scoring_select
from repro.hardware.config import HardwareConfig
from repro.hardware.modules import StageRecord, scan_cycles

__all__ = ["PostScoringModule", "PostScoringRun"]


@dataclass
class PostScoringRun:
    """Functional result plus hardware accounting for one query."""

    result: PostScoringResult
    record: StageRecord


class PostScoringModule:
    """16-lane subtract/compare filter in front of the exponent module."""

    name = "post_scoring"

    def __init__(self, config: HardwareConfig):
        self.config = config

    def run(self, scores: np.ndarray, t_percent: float) -> PostScoringRun:
        """Filter candidate scores; cycles scale with ``ceil(C / lanes)``."""
        scores = np.asarray(scores, dtype=np.float64)
        result = post_scoring_select(scores, t_percent)
        entries = int(scores.shape[0])
        cycles = scan_cycles(entries, self.config.scan_width) + 1  # +1: max reg
        record = StageRecord(
            module=self.name,
            cycles=cycles,
            active_cycles=cycles,
            ops={"subtracts": entries, "compares": entries},
        )
        return PostScoringRun(result=result, record=record)
