"""SRAM buffer model for the A3 accelerator.

A3 holds the key matrix, the value matrix, and (with approximation
support) the column-sorted key matrix in on-chip SRAM (Table I: 20 KB +
20 KB + 40 KB for n=320, d=64).  The model tracks occupancy and access
counts; accesses feed the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CapacityError

__all__ = ["SramBuffer", "build_standard_buffers"]


@dataclass
class SramBuffer:
    """One SRAM macro with capacity checking and access counting.

    Attributes
    ----------
    name:
        Identifier used by the energy model (must match a Table I row for
        the standard buffers).
    capacity_bytes:
        Total capacity.
    word_bytes:
        Bytes transferred per access.
    """

    name: str
    capacity_bytes: int
    word_bytes: int = 1
    reads: int = 0
    writes: int = 0
    used_bytes: int = 0
    _data: np.ndarray | None = field(default=None, repr=False)

    def load_matrix(self, matrix: np.ndarray, element_bytes: int = 1) -> None:
        """Copy a matrix into the buffer (the offload step, Section III-C)."""
        matrix = np.asarray(matrix)
        needed = matrix.size * element_bytes
        if needed > self.capacity_bytes:
            raise CapacityError(
                f"{self.name}: {needed} bytes exceed capacity "
                f"{self.capacity_bytes} bytes"
            )
        self._data = matrix
        self.used_bytes = needed
        self.writes += matrix.size

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise CapacityError(f"{self.name}: no matrix loaded")
        return self._data

    @property
    def loaded(self) -> bool:
        return self._data is not None

    def read_row(self, row: int) -> np.ndarray:
        """Read one matrix row, counting one access per element."""
        out = self.data[row]
        self.reads += int(np.size(out))
        return out

    def read_element(self, *index: int) -> float:
        self.reads += 1
        return self.data[index]

    def count_reads(self, elements: int) -> None:
        """Account for bulk sequential reads without materializing them."""
        self.reads += elements

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes if self.capacity_bytes else 0.0

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0


def build_standard_buffers(n: int = 320, d: int = 64) -> dict[str, SramBuffer]:
    """The three SRAM macros of Table I, sized for the given ``(n, d)``.

    Returns buffers keyed ``"key"``, ``"value"``, ``"sorted_key"``; at the
    paper's n=320, d=64 their capacities are 20 KB, 20 KB, and 40 KB.
    """
    matrix_bytes = n * d  # one byte per 9-bit element, padded
    sorted_bytes = n * d * 2  # element + row ID
    return {
        "key": SramBuffer("key", matrix_bytes, word_bytes=1),
        "value": SramBuffer("value", matrix_bytes, word_bytes=1),
        "sorted_key": SramBuffer("sorted_key", sorted_bytes, word_bytes=2),
    }
