"""Evaluation metrics for the three workloads and the selection stages."""

from repro.metrics.classification import accuracy
from repro.metrics.ranking import average_precision, hits_at_k, mean_average_precision
from repro.metrics.selection import (
    mean_candidate_fraction,
    mean_kept_fraction,
    selection_summary,
    topk_retention,
)
from repro.metrics.span import exact_match, mean_span_f1, span_f1

__all__ = [
    "accuracy",
    "average_precision",
    "hits_at_k",
    "mean_average_precision",
    "mean_candidate_fraction",
    "mean_kept_fraction",
    "selection_summary",
    "topk_retention",
    "exact_match",
    "mean_span_f1",
    "span_f1",
]
