"""Classification accuracy (the bAbI metric)."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["accuracy"]


def accuracy(predictions: Sequence[int], targets: Sequence[int]) -> float:
    """Fraction of exact matches between predictions and targets."""
    if len(predictions) != len(targets):
        raise ValueError(
            f"length mismatch: {len(predictions)} predictions vs "
            f"{len(targets)} targets"
        )
    if not targets:
        return 0.0
    correct = sum(int(p == t) for p, t in zip(predictions, targets))
    return correct / len(targets)
