"""Ranked-retrieval metrics (the WikiMovies metric is Mean Average Precision)."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["average_precision", "mean_average_precision", "hits_at_k"]


def average_precision(ranked: Sequence[int], relevant: set[int]) -> float:
    """Average precision of one ranked list against a relevant set.

    AP averages the precision at each rank where a relevant item appears,
    normalized by the number of relevant items.
    """
    if not relevant:
        raise ValueError("relevant set must be non-empty")
    hits = 0
    precision_sum = 0.0
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            precision_sum += hits / rank
        if hits == len(relevant):
            break
    return precision_sum / len(relevant)


def mean_average_precision(
    rankings: Sequence[Sequence[int]], relevant_sets: Sequence[set[int]]
) -> float:
    """Mean of per-query average precision."""
    if len(rankings) != len(relevant_sets):
        raise ValueError(
            f"length mismatch: {len(rankings)} rankings vs "
            f"{len(relevant_sets)} relevant sets"
        )
    if not rankings:
        return 0.0
    total = sum(
        average_precision(r, rel) for r, rel in zip(rankings, relevant_sets)
    )
    return total / len(rankings)


def hits_at_k(ranked: Sequence[int], relevant: set[int], k: int) -> float:
    """1.0 if any relevant item appears in the first ``k`` ranks."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 1.0 if any(item in relevant for item in list(ranked)[:k]) else 0.0
