"""Selection-quality metrics for the approximation stages.

These quantify what Figures 11b, 12b, and 13b plot: how many rows each
stage keeps, and whether the rows that matter (the true top-k by exact
score) survive.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.approximate import AttentionTrace

__all__ = [
    "topk_retention",
    "mean_candidate_fraction",
    "mean_kept_fraction",
    "selection_summary",
]


def topk_retention(
    exact_scores: np.ndarray, kept_rows: np.ndarray, k: int
) -> float:
    """Fraction of the k highest-scoring rows present in ``kept_rows``."""
    exact_scores = np.asarray(exact_scores, dtype=np.float64)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, exact_scores.shape[0])
    top = np.argpartition(exact_scores, -k)[-k:]
    return float(np.isin(top, np.asarray(kept_rows)).mean())


def mean_candidate_fraction(traces: Sequence[AttentionTrace]) -> float:
    """Mean normalized candidate count ``C/n`` (Figure 11b)."""
    if not traces:
        return 0.0
    return sum(t.candidate_fraction for t in traces) / len(traces)


def mean_kept_fraction(traces: Sequence[AttentionTrace]) -> float:
    """Mean normalized selected-entry count ``K/n`` (Figure 12b)."""
    if not traces:
        return 0.0
    return sum(t.kept_fraction for t in traces) / len(traces)


def selection_summary(traces: Sequence[AttentionTrace]) -> dict[str, float]:
    """Aggregate selection statistics over a set of traces."""
    if not traces:
        return {
            "calls": 0,
            "mean_n": 0.0,
            "mean_m": 0.0,
            "mean_candidates": 0.0,
            "mean_kept": 0.0,
            "candidate_fraction": 0.0,
            "kept_fraction": 0.0,
            "fallback_fraction": 0.0,
        }
    count = len(traces)
    return {
        "calls": count,
        "mean_n": sum(t.n for t in traces) / count,
        "mean_m": sum(t.m for t in traces) / count,
        "mean_candidates": sum(t.num_candidates for t in traces) / count,
        "mean_kept": sum(t.num_kept for t in traces) / count,
        "candidate_fraction": mean_candidate_fraction(traces),
        "kept_fraction": mean_kept_fraction(traces),
        "fallback_fraction": sum(t.used_fallback for t in traces) / count,
    }
