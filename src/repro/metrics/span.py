"""Extractive-QA span metrics (the SQuAD metric is token-overlap F1)."""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

__all__ = ["span_f1", "exact_match", "mean_span_f1"]


def span_f1(predicted: Sequence[str], gold: Sequence[str]) -> float:
    """Token-multiset F1 between a predicted and a gold answer span.

    This is the SQuAD evaluation-script definition: precision and recall
    over the multiset intersection of tokens.
    """
    if not predicted and not gold:
        return 1.0
    if not predicted or not gold:
        return 0.0
    overlap = Counter(predicted) & Counter(gold)
    common = sum(overlap.values())
    if common == 0:
        return 0.0
    precision = common / len(predicted)
    recall = common / len(gold)
    return 2.0 * precision * recall / (precision + recall)


def exact_match(predicted: Sequence[str], gold: Sequence[str]) -> float:
    """1.0 when the token sequences match exactly."""
    return 1.0 if list(predicted) == list(gold) else 0.0


def mean_span_f1(
    predictions: Sequence[Sequence[str]], golds: Sequence[Sequence[str]]
) -> float:
    """Mean span F1 over a test set."""
    if len(predictions) != len(golds):
        raise ValueError(
            f"length mismatch: {len(predictions)} predictions vs "
            f"{len(golds)} golds"
        )
    if not predictions:
        return 0.0
    return sum(span_f1(p, g) for p, g in zip(predictions, golds)) / len(predictions)
