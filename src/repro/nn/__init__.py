"""NumPy autograd NN substrate and the three paper workload models.

Public API: :class:`~repro.nn.tensor.Tensor`, the layers in
:mod:`repro.nn.layers`, optimizers in :mod:`repro.nn.optim`, and the
models :class:`~repro.nn.memn2n.MemN2N`,
:class:`~repro.nn.kv_memn2n.KVMemN2N`,
:class:`~repro.nn.transformer.BertMini`.
"""

from repro.nn.kv_memn2n import EncodedKvBatch, KVMemN2N, KVMemN2NConfig
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.memn2n import EncodedStories, MemN2N, MemN2NConfig
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.nn.transformer import (
    BertConfig,
    BertMini,
    EncoderLayer,
    MultiHeadSelfAttention,
)

__all__ = [
    "EncodedKvBatch",
    "KVMemN2N",
    "KVMemN2NConfig",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "Sequential",
    "EncodedStories",
    "MemN2N",
    "MemN2NConfig",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "Tensor",
    "BertConfig",
    "BertMini",
    "EncoderLayer",
    "MultiHeadSelfAttention",
]
