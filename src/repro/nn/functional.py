"""Composite and fused operations for the autograd substrate.

Softmax-family functions are implemented as fused primitives (with
analytically derived backward passes) for numerical stability — the same
max-subtraction trick the A3 exponent module uses in hardware.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "masked_softmax",
    "embedding",
    "layer_norm",
    "dropout",
    "attention",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as a fused primitive."""
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            grad = np.asarray(grad)
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return x._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """``log(softmax(x))`` computed via the log-sum-exp trick."""
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad):
        if x.requires_grad:
            grad = np.asarray(grad)
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return x._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` unnormalized scores.
    targets:
        ``(batch,)`` integer class indices.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2 or targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"incompatible shapes: logits {logits.shape}, targets {targets.shape}"
        )
    lsm = log_softmax(logits, axis=-1)
    batch = targets.shape[0]
    picked = lsm[np.arange(batch), targets]
    return -(picked.sum() * (1.0 / batch))


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero weight wherever ``mask`` is False.

    Used for padded memory slots and padded sequence positions; padding
    must never receive attention weight.
    """
    mask = np.asarray(mask, dtype=bool)
    neg = Tensor(np.where(mask, 0.0, -1e9))
    return softmax(x + neg, axis=axis)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding table with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def layer_norm(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last axis."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = (var + eps) ** -0.5
    return centered * inv_std * gamma + beta


def dropout(
    x: Tensor, p: float, rng: np.random.Generator, training: bool
) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError(f"dropout probability must be < 1, got {p}")
    keep = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(keep)


def attention(
    key: Tensor, value: Tensor, query: Tensor, mask: np.ndarray | None = None
) -> Tensor:
    """Differentiable soft attention for training-time graphs.

    Shapes follow the paper: ``key``/``value`` are ``(..., n, d)`` and
    ``query`` is ``(..., d)``; the output is ``(..., d_v)``.  The
    inference-time path replaces this with an
    :class:`~repro.core.backends.AttentionBackend`.
    """
    scores = (key * query.reshape(*query.shape[:-1], 1, query.shape[-1])).sum(axis=-1)
    if mask is not None:
        weights = masked_softmax(scores, mask, axis=-1)
    else:
        weights = softmax(scores, axis=-1)
    return (value * weights.reshape(*weights.shape, 1)).sum(axis=-2)
