"""Key-Value Memory Network (Miller et al. [19]) over the autograd substrate.

Each knowledge-base fact is stored as a key (the bag-of-words embedding of
its subject and relation tokens) and a value (the embedding of its object
entity).  The question embedding attends over the keys, reads the values,
and is transformed by a per-hop linear map ``q <- R_k(q + o)``.  The final
state is scored against every candidate entity embedding.

Like :class:`~repro.nn.memn2n.MemN2N`, training uses the batched autograd
path and inference routes attention through a pluggable backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends import AttentionBackend
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["KVMemN2NConfig", "KVMemN2N", "EncodedKvBatch"]


@dataclass(frozen=True)
class KVMemN2NConfig:
    """Model hyperparameters (2 hops, as in the KV-MemNN paper's default)."""

    vocab_size: int
    num_entities: int
    dim: int = 32
    hops: int = 2
    seed: int = 0


@dataclass
class EncodedKvBatch:
    """Padded integer encodings of a question batch.

    Attributes
    ----------
    key_tokens:
        ``(batch, max_memory, max_key_words)`` token ids, 0-padded.
    value_ids:
        ``(batch, max_memory)`` object entity token ids (0 = padding).
    memory_mask:
        ``(batch, max_memory)`` — True where the slot holds a real fact.
    question_tokens:
        ``(batch, max_question_words)`` token ids.
    targets:
        ``(batch,)`` index into the entity candidate list (one sampled
        gold answer per question for training).
    """

    key_tokens: np.ndarray
    value_ids: np.ndarray
    memory_mask: np.ndarray
    question_tokens: np.ndarray
    targets: np.ndarray


class KVMemN2N(Module):
    """KV-MemN2N with a shared embedding and per-hop transforms."""

    def __init__(self, config: KVMemN2NConfig, entity_ids: list[int]):
        super().__init__()
        if len(entity_ids) != config.num_entities:
            raise ValueError(
                f"entity_ids length {len(entity_ids)} != "
                f"num_entities {config.num_entities}"
            )
        self.config = config
        self.entity_ids = np.asarray(entity_ids, dtype=np.int64)
        rng = np.random.default_rng(config.seed)
        self.embed = Embedding(config.vocab_size, config.dim, rng=rng)
        self.hop_linears = [
            Linear(config.dim, config.dim, rng=rng) for _ in range(config.hops)
        ]

    # ------------------------------------------------------------------
    # training path
    # ------------------------------------------------------------------
    def forward(self, batch: EncodedKvBatch) -> Tensor:
        """Entity logits ``(batch, num_entities)``."""
        mem_key = self.embed(batch.key_tokens).sum(axis=2)
        mem_value = self.embed(batch.value_ids)
        q = self.embed(batch.question_tokens).sum(axis=1)
        for linear in self.hop_linears:
            scores = (mem_key * q.reshape(q.shape[0], 1, q.shape[1])).sum(axis=-1)
            weights = F.masked_softmax(scores, batch.memory_mask, axis=-1)
            o = (mem_value * weights.reshape(*weights.shape, 1)).sum(axis=1)
            q = linear(q + o)
        candidates = self.embed(self.entity_ids)  # (E, dim)
        return q @ candidates.transpose()

    def rezero_padding(self) -> None:
        self.embed.rezero_padding()

    # ------------------------------------------------------------------
    # inference path
    # ------------------------------------------------------------------
    def comprehend(
        self, key_token_ids: list[list[int]], value_ids: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Build the (key, value) memory arrays for one question."""
        table = self.embed.weight.data
        n = len(key_token_ids)
        mem_key = np.zeros((n, self.config.dim))
        for row, ids in enumerate(key_token_ids):
            mem_key[row] = table[ids].sum(axis=0)
        mem_value = table[np.asarray(value_ids, dtype=np.int64)]
        return mem_key, mem_value

    def respond(
        self,
        mem_key: np.ndarray,
        mem_value: np.ndarray,
        question_ids: list[int],
        backend: AttentionBackend,
    ) -> np.ndarray:
        """Entity scores for one question via backend-routed attention."""
        return self.respond_many(mem_key, mem_value, [question_ids], backend)[0]

    def respond_many(
        self,
        mem_key: np.ndarray,
        mem_value: np.ndarray,
        question_ids: list[list[int]],
        backend: AttentionBackend,
    ) -> np.ndarray:
        """Entity scores for several questions sharing one KV memory.

        Each hop issues one batched ``attend_many`` over all questions
        so batch-capable backends amortize the per-key preprocessing.
        Returns ``(num_questions, num_entities)`` scores.
        """
        table = self.embed.weight.data
        q = np.stack([table[ids].sum(axis=0) for ids in question_ids])
        for linear in self.hop_linears:
            o = backend.attend_many(mem_key, mem_value, q)
            q = (q + o) @ linear.weight.data + linear.bias.data
        return q @ table[self.entity_ids].T

    def rank_entities(
        self,
        key_token_ids: list[list[int]],
        value_ids: list[int],
        question_ids: list[int],
        backend: AttentionBackend,
    ) -> np.ndarray:
        """Entity indices sorted by descending score (for MAP)."""
        mem_key, mem_value = self.comprehend(key_token_ids, value_ids)
        backend.prepare(mem_key)
        scores = self.respond(mem_key, mem_value, question_ids, backend)
        return np.argsort(-scores, kind="stable")
