"""Neural network layers over the autograd substrate."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential"]


class Module:
    """Base class with parameter discovery and train/eval mode.

    Parameters are found by walking ``__dict__`` recursively through
    attributes that are :class:`Tensor` (with ``requires_grad``),
    :class:`Module`, or lists of either.
    """

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        seen: set[int] = set()

        def collect(obj) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    params.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)
            elif isinstance(obj, dict):
                for item in obj.values():
                    collect(item)

        collect(self)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Glorot-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table with N(0, scale) initialization.

    Row 0 is reserved for padding and initialized (and re-zeroable) to
    zeros so padded tokens contribute nothing to bag-of-words sums.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator | None = None,
        scale: float = 0.1,
        zero_pad: bool = True,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        table = rng.normal(0.0, scale, size=(num_embeddings, dim))
        if zero_pad:
            table[0] = 0.0
        self.zero_pad = zero_pad
        self.weight = Tensor(table, requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)

    def rezero_padding(self) -> None:
        """Clear the padding row after an optimizer step."""
        if self.zero_pad:
            self.weight.data[0] = 0.0


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for determinism."""

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, self.training)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x
