"""End-to-End Memory Network (Sukhbaatar et al. [8]) over the autograd substrate.

The model embeds every story sentence into a memory (bag-of-words over a
key embedding ``A`` and a value embedding ``C``, plus the original paper's
temporal encoding ``T_A``/``T_C`` so recency is learnable), embeds the
question into a query ``u``, and runs ``hops`` rounds of soft attention,
updating ``u <- H(u) + o`` after each hop.  A final linear layer predicts
the answer word.

Two execution paths are provided:

* :meth:`forward` — batched, differentiable, used for training;
* :meth:`predict` — single-example NumPy inference that routes each hop's
  attention through an :class:`~repro.core.backends.AttentionBackend`,
  which is where the A3 approximation plugs in (Section VI-B methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends import AttentionBackend
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["MemN2NConfig", "MemN2N", "EncodedStories"]


@dataclass(frozen=True)
class MemN2NConfig:
    """Model hyperparameters (3 hops, as in the original paper).

    ``max_sentences`` sizes the temporal-encoding tables; stories longer
    than this cannot be represented.
    """

    vocab_size: int
    dim: int = 32
    hops: int = 3
    max_sentences: int = 50
    seed: int = 0


@dataclass
class EncodedStories:
    """Padded integer encodings of a story batch.

    Attributes
    ----------
    sentences:
        ``(batch, max_sentences, max_words)`` token ids, 0-padded.
    sentence_mask:
        ``(batch, max_sentences)`` — True where the sentence is real.
    temporal:
        ``(batch, max_sentences)`` recency index per sentence (0 = most
        recent real sentence; padding slots hold 0 and are masked out).
    questions:
        ``(batch, max_question_words)`` token ids.
    answers:
        ``(batch,)`` answer token ids.
    """

    sentences: np.ndarray
    sentence_mask: np.ndarray
    temporal: np.ndarray
    questions: np.ndarray
    answers: np.ndarray


class MemN2N(Module):
    """The MemN2N model with layer-wise (RNN-like) weight tying."""

    def __init__(self, config: MemN2NConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embed_key = Embedding(config.vocab_size, config.dim, rng=rng)
        self.embed_value = Embedding(config.vocab_size, config.dim, rng=rng)
        self.temporal_key = Embedding(
            config.max_sentences, config.dim, rng=rng, zero_pad=False
        )
        self.temporal_value = Embedding(
            config.max_sentences, config.dim, rng=rng, zero_pad=False
        )
        self.hop_linear = Linear(config.dim, config.dim, rng=rng)
        self.answer = Linear(config.dim, config.vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------
    # training path (batched autograd)
    # ------------------------------------------------------------------
    def forward(self, batch: EncodedStories) -> Tensor:
        """Answer logits ``(batch, vocab)`` for a padded story batch."""
        mem_key = (
            self.embed_key(batch.sentences).sum(axis=2)
            + self.temporal_key(batch.temporal)
        )
        mem_value = (
            self.embed_value(batch.sentences).sum(axis=2)
            + self.temporal_value(batch.temporal)
        )
        u = self.embed_key(batch.questions).sum(axis=1)
        for _ in range(self.config.hops):
            scores = (mem_key * u.reshape(u.shape[0], 1, u.shape[1])).sum(axis=-1)
            weights = F.masked_softmax(scores, batch.sentence_mask, axis=-1)
            o = (mem_value * weights.reshape(*weights.shape, 1)).sum(axis=1)
            u = self.hop_linear(u) + o
        return self.answer(u)

    def rezero_padding(self) -> None:
        self.embed_key.rezero_padding()
        self.embed_value.rezero_padding()

    # ------------------------------------------------------------------
    # inference path (NumPy + pluggable attention backend)
    # ------------------------------------------------------------------
    def comprehend(
        self, sentence_ids: list[list[int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Comprehension step: build the (key, value) memory for one story.

        This is the query-independent work the paper excludes from the
        query response time (Section II-B).
        """
        key_table = self.embed_key.weight.data
        value_table = self.embed_value.weight.data
        temporal_key = self.temporal_key.weight.data
        temporal_value = self.temporal_value.weight.data
        n = len(sentence_ids)
        if n > self.config.max_sentences:
            raise ValueError(
                f"story has {n} sentences, model supports "
                f"{self.config.max_sentences}"
            )
        mem_key = np.zeros((n, self.config.dim))
        mem_value = np.zeros((n, self.config.dim))
        for row, ids in enumerate(sentence_ids):
            recency = n - 1 - row
            mem_key[row] = key_table[ids].sum(axis=0) + temporal_key[recency]
            mem_value[row] = value_table[ids].sum(axis=0) + temporal_value[recency]
        return mem_key, mem_value

    def respond(
        self,
        mem_key: np.ndarray,
        mem_value: np.ndarray,
        question_ids: list[int],
        backend: AttentionBackend,
    ) -> np.ndarray:
        """Query-response step: attention hops plus the answer projection."""
        return self.respond_many(mem_key, mem_value, [question_ids], backend)[0]

    def respond_many(
        self,
        mem_key: np.ndarray,
        mem_value: np.ndarray,
        question_ids: list[list[int]],
        backend: AttentionBackend,
    ) -> np.ndarray:
        """Query-response for several questions sharing one story memory.

        Each hop issues one batched ``attend_many`` over all questions,
        so a batch-capable backend amortizes its per-key preprocessing
        across the whole question set (the Section IV-C pattern).
        Returns ``(num_questions, vocab)`` answer logits.
        """
        table = self.embed_key.weight.data
        u = np.stack([table[ids].sum(axis=0) for ids in question_ids])
        hop_w = self.hop_linear.weight.data
        hop_b = self.hop_linear.bias.data
        for _ in range(self.config.hops):
            o = backend.attend_many(mem_key, mem_value, u)
            u = u @ hop_w + hop_b + o
        return u @ self.answer.weight.data

    def predict(
        self,
        sentence_ids: list[list[int]],
        question_ids: list[int],
        backend: AttentionBackend,
    ) -> int:
        """End-to-end single-example prediction (answer token id)."""
        mem_key, mem_value = self.comprehend(sentence_ids)
        backend.prepare(mem_key)
        logits = self.respond(mem_key, mem_value, question_ids, backend)
        return int(np.argmax(logits))
