"""Optimizers for the autograd substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    MemN2N training is unstable without clipping (the original paper clips
    to norm 40); returns the pre-clip norm.
    """
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(total))
    if norm > max_norm > 0.0:
        scale = max_norm / (norm + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer: holds parameters, applies updates, clears grads."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], lr: float, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1 ** self._t
        correction2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * (p.grad * p.grad)
            m_hat = m / correction1
            v_hat = v / correction2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
