"""A small reverse-mode autograd engine over NumPy arrays.

The paper's accuracy study needs *trained* attention models (MemN2N,
KV-MemN2N, a BERT-style encoder); this module provides the training
substrate.  It follows the familiar define-by-run design: every operation
on a :class:`Tensor` records a backward closure, and
:meth:`Tensor.backward` walks the graph in reverse topological order.

Only operations required by the three workload models are implemented,
each with full broadcasting support and a gradient checked against finite
differences in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an optional gradient and a recorded backward pass.

    Parameters
    ----------
    data:
        Anything convertible to a float64 NumPy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.

    Examples
    --------
    >>> a = Tensor([1.0, 2.0], requires_grad=True)
    >>> ((a * a).sum()).backward()
    >>> a.grad.tolist()
    [2.0, 4.0]
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = ()):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents = _parents

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _make(self, data: np.ndarray, parents: tuple, backward) -> "Tensor":
        needs = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs, _parents=parents if needs else ())
        if needs:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data * other.data))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad):
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    if a.ndim == 1:
                        grad_a = grad * b
                    else:
                        grad_a = np.expand_dims(grad, -1) * b
                elif a.ndim == 1:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                else:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(np.asarray(grad_a), a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    if b.ndim == 1:
                        grad_b = grad * a
                    else:
                        grad_b = np.outer(a, grad)
                elif b.ndim == 1:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(np.asarray(grad_b), b.shape))

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data * out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0.0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))

        def backward(grad):
            if self.requires_grad:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(np.asarray(grad), inverse))

        return self._make(np.transpose(self.data, axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, np.asarray(grad))
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate along ``axis`` with gradient routing to each input."""
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            grad = np.asarray(grad)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        needs = any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=needs,
                     _parents=tuple(tensors) if needs else ())
        if needs:
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Stack along a new ``axis``."""
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            grad = np.asarray(grad)
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(piece, axis=axis))

        needs = any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=needs,
                     _parents=tuple(tensors) if needs else ())
        if needs:
            out._backward = backward
        return out
