"""A compact BERT-style transformer encoder for extractive span QA.

Implements the self-attention workload of the paper (Google BERT on
SQuAD): token + learned position embeddings, post-norm encoder layers with
multi-head self-attention and a feed-forward block, and a two-way span
head producing start/end logits.

The default configuration uses a single 64-dimensional head so the
per-head key/query vectors match the paper's accelerator dimension
``d = 64`` exactly.

Training runs on the autograd substrate; inference re-implements the
forward pass in NumPy and routes every head's attention through an
:class:`~repro.core.backends.AttentionBackend`, one call per query
position — the batched self-attention access pattern whose preprocessing
cost A3 amortizes over ``n`` queries (Section IV-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.backends import AttentionBackend
from repro.nn import functional as F
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["BertConfig", "BertMini", "MultiHeadSelfAttention", "EncoderLayer"]


@dataclass(frozen=True)
class BertConfig:
    """Model hyperparameters."""

    vocab_size: int
    max_len: int
    dim: int = 64
    num_heads: int = 1
    num_layers: int = 2
    ff_dim: int = 128
    rope_base: float = 10000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError(
                f"dim {self.dim} must be divisible by num_heads {self.num_heads}"
            )
        if self.head_dim % 2 != 0:
            raise ValueError(f"head_dim {self.head_dim} must be even for RoPE")

    @property
    def head_dim(self) -> int:
        return self.dim // self.num_heads


class RotaryEmbedding:
    """Rotary position embedding (GPT-NeoX half-split layout).

    Queries and keys are rotated by position-dependent angles before the
    dot product, which makes relative-offset attention patterns directly
    expressible — crucial for learning "attend to my own sentence's
    subject" from a small synthetic corpus.  Importantly the attention
    score stays a *pure dot product* of the rotated vectors, so the A3
    accelerator sees ordinary (key, query) matrices: the rotation is just
    part of producing them.
    """

    def __init__(self, head_dim: int, max_len: int, base: float = 10000.0):
        half = head_dim // 2
        freqs = base ** (-np.arange(half, dtype=np.float64) / half)
        angles = np.arange(max_len, dtype=np.float64)[:, np.newaxis] * freqs
        self.cos = np.cos(angles)  # (max_len, half)
        self.sin = np.sin(angles)
        self.half = half

    def rotate_np(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Rotate a NumPy array of shape ``(..., L, head_dim)``."""
        cos = self.cos[positions]
        sin = self.sin[positions]
        a, b = x[..., : self.half], x[..., self.half :]
        return np.concatenate([a * cos - b * sin, a * sin + b * cos], axis=-1)

    def rotate(self, x: Tensor, positions: np.ndarray) -> Tensor:
        """Rotate an autograd tensor of shape ``(..., L, head_dim)``."""
        cos = Tensor(self.cos[positions])
        sin = Tensor(self.sin[positions])
        a = x[..., : self.half]
        b = x[..., self.half :]
        return Tensor.concat([a * cos - b * sin, a * sin + b * cos], axis=-1)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads."""

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.rope = RotaryEmbedding(
            config.head_dim, config.max_len, base=config.rope_base
        )
        self.wq = Linear(config.dim, config.dim, rng=rng)
        self.wk = Linear(config.dim, config.dim, rng=rng)
        self.wv = Linear(config.dim, config.dim, rng=rng)
        self.wo = Linear(config.dim, config.dim, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        batch, length, dim = x.shape
        heads, head_dim = self.config.num_heads, self.config.head_dim
        positions = np.arange(length)

        def split(t: Tensor) -> Tensor:
            return t.reshape(batch, length, heads, head_dim).transpose(0, 2, 1, 3)

        q = self.rope.rotate(split(self.wq(x)), positions) * (
            1.0 / math.sqrt(head_dim)
        )
        k = self.rope.rotate(split(self.wk(x)), positions)
        v = split(self.wv(x))
        scores = q @ k.swapaxes(-1, -2)  # (B, H, L, L)
        key_mask = np.asarray(mask, dtype=bool)[:, np.newaxis, np.newaxis, :]
        weights = F.masked_softmax(scores, key_mask, axis=-1)
        context = weights @ v  # (B, H, L, dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, dim)
        return self.wo(merged)


class EncoderLayer(Module):
    """Pre-norm transformer encoder layer (attention + feed-forward).

    Pre-norm (``x + attn(ln(x))``) trains far more reliably than the
    original post-norm arrangement at small scale, which matters for a
    pure-NumPy training budget; the attention numerics seen by the
    accelerator are identical.
    """

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.attention = MultiHeadSelfAttention(config, rng)
        self.norm1 = LayerNorm(config.dim)
        self.ff1 = Linear(config.dim, config.ff_dim, rng=rng)
        self.ff2 = Linear(config.ff_dim, config.dim, rng=rng)
        self.norm2 = LayerNorm(config.dim)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        h = x + self.attention(self.norm1(x), mask)
        return h + self.ff2(self.ff1(self.norm2(h)).relu())


def _layer_norm_np(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * gamma + beta


class BertMini(Module):
    """Token/position embeddings, encoder stack, and span head."""

    def __init__(self, config: BertConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng=rng)
        # Position embeddings start at a larger scale than token
        # embeddings: position-selective attention (each place token
        # finding its own sentence's subject) has to be learnable early.
        self.position_embedding = Embedding(
            config.max_len, config.dim, rng=rng, zero_pad=False, scale=0.3
        )
        self.layers = [EncoderLayer(config, rng) for _ in range(config.num_layers)]
        self.final_norm = LayerNorm(config.dim)
        # Bilinear pointer head (BiDAF-style): the start/end logit of a
        # position is its hidden state projected and matched against the
        # mean question representation.  A plain per-position linear head
        # cannot condition on the question at this model scale.
        self.start_proj = Linear(config.dim, config.dim, bias=False, rng=rng)
        self.end_proj = Linear(config.dim, config.dim, bias=False, rng=rng)

    # ------------------------------------------------------------------
    # training path
    # ------------------------------------------------------------------
    def forward(
        self,
        tokens: np.ndarray,
        mask: np.ndarray,
        question_mask: np.ndarray,
    ) -> tuple[Tensor, Tensor]:
        """Start and end logits, each ``(batch, length)``.

        Padded positions keep their raw logits; the loss function must
        mask out non-passage positions.
        """
        batch, length = tokens.shape
        positions = np.broadcast_to(np.arange(length), (batch, length))
        x = self.token_embedding(tokens) + self.position_embedding(positions)
        for layer in self.layers:
            x = layer(x, mask)
        x = self.final_norm(x)
        q_mask = np.asarray(question_mask, dtype=np.float64)
        counts = q_mask.sum(axis=1, keepdims=True)
        q_vec = (x * Tensor(q_mask[:, :, np.newaxis])).sum(axis=1) * Tensor(
            1.0 / counts
        )  # (B, D)
        start = (self.start_proj(x) * q_vec.reshape(batch, 1, -1)).sum(axis=-1)
        end = (self.end_proj(x) * q_vec.reshape(batch, 1, -1)).sum(axis=-1)
        return start, end

    def rezero_padding(self) -> None:
        self.token_embedding.rezero_padding()

    # ------------------------------------------------------------------
    # inference path (NumPy + attention backend)
    # ------------------------------------------------------------------
    def encode_inference(
        self, tokens: np.ndarray, backend: AttentionBackend
    ) -> np.ndarray:
        """Forward pass of one unpadded sequence with backend attention.

        Every layer/head pair prepares its key matrix once and issues one
        batched ``attend_many`` call covering all query positions — the
        BERT self-attention pattern A3 accelerates (Section IV-C): the
        key preprocessing is amortized over the whole sequence, and
        batch-capable backends (``ApproximateBackend`` with the
        vectorized engine, ``ExactBackend``) service every position in
        one set of array operations.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        length = tokens.shape[0]
        cfg = self.config
        x = (
            self.token_embedding.weight.data[tokens]
            + self.position_embedding.weight.data[:length]
        )
        scale = 1.0 / math.sqrt(cfg.head_dim)
        for layer in self.layers:
            attn = layer.attention
            normed = _layer_norm_np(
                x, layer.norm1.gamma.data, layer.norm1.beta.data
            )
            q_all = normed @ attn.wq.weight.data + attn.wq.bias.data
            k_all = normed @ attn.wk.weight.data + attn.wk.bias.data
            v_all = normed @ attn.wv.weight.data + attn.wv.bias.data
            positions = np.arange(length)
            context = np.empty_like(x)
            for head in range(cfg.num_heads):
                cols = slice(head * cfg.head_dim, (head + 1) * cfg.head_dim)
                # RoPE rotations happen while *producing* the key/query
                # matrices; the accelerator still receives plain (n, d)
                # operands and computes plain dot products.
                key = attn.rope.rotate_np(
                    np.ascontiguousarray(k_all[:, cols]), positions
                )
                value = np.ascontiguousarray(v_all[:, cols])
                queries = attn.rope.rotate_np(q_all[:, cols], positions) * scale
                backend.prepare(key)
                context[:, cols] = backend.attend_many(key, value, queries)
            h = x + (context @ attn.wo.weight.data + attn.wo.bias.data)
            normed = _layer_norm_np(
                h, layer.norm2.gamma.data, layer.norm2.beta.data
            )
            ff = np.maximum(
                normed @ layer.ff1.weight.data + layer.ff1.bias.data, 0.0
            )
            x = h + (ff @ layer.ff2.weight.data + layer.ff2.bias.data)
        return _layer_norm_np(
            x, self.final_norm.gamma.data, self.final_norm.beta.data
        )

    def predict_span(
        self,
        tokens: np.ndarray,
        passage_mask: np.ndarray,
        backend: AttentionBackend,
        max_span: int = 4,
    ) -> tuple[int, int]:
        """Predict ``(start, end)`` indices restricted to passage positions."""
        hidden = self.encode_inference(tokens, backend)
        passage_mask = np.asarray(passage_mask, dtype=bool)
        question = hidden[~passage_mask]
        q_vec = question.mean(axis=0) if question.size else hidden.mean(axis=0)
        start_scores = (hidden @ self.start_proj.weight.data) @ q_vec
        end_scores = (hidden @ self.end_proj.weight.data) @ q_vec
        start_logits = np.where(passage_mask, start_scores, -np.inf)
        end_logits = np.where(passage_mask, end_scores, -np.inf)
        start = int(np.argmax(start_logits))
        stop = min(start + max_span, len(tokens))
        end = start + int(np.argmax(end_logits[start:stop]))
        return start, end
