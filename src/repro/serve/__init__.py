"""Request-level serving layer over the batched attention kernel.

The paper amortizes one comprehension-time key preprocessing across
many query responses; PR 1's vectorized engine exploits that with a
whole-batch ``attend_many``.  This subsystem turns the kernel into a
multi-tenant service:

* :class:`~repro.serve.sessions.KeyCacheManager` — per-tenant sessions,
  LRU cache of prepared key artifacts with byte-capacity accounting,
  plus in-place session mutation with delta re-accounting;
* :class:`~repro.serve.mutator.SessionMutator` — streaming mutable
  sessions: typed append/delete/replace mutations maintained
  incrementally in the prepared backends
  (:mod:`repro.core.incremental`), bit-identical to a fresh prepare of
  the final key;
* :class:`~repro.serve.batcher.DynamicBatcher` — groups single-query
  requests by :class:`~repro.serve.request.BatchKey` (per-session, or
  a cross-session fusable class of equal tier/config/shape) under a
  max-batch-size / max-wait policy, with bounded admission and
  reject/block backpressure;
* :class:`~repro.serve.scheduler.Scheduler` — threaded workers
  dispatching each group through one ``attend_many`` (single session)
  or one fused multi-key
  :func:`~repro.core.backends.attend_many_ragged` (cross-session),
  bit-identical either way;
* :class:`~repro.serve.stats.ServerStats` — latency percentiles, batch
  histogram, queue depth, cache hit rate; aggregates per-session
  :class:`~repro.core.backends.BackendStats`;
* :class:`~repro.serve.server.AttentionServer` — the synchronous
  facade, plus :class:`~repro.serve.server.ServedBackend` adapting a
  running server back to the ``AttentionBackend`` protocol;
* :class:`~repro.serve.router.ConsistentHashRouter` /
  :class:`~repro.serve.cluster.ShardedAttentionServer` — the scale-out
  layer: N shard replicas (thread- or process-backed), each with its
  own cache/batcher/scheduler stack, sessions placed by consistent
  hashing with explicit minimal-movement rebalancing, and cluster-wide
  aggregated telemetry;
* **fault tolerance** (:mod:`repro.serve.health` /
  :mod:`repro.serve.mutation_log`) — per-session replication across
  the ring's preference list, heartbeat failure detection
  (:class:`~repro.serve.health.HeartbeatMonitor`), and lossless
  automatic failover: a dead shard's sessions promote a surviving
  replica and rebuild redundancy by replaying their
  :class:`~repro.serve.mutation_log.MutationLog`, while in-flight
  requests retry on the promoted primary
  (:class:`~repro.serve.cluster.ShardUnavailableError` is retryable;
  plain :class:`~repro.serve.cluster.ShardError` is fatal);
* **quality tiers** (:data:`repro.core.config.TIERS`) — every request
  carries a tier in ``{"exact", "conservative", "aggressive"}``; one
  prepared key artifact per session serves all tiers through per-tier
  backend views, batches stay single-tier, and
  :class:`~repro.serve.controller.AdaptiveQualityController` degrades
  the default tier of best-effort traffic under sustained SLO
  violation (and restores it on recovery) instead of rejecting load;
* **observability** (:mod:`repro.serve.observability` /
  :mod:`repro.serve.tracing`) — sampled per-request trace span trees
  (submit → queue → batch-formation → dispatch → kernel → resolve)
  that propagate across the cluster's shard RPC boundary via
  :class:`~repro.serve.tracing.TraceContext`, a unified
  :class:`~repro.serve.observability.MetricsRegistry` with
  Prometheus-text exposition and cluster-wide merge, and zero-overhead
  kernel stage profiling hooks
  (:class:`~repro.core.profiling.StageProfiler`).  All of it is
  off by default and never changes served outputs.

See ``examples/serving_demo.py`` for an end-to-end tour and
``benchmarks/run_serve.py`` for the throughput and shard-scaling study.
"""

from repro.core.config import TIERS
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.cluster import (
    ClusterConfig,
    ProcessShard,
    ShardedAttentionServer,
    ShardError,
    ShardUnavailableError,
    ThreadShard,
)
from repro.serve.health import FaultInjector, HeartbeatMonitor, ShardDownEvent
from repro.serve.mutation_log import MutationLog, SessionLogRecord
from repro.serve.mutator import (
    AppendRowsMutation,
    DeleteRowsMutation,
    ReplaceKeyMutation,
    SessionMutation,
    SessionMutator,
)
from repro.serve.observability import (
    MetricsRegistry,
    StageProfiler,
    parse_exposition,
    publish_profile,
)
from repro.serve.client import AsyncAttentionClient, AttentionClient
from repro.serve.frontend import NetworkFrontend
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    BadFrameError,
    ConnectionLostError,
    FrameTooLargeError,
    ProtocolError,
    UnsupportedVersionError,
)
from repro.serve.request import (
    AttentionRequest,
    BatchKey,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
    UnknownSessionError,
)
from repro.serve.service import (
    AttendOp,
    AttendResult,
    AttentionService,
    CloseSessionOp,
    MetricsOp,
    MetricsResult,
    MutateSessionOp,
    PingOp,
    Pong,
    RegisterSessionOp,
    SessionInfo,
    SetTierOp,
    SnapshotOp,
    SnapshotResult,
    TierResult,
)
from repro.serve.controller import (
    AdaptiveQualityController,
    QualityPolicy,
    TierTransition,
)
from repro.serve.router import ConsistentHashRouter
from repro.serve.scheduler import Scheduler
from repro.serve.server import AttentionServer, ServedBackend, ServerConfig
from repro.serve.sessions import (
    CacheStats,
    KeyCacheManager,
    PreparedSession,
    Session,
    TierBackendView,
    validate_memory,
)
from repro.serve.stats import ServerStats
from repro.serve.tracing import Span, TraceContext, Tracer

__all__ = [
    "AdaptiveQualityController",
    "AppendRowsMutation",
    "AsyncAttentionClient",
    "AttendOp",
    "AttendResult",
    "AttentionClient",
    "AttentionRequest",
    "AttentionServer",
    "AttentionService",
    "BadFrameError",
    "BatchKey",
    "CloseSessionOp",
    "ConnectionLostError",
    "FrameTooLargeError",
    "MetricsOp",
    "MetricsResult",
    "MutateSessionOp",
    "NetworkFrontend",
    "PROTOCOL_VERSION",
    "PingOp",
    "Pong",
    "ProtocolError",
    "RegisterSessionOp",
    "SessionInfo",
    "SetTierOp",
    "SnapshotOp",
    "SnapshotResult",
    "TierResult",
    "UnsupportedVersionError",
    "BatchPolicy",
    "CacheStats",
    "ClusterConfig",
    "ConsistentHashRouter",
    "DeleteRowsMutation",
    "DynamicBatcher",
    "FaultInjector",
    "HeartbeatMonitor",
    "KeyCacheManager",
    "MetricsRegistry",
    "MutationLog",
    "PreparedSession",
    "ProcessShard",
    "QualityPolicy",
    "ReplaceKeyMutation",
    "Scheduler",
    "ServeError",
    "ServedBackend",
    "ServerClosedError",
    "ServerConfig",
    "ServerOverloadedError",
    "ServerStats",
    "Session",
    "SessionLogRecord",
    "SessionMutation",
    "SessionMutator",
    "ShardDownEvent",
    "ShardError",
    "ShardUnavailableError",
    "ShardedAttentionServer",
    "Span",
    "StageProfiler",
    "ThreadShard",
    "TIERS",
    "TierBackendView",
    "TierTransition",
    "TraceContext",
    "Tracer",
    "UnknownSessionError",
    "parse_exposition",
    "publish_profile",
    "validate_memory",
]
