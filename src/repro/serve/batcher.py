"""Dynamic request batching with admission control and backpressure.

Single-query requests arrive one at a time; the vectorized engine wants
them in batches sharing one key matrix *and* one approximation config.
:class:`DynamicBatcher` bridges the two with the classic max-batch-size
/ max-wait-time policy of batched inference servers: a worker claiming
work takes every queued request of the oldest request's
:class:`~repro.serve.request.BatchKey` group (up to ``max_batch_size``)
and, while the group is undersized and the oldest member is younger
than ``max_wait_seconds``, keeps sweeping newly arriving same-group
requests into it.  Requests of *other* groups stay queued and are
claimable by other workers concurrently.  The key carries the fusion
criteria explicitly: a per-session key reproduces the historical
single-session grouping, while a cross-session key fuses equal-tier
traffic from many sessions into one ragged multi-key dispatch (segments
that are config-incompatible land under different keys and fall back to
per-session claiming).  Either way a group is single-tier and
single-config, so per-tier outputs stay bit-identical to direct
evaluation at that tier.

Admission is bounded: once ``max_queue_depth`` requests are pending, a
submit either raises :class:`~repro.serve.request.ServerOverloadedError`
immediately (``overload="reject"``) or blocks until the queue drains or
``submit_timeout_seconds`` expires (``overload="block"``) — the two
standard backpressure semantics, surfaced as an explicit policy knob.

**Wakeup invariant** (audited; pinned by the many-blocked-submitters
race test in ``tests/serve/test_batcher.py``): every event that can
unblock a waiting submitter — capacity released by a claim or a fill-up
sweep, and ``close()`` in either mode — broadcasts with
``notify_all``.  A single ``notify`` would wake exactly one of N
blocked submitters; the other N-1 would sleep through a close (until
their timeout) or miss a multi-slot release, so no wait in this file
may ever downgrade to ``notify``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.serve.observability import now
from repro.serve.request import (
    AttentionRequest,
    BatchKey,
    ServerClosedError,
    ServerOverloadedError,
)

__all__ = ["BatchPolicy", "DynamicBatcher"]

_OVERLOAD_POLICIES = ("reject", "block")


@dataclass(frozen=True)
class BatchPolicy:
    """The batching and backpressure knobs of the serving layer.

    Attributes
    ----------
    max_batch_size:
        Hard cap on the number of requests dispatched in one
        ``attend_many`` call.
    max_wait_seconds:
        How long a claimed, undersized group may wait for more
        same-group arrivals, measured from the oldest member's
        enqueue time.  ``0`` dispatches whatever is immediately
        available (pure opportunistic batching).
    max_queue_depth:
        Bound on pending (admitted, not yet dispatched) requests.
    overload:
        ``"reject"`` — a submit against a full queue raises
        :class:`ServerOverloadedError` at once; ``"block"`` — it waits
        for room, raising only after ``submit_timeout_seconds``.
    submit_timeout_seconds:
        Patience of a blocking submit; ``None`` waits forever.
    """

    max_batch_size: int = 64
    max_wait_seconds: float = 0.005
    max_queue_depth: int = 1024
    overload: str = "block"
    submit_timeout_seconds: float | None = 10.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_seconds < 0:
            raise ConfigError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.overload not in _OVERLOAD_POLICIES:
            raise ConfigError(
                f"overload must be one of {_OVERLOAD_POLICIES}, "
                f"got {self.overload!r}"
            )


class DynamicBatcher:
    """Bounded request queue with same-:class:`BatchKey` group claiming.

    Requests are held in per-group FIFO deques; a worker claims the
    group whose oldest pending request is oldest overall, so dispatch
    order between groups is the global arrival order while claiming and
    fill-up sweeps stay O(batch) instead of rescanning the whole queue.
    """

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy or BatchPolicy()
        self._by_group: dict[BatchKey, deque[AttentionRequest]] = {}
        self._claimed: set[BatchKey] = set()
        self._depth = 0
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)
        self._room = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, request: AttentionRequest) -> None:
        """Admit a request, applying the configured backpressure policy."""
        policy = self.policy
        deadline = (
            None
            if policy.submit_timeout_seconds is None
            else now() + policy.submit_timeout_seconds
        )
        with self._lock:
            while True:
                if self._closed:
                    raise ServerClosedError("server is not running")
                if self._depth < policy.max_queue_depth:
                    break
                if policy.overload == "reject":
                    raise ServerOverloadedError(
                        f"queue full ({policy.max_queue_depth} pending)"
                    )
                remaining = (
                    None if deadline is None else deadline - now()
                )
                if remaining is not None and remaining <= 0:
                    raise ServerOverloadedError(
                        "queue stayed full for "
                        f"{policy.submit_timeout_seconds:.3f}s"
                    )
                self._room.wait(remaining)
            request.admitted_at = now()
            group = request.group_key
            pending = self._by_group.get(group)
            if pending is None:
                pending = deque()
                self._by_group[group] = pending
            pending.append(request)
            self._depth += 1
            self._arrival.notify_all()

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def next_batch(self) -> list[AttentionRequest] | None:
        """Claim the next same-group batch, or ``None`` once closed.

        Blocks while no unclaimed group has work.  A group being filled
        by one worker is *claimed*: other workers leave its new
        arrivals to the filling worker (otherwise a second idle worker
        would steal them mid-wait and the max-wait policy could never
        form a full batch) and pick a different group or wait.
        """
        policy = self.policy
        with self._lock:
            while True:
                if self._closed and self._depth == 0:
                    return None
                group = self._pick_group()
                if group is not None:
                    break
                if self._closed:
                    return None
                self._arrival.wait()
            self._claimed.add(group)
            oldest = self._by_group[group][0].admitted_at
            deadline = oldest + policy.max_wait_seconds
            batch = self._take(group, policy.max_batch_size)
            # Capacity released: broadcast — any number of submitters
            # may be blocked and the batch may have freed many slots.
            self._room.notify_all()
            try:
                while len(batch) < policy.max_batch_size and not self._closed:
                    remaining = deadline - now()
                    if remaining <= 0:
                        break
                    self._arrival.wait(remaining)
                    more = self._take(
                        group, policy.max_batch_size - len(batch)
                    )
                    if more:
                        batch.extend(more)
                        self._room.notify_all()
            finally:
                self._claimed.discard(group)
                if self._by_group.get(group):
                    # Arrivals beyond this batch's cap are up for grabs.
                    self._arrival.notify_all()
            return batch

    def _pick_group(self) -> BatchKey | None:
        """The unclaimed group whose oldest pending request is oldest."""
        best = None
        best_age = None
        for group, pending in self._by_group.items():
            if group in self._claimed:
                continue
            age = pending[0].admitted_at
            if best_age is None or age < best_age:
                best, best_age = group, age
        return best

    def _take(
        self, group: BatchKey, limit: int
    ) -> list[AttentionRequest]:
        """Remove up to ``limit`` pending requests of one group (FIFO)."""
        taken: list[AttentionRequest] = []
        pending = self._by_group.get(group)
        if pending is None or limit <= 0:
            return taken
        claimed_at = now()
        while pending and len(taken) < limit:
            request = pending.popleft()
            request.claimed_at = claimed_at
            taken.append(request)
        if not pending:
            del self._by_group[group]
        self._depth -= len(taken)
        return taken

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = False) -> list[AttentionRequest]:
        """Refuse new work; queued requests are rejected or left to drain.

        The two shutdown semantics, chosen explicitly instead of falling
        out of thread-join timing:

        * ``drain=False`` (reject) — queued requests are removed and
          returned (oldest first) for the caller to fail; workers see an
          empty closed queue and exit.
        * ``drain=True`` — queued requests stay; workers keep claiming
          batches until the queue is empty, then exit.  Returns ``[]``.
          Fill-up sweeps stop waiting once closed, so draining takes at
          most the backlog's dispatch time, never a max-wait stall.

        Either way, a ``submit`` racing with ``close`` is atomic with
        respect to it: the request is admitted just before the close
        (and thus drained or rejected like the rest of the queue) or it
        raises :class:`~repro.serve.request.ServerClosedError`.  Calling
        ``close`` again is allowed — a drain that must be cut short
        (worker died, stop budget exceeded) can be converted into a
        reject by a second ``close(drain=False)``.
        """
        with self._lock:
            self._closed = True
            if drain:
                drained = []
            else:
                drained = sorted(
                    (
                        r
                        for pending in self._by_group.values()
                        for r in pending
                    ),
                    key=lambda r: r.admitted_at,
                )
                self._by_group.clear()
                self._depth = 0
            # Broadcast on both conditions: every blocked consumer must
            # observe the close, and every blocked submitter must wake
            # to raise ServerClosedError instead of sleeping out its
            # timeout (notify would strand all but one of them).
            self._arrival.notify_all()
            self._room.notify_all()
        return drained
