"""Network clients for the serving front end.

Two clients over the same wire protocol (:mod:`repro.serve.protocol`):

* :class:`AttentionClient` — synchronous, thread-safe.  One persistent
  TCP connection, a background reader thread, and per-request
  correlation ids, so any number of caller threads can have requests in
  flight concurrently and responses resolve out of order.  The surface
  mirrors the in-process servers — ``attend`` / ``attend_many`` /
  ``submit`` / ``register_session`` / ``close_session`` /
  ``mutate_session`` / ``mutator`` / ``set_default_tier`` /
  ``snapshot`` / ``metrics_text`` — so code written against an
  :class:`~repro.serve.server.AttentionServer` runs against a socket
  unchanged (the :class:`~repro.serve.mutator.SessionMutator` fluent
  interface duck-types over this client too).
* :class:`AsyncAttentionClient` — the same surface as coroutines for
  asyncio callers.

Both carry the quality **tier** per request and a **trace context**:
give the client a :class:`~repro.serve.tracing.Tracer` and every attend
opens a local ``client_request`` span whose context rides the frame, so
the server-side ``request → submit → …`` span tree parents under the
remote caller's span exactly as it would in-process.

Typed errors arrive as typed exceptions: a backpressure reject raises
:class:`~repro.serve.request.ServerOverloadedError` here, shard loss
raises :class:`~repro.serve.cluster.ShardUnavailableError`, a dead
socket raises :class:`~repro.serve.protocol.ConnectionLostError` for
every request it strands.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
from concurrent.futures import Future

import numpy as np

from repro.serve import protocol
from repro.serve.mutator import SessionMutation, SessionMutator
from repro.serve.service import (
    AttendOp,
    AttendResult,
    CloseSessionOp,
    MetricsOp,
    MutateSessionOp,
    PingOp,
    RegisterSessionOp,
    SessionInfo,
    SetTierOp,
    SnapshotOp,
)
from repro.serve.tracing import TraceContext, Tracer

__all__ = ["AttentionClient", "AsyncAttentionClient", "parse_address"]

_RECV_CHUNK = 1 << 16


def parse_address(address, port=None) -> tuple[str, int]:
    """Accept ``("host", port)``, ``"host:port"``, or ``host, port``."""
    if port is not None:
        return str(address), int(port)
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str) and ":" in address:
        host, _, raw_port = address.rpartition(":")
        return host or "127.0.0.1", int(raw_port)
    raise ValueError(
        f"address must be 'host:port' or (host, port), got {address!r}"
    )


class _TraceScope:
    """Optional client-side root span around one network request."""

    __slots__ = ("span", "tracer")

    def __init__(self, tracer: Tracer | None, name: str, attrs: dict):
        self.tracer = tracer
        self.span = None
        if tracer is not None and tracer.sample():
            self.span = tracer.start_span(name, attrs=attrs)

    @property
    def context(self) -> TraceContext | None:
        return self.span.context() if self.span is not None else None

    def finish(self, error: BaseException | None) -> None:
        if self.span is None:
            return
        if error is not None:
            self.span.attrs["error"] = type(error).__name__
        self.tracer.record(self.span)


class AttentionClient:
    """Synchronous client for a :class:`~repro.serve.frontend.NetworkFrontend`.

    Parameters
    ----------
    address / port:
        Where the frontend listens: ``AttentionClient("host:port")``,
        ``AttentionClient(("host", port))``, or
        ``AttentionClient("host", port)``.
    timeout:
        Default patience for blocking calls (per-call override).
    tracer:
        Optional :class:`~repro.serve.tracing.Tracer`; when given,
        attends open a ``client_request`` root span whose context
        travels on the wire.
    """

    def __init__(
        self,
        address,
        port=None,
        *,
        timeout: float = 30.0,
        max_payload_bytes: int = protocol.MAX_PAYLOAD_BYTES,
        tracer: Tracer | None = None,
        connect_timeout: float = 10.0,
    ):
        self.address = parse_address(address, port)
        self.timeout = timeout
        self.tracer = tracer
        self._sock = socket.create_connection(
            self.address, timeout=connect_timeout
        )
        self._sock.settimeout(None)
        self._assembler = protocol.FrameAssembler(max_payload_bytes)
        self._pending: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._corr = itertools.count(1)
        self._closed = False
        self._broken: Exception | None = None
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-client-reader", daemon=True
        )
        self._reader.start()

    # -- plumbing ------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                data = self._sock.recv(_RECV_CHUNK)
                if not data:
                    break
                try:
                    frames = self._assembler.feed(data)
                except protocol.ProtocolError as exc:
                    # A server that breaks framing toward us is not
                    # recoverable client-side: strand everything.
                    self._fail_pending(exc)
                    return
                for opcode, corr_id, payload in frames:
                    self._dispatch(opcode, corr_id, payload)
        except OSError:
            pass
        finally:
            self._fail_pending(
                protocol.ConnectionLostError(
                    "connection closed with requests in flight"
                )
            )

    def _dispatch(self, opcode: int, corr_id: int, payload: bytes) -> None:
        with self._lock:
            future = self._pending.pop(corr_id, None)
        if future is None:
            return  # late response for an abandoned correlation id
        try:
            future.set_result(protocol.decode_result(opcode, payload))
        except BaseException as exc:  # noqa: BLE001 — typed wire error
            future.set_exception(exc)

    def _fail_pending(self, error: Exception) -> None:
        with self._lock:
            # Recorded under the same lock that registers new requests,
            # so a submit racing the reader's death either lands in
            # ``stranded`` here or sees ``_broken`` and refuses.
            self._broken = error
            stranded = list(self._pending.values())
            self._pending.clear()
        for future in stranded:
            if not future.done():
                try:
                    future.set_exception(error)
                except Exception:  # noqa: BLE001 — racing resolution
                    pass

    def _send_op(self, op, trace_ctx: TraceContext | None = None) -> Future:
        if self._closed:
            raise protocol.ConnectionLostError("client is closed")
        corr_id = next(self._corr)
        frame = protocol.encode_op(op, corr_id, trace_ctx)
        future: Future = Future()
        with self._lock:
            if self._broken is not None:
                raise protocol.ConnectionLostError(str(self._broken))
            self._pending[corr_id] = future
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            with self._lock:
                self._pending.pop(corr_id, None)
            raise protocol.ConnectionLostError(str(exc)) from exc
        return future

    def _call(self, op, timeout: float | None = None):
        return self._send_op(op).result(
            self.timeout if timeout is None else timeout
        )

    # -- attend surface ------------------------------------------------
    def submit(
        self,
        session_id: str,
        query,
        tier: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> Future:
        """Fire one single-query attend; resolves to the ``(d_v,)`` row."""
        scope = None
        if trace_ctx is None and self.tracer is not None:
            scope = _TraceScope(
                self.tracer,
                "client_request",
                {"session_id": session_id, "transport": "tcp"},
            )
            trace_ctx = scope.context
        op = AttendOp(
            session_id=session_id,
            queries=np.asarray(query, dtype=np.float64),
            tier=tier,
        )
        inner = self._send_op(op, trace_ctx)
        outer: Future = Future()

        def finish(done) -> None:
            error = done.exception()
            if scope is not None:
                scope.finish(error)
            if error is not None:
                outer.set_exception(error)
            else:
                result = done.result()
                row = result.outputs
                outer.set_result(row[0] if row.ndim == 2 else row)

        inner.add_done_callback(finish)
        return outer

    def attend(
        self,
        session_id: str,
        query,
        timeout: float | None = None,
        tier: str | None = None,
    ) -> np.ndarray:
        return self.submit(session_id, query, tier=tier).result(
            self.timeout if timeout is None else timeout
        )

    def attend_many(
        self,
        session_id: str,
        queries,
        timeout: float | None = None,
        tier: str | None = None,
    ) -> np.ndarray:
        """Attend a ``(q, d)`` block; returns ``(q, d_v)`` outputs."""
        scope = _TraceScope(
            self.tracer,
            "client_request",
            {"session_id": session_id, "transport": "tcp"},
        ) if self.tracer is not None else None
        op = AttendOp(
            session_id=session_id,
            queries=np.atleast_2d(np.asarray(queries, dtype=np.float64)),
            tier=tier,
        )
        error = None
        try:
            result: AttendResult = self._send_op(
                op, scope.context if scope else None
            ).result(self.timeout if timeout is None else timeout)
            return result.outputs
        except BaseException as exc:
            error = exc
            raise
        finally:
            if scope is not None:
                scope.finish(error)

    # -- session and control surface -----------------------------------
    def register_session(
        self, session_id: str, key, value, timeout: float | None = None
    ) -> SessionInfo:
        return self._call(
            RegisterSessionOp(
                session_id=session_id,
                key=np.asarray(key, dtype=np.float64),
                value=np.asarray(value, dtype=np.float64),
            ),
            timeout,
        )

    def close_session(self, session_id: str, timeout: float | None = None):
        return self._call(CloseSessionOp(session_id=session_id), timeout)

    def mutate_session(
        self,
        session_id: str,
        mutation: SessionMutation,
        timeout: float | None = None,
    ) -> SessionInfo:
        return self._call(
            MutateSessionOp(session_id=session_id, mutation=mutation),
            timeout,
        )

    def mutator(self, session_id: str) -> SessionMutator:
        """Fluent mutation interface over the wire (same as server-side)."""
        return SessionMutator(self, session_id)

    def set_default_tier(self, tier: str, timeout: float | None = None) -> str:
        return self._call(SetTierOp(tier=tier), timeout).previous

    def snapshot(self, timeout: float | None = None) -> dict:
        return self._call(SnapshotOp(), timeout).snapshot

    def metrics_text(self, timeout: float | None = None) -> str:
        return self._call(MetricsOp(), timeout).text

    def ping(self, timeout: float | None = None) -> bool:
        self._call(PingOp(), timeout)
        return True

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Say goodbye and tear the connection down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._send_lock:
                self._sock.sendall(
                    protocol.encode_frame(protocol.OP_GOODBYE, 0)
                )
        except OSError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(5.0)

    def __enter__(self) -> "AttentionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncAttentionClient:
    """Asyncio counterpart of :class:`AttentionClient`.

    Build with :meth:`connect`; every method of the sync surface exists
    as a coroutine.  One connection, one reader task, out-of-order
    correlated responses.
    """

    def __init__(self, reader, writer, *, max_payload_bytes, tracer=None):
        self._reader = reader
        self._writer = writer
        self._assembler = protocol.FrameAssembler(max_payload_bytes)
        self._pending: dict[int, asyncio.Future] = {}
        self._corr = itertools.count(1)
        self._closed = False
        self._broken: Exception | None = None
        self.tracer = tracer
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        address,
        port=None,
        *,
        max_payload_bytes: int = protocol.MAX_PAYLOAD_BYTES,
        tracer: Tracer | None = None,
    ) -> "AsyncAttentionClient":
        host, resolved_port = parse_address(address, port)
        reader, writer = await asyncio.open_connection(host, resolved_port)
        return cls(
            reader,
            writer,
            max_payload_bytes=max_payload_bytes,
            tracer=tracer,
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(_RECV_CHUNK)
                if not data:
                    break
                try:
                    frames = self._assembler.feed(data)
                except protocol.ProtocolError as exc:
                    self._fail_pending(exc)
                    return
                for opcode, corr_id, payload in frames:
                    future = self._pending.pop(corr_id, None)
                    if future is None or future.done():
                        continue
                    try:
                        future.set_result(
                            protocol.decode_result(opcode, payload)
                        )
                    except BaseException as exc:  # noqa: BLE001
                        future.set_exception(exc)
        except (asyncio.CancelledError, OSError):
            pass
        finally:
            self._fail_pending(
                protocol.ConnectionLostError(
                    "connection closed with requests in flight"
                )
            )

    def _fail_pending(self, error: Exception) -> None:
        self._broken = error
        stranded, self._pending = list(self._pending.values()), {}
        for future in stranded:
            if not future.done():
                future.set_exception(error)

    async def _call(self, op, trace_ctx: TraceContext | None = None):
        if self._closed:
            raise protocol.ConnectionLostError("client is closed")
        if self._broken is not None:
            raise protocol.ConnectionLostError(str(self._broken))
        corr_id = next(self._corr)
        frame = protocol.encode_op(op, corr_id, trace_ctx)
        future = asyncio.get_running_loop().create_future()
        self._pending[corr_id] = future
        self._writer.write(frame)
        await self._writer.drain()
        return await future

    async def attend(
        self, session_id: str, query, tier: str | None = None
    ) -> np.ndarray:
        result = await self.attend_many(session_id, [query], tier=tier)
        return result[0]

    async def attend_many(
        self, session_id: str, queries, tier: str | None = None
    ) -> np.ndarray:
        scope = _TraceScope(
            self.tracer,
            "client_request",
            {"session_id": session_id, "transport": "tcp"},
        ) if self.tracer is not None else None
        op = AttendOp(
            session_id=session_id,
            queries=np.atleast_2d(np.asarray(queries, dtype=np.float64)),
            tier=tier,
        )
        error = None
        try:
            result = await self._call(op, scope.context if scope else None)
            return result.outputs
        except BaseException as exc:
            error = exc
            raise
        finally:
            if scope is not None:
                scope.finish(error)

    async def register_session(
        self, session_id: str, key, value
    ) -> SessionInfo:
        return await self._call(
            RegisterSessionOp(
                session_id=session_id,
                key=np.asarray(key, dtype=np.float64),
                value=np.asarray(value, dtype=np.float64),
            )
        )

    async def close_session(self, session_id: str):
        return await self._call(CloseSessionOp(session_id=session_id))

    async def mutate_session(
        self, session_id: str, mutation: SessionMutation
    ) -> SessionInfo:
        return await self._call(
            MutateSessionOp(session_id=session_id, mutation=mutation)
        )

    async def set_default_tier(self, tier: str) -> str:
        return (await self._call(SetTierOp(tier=tier))).previous

    async def snapshot(self) -> dict:
        return (await self._call(SnapshotOp())).snapshot

    async def metrics_text(self) -> str:
        return (await self._call(MetricsOp())).text

    async def ping(self) -> bool:
        await self._call(PingOp())
        return True

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.write(
                protocol.encode_frame(protocol.OP_GOODBYE, 0)
            )
            await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._read_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncAttentionClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
