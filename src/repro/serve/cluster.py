"""Sharded multi-replica attention serving.

The paper's accelerator scales throughput by replicating approximate-
attention units and streaming independent queries through them
(Section V); one :class:`~repro.serve.server.AttentionServer` is the
software analogue of a single unit — one scheduler, one backend stack,
one core's worth of dispatch.  :class:`ShardedAttentionServer` is the
replicated version: N shard replicas, each running its **own**
:class:`~repro.serve.sessions.KeyCacheManager` /
:class:`~repro.serve.batcher.DynamicBatcher` /
:class:`~repro.serve.scheduler.Scheduler` stack, with sessions placed
onto shards by a stable
:class:`~repro.serve.router.ConsistentHashRouter`.

Two shard flavors share one method surface:

* :class:`ThreadShard` — the replica is an in-process
  ``AttentionServer``.  Cheap, shares the GIL; distinct shards overlap
  only as far as NumPy releases the GIL (and not at all on one core).
* :class:`ProcessShard` — the replica lives in a ``multiprocessing``
  *spawn* child that runs a full ``AttentionServer`` behind a pipe
  protocol, giving true multi-core parallelism.  Requests are submitted
  asynchronously (sequence-numbered messages, a reader thread resolving
  parent-side futures), so many queries stay in flight per shard and
  the child's dynamic batcher still gets to group them.

Placement changes are **explicit**: :meth:`ShardedAttentionServer.add_shard`
and :meth:`~ShardedAttentionServer.remove_shard` rebalance by moving
exactly the sessions whose consistent-hash route changed (the router
guarantees that set is minimal), re-registering each moved session's
key/value on its new shard before dropping it from the old one.

The cluster aggregates telemetry across shards:
:meth:`~ShardedAttentionServer.snapshot` reports per-shard snapshots
plus cluster-wide percentiles recomputed from the pooled latency
samples, summed counters, and a load-imbalance metric
(max/mean completed requests per shard; 1.0 is perfectly balanced).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.core.backends import BackendStats, KeyFingerprint
from repro.core.config import tier_rank
from repro.errors import ConfigError
from repro.serve.mutator import SessionMutator
from repro.serve.request import ServeError, ServerClosedError, UnknownSessionError
from repro.serve.router import ConsistentHashRouter
from repro.serve.server import AttentionServer, ServerConfig
from repro.serve.sessions import CacheStats, Session, validate_memory
from repro.serve.stats import ServerStats, latency_summary

__all__ = [
    "ClusterConfig",
    "ShardError",
    "ShardedAttentionServer",
    "ThreadShard",
    "ProcessShard",
]


class ShardError(ServeError):
    """A shard replica died or its control channel broke."""


@dataclass(frozen=True)
class ClusterConfig:
    """Everything tunable about one :class:`ShardedAttentionServer`.

    Attributes
    ----------
    num_shards:
        Initial replica count (shards can be added/removed live).
    shard:
        Per-shard :class:`~repro.serve.server.ServerConfig`; every
        replica runs an identical stack.
    spawn:
        ``True`` backs each shard with a ``multiprocessing`` spawn child
        (true parallelism, default backend factory only); ``False``
        keeps shards as in-process thread stacks.
    virtual_nodes:
        Consistent-hash ring points per shard (see
        :class:`~repro.serve.router.ConsistentHashRouter`).
    rpc_timeout_seconds:
        Patience for control-plane calls (register, stats, stop) to a
        spawned shard before declaring it dead.
    """

    num_shards: int = 2
    shard: ServerConfig = field(default_factory=ServerConfig)
    spawn: bool = False
    virtual_nodes: int = 64
    rpc_timeout_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )


# ----------------------------------------------------------------------
# thread-backed shard
# ----------------------------------------------------------------------


class ThreadShard:
    """A shard replica as an in-process :class:`AttentionServer`."""

    def __init__(self, shard_id: str, config: ServerConfig, backend_factory=None):
        self.shard_id = shard_id
        self.server = AttentionServer(config, backend_factory)

    def start(self) -> None:
        if not self.server.running:
            self.server.start()

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        self.server.stop(timeout, drain=drain)

    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> None:
        self.server.register_session(session_id, key, value)

    def close_session(self, session_id: str) -> None:
        self.server.close_session(session_id)

    def mutate_session(self, session_id: str, mutation) -> None:
        self.server.mutate_session(session_id, mutation)

    def set_default_tier(self, tier: str) -> None:
        self.server.set_default_tier(tier)

    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
    ) -> np.ndarray:
        return self.server.attend(session_id, query, timeout=timeout, tier=tier)

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
    ) -> np.ndarray:
        return self.server.attend_many(
            session_id, queries, timeout=timeout, tier=tier
        )

    def snapshot(self) -> dict:
        return self.server.snapshot()

    def session_stats(self, session_id: str) -> BackendStats:
        return self.server.cache.session_stats(session_id)

    def merged_backend_stats(self) -> BackendStats:
        return self.server.cache.merged_backend_stats()

    def latency_samples(self) -> list[float]:
        return self.server.stats.latency_samples()


# ----------------------------------------------------------------------
# process-backed shard
# ----------------------------------------------------------------------


def _reply(outbox: queue.Queue, seq: int, future) -> None:
    """Forward one resolved request future to the shard's sender thread."""
    exc = None
    try:
        exc = future.exception(0)
    except BaseException as raised:  # noqa: BLE001 — cancelled/timeout
        exc = raised
    if exc is not None:
        outbox.put((seq, "err", exc))
    else:
        outbox.put((seq, "ok", future.result(0)))


def _shard_main(conn, config: ServerConfig) -> None:
    """Entry point of a spawned shard: one ``AttentionServer`` behind a
    pipe.  Requests are answered out of order via sequence numbers; a
    dedicated sender thread serializes writes to the pipe."""
    server = AttentionServer(config)
    server.start()
    outbox: queue.Queue = queue.Queue()

    def send_replies() -> None:
        while True:
            item = outbox.get()
            if item is None:
                return
            try:
                conn.send(item)
            except (BrokenPipeError, OSError):
                return

    sender = threading.Thread(target=send_replies, daemon=True)
    sender.start()

    stopping = False
    while not stopping:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Parent vanished: stop serving, nobody is listening.
            server.stop(timeout=5.0)
            break
        op, seq, *args = message
        try:
            if op == "submit":
                session_id, query, tier = args
                request = server.submit(session_id, query, tier=tier)
                request.future.add_done_callback(
                    lambda f, seq=seq: _reply(outbox, seq, f)
                )
                continue  # replied asynchronously
            if op == "set_tier":
                (tier,) = args
                server.set_default_tier(tier)
                payload = None
            elif op == "register":
                session_id, key, value = args
                server.register_session(session_id, key, value)
                payload = None
            elif op == "mutate":
                session_id, mutation = args
                server.mutate_session(session_id, mutation)
                payload = None
            elif op == "close_session":
                (session_id,) = args
                server.close_session(session_id)
                payload = None
            elif op == "snapshot":
                payload = server.snapshot()
            elif op == "session_stats":
                (session_id,) = args
                payload = server.cache.session_stats(session_id)
            elif op == "merged_stats":
                payload = server.cache.merged_backend_stats()
            elif op == "samples":
                payload = server.stats.latency_samples()
            elif op == "stop":
                timeout, drain = args
                server.stop(timeout, drain=drain)
                # Reply with the final telemetry so the parent can keep
                # answering snapshot() after this process is gone — and
                # so requests completed *during* the drain are counted.
                payload = {
                    "snapshot": server.snapshot(),
                    "samples": server.stats.latency_samples(),
                    "merged": server.cache.merged_backend_stats(),
                }
                stopping = True
            else:  # pragma: no cover — protocol bug
                raise ShardError(f"unknown shard op {op!r}")
        except BaseException as exc:  # noqa: BLE001 — forwarded to parent
            outbox.put((seq, "err", exc))
        else:
            outbox.put((seq, "ok", payload))
    outbox.put(None)
    sender.join(timeout=5.0)
    conn.close()


class ProcessShard:
    """A shard replica in a ``multiprocessing`` spawn child.

    The parent side keeps a sequence-numbered table of in-flight
    :class:`~concurrent.futures.Future` objects; a reader thread drains
    the pipe and resolves them, so any number of requests can be in
    flight concurrently over one connection.  Only the default backend
    factory is supported (factories don't pickle).
    """

    def __init__(
        self,
        shard_id: str,
        config: ServerConfig,
        rpc_timeout: float = 60.0,
    ):
        self.shard_id = shard_id
        self.config = config
        self.rpc_timeout = rpc_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._conn = None
        self._process = None
        self._reader: threading.Thread | None = None
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._seq = 0
        self._dead = False
        self._stopped = False
        self._final: dict | None = None  # post-stop telemetry cache

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._ensure_started()

    def _ensure_started(self) -> None:
        with self._lock:
            if self._process is not None:
                if self._dead:
                    raise ShardError(f"shard {self.shard_id!r} has died")
                return
            parent_conn, child_conn = self._ctx.Pipe()
            self._process = self._ctx.Process(
                target=_shard_main,
                args=(child_conn, self.config),
                name=f"repro-shard-{self.shard_id}",
                daemon=True,
            )
            self._process.start()
            child_conn.close()
            self._conn = parent_conn
            self._reader = threading.Thread(
                target=self._read_replies,
                name=f"repro-shard-{self.shard_id}-reader",
                daemon=True,
            )
            self._reader.start()

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        with self._lock:
            process = self._process
            self._stopped = True
        if process is None:
            return
        try:
            # The stop reply carries the child's final telemetry (taken
            # *after* the drain), so the cluster can keep answering
            # snapshot() once `with cluster:` exits, with drained
            # requests counted.  A TimeoutError here must not escape:
            # the join/terminate below still has to reap the child.
            self._final = self._call(
                "stop", timeout, drain, timeout=self.rpc_timeout
            )
        except (ShardError, TimeoutError):
            pass  # dead or wedged; fall through to the join/terminate
        process.join(timeout)
        if process.is_alive():  # unresponsive child: don't leak it
            process.terminate()
            process.join(5.0)
        with self._lock:
            self._dead = True
        self._fail_pending(ShardError(f"shard {self.shard_id!r} stopped"))

    # -- request plumbing ----------------------------------------------
    def _read_replies(self) -> None:
        while True:
            try:
                seq, status, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            with self._lock:
                future = self._pending.pop(seq, None)
            if future is None:
                continue
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(payload)
        # The child is gone (clean stop or crash): every outstanding
        # request gets an explicit ShardError instead of a hang.
        with self._lock:
            self._dead = True
        self._fail_pending(ShardError(f"shard {self.shard_id!r} died"))

    def _fail_pending(self, error: ShardError) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    def _request(self, op: str, *args) -> Future:
        self._ensure_started()
        future: Future = Future()
        with self._lock:
            if self._dead:
                raise ShardError(f"shard {self.shard_id!r} has died")
            seq = self._seq
            self._seq += 1
            self._pending[seq] = future
            try:
                self._conn.send((op, seq, *args))
            except (BrokenPipeError, OSError) as exc:
                self._pending.pop(seq, None)
                self._dead = True
                raise ShardError(
                    f"shard {self.shard_id!r} is unreachable"
                ) from exc
        return future

    def _call(self, op: str, *args, timeout: float | None = None):
        return self._request(op, *args).result(
            self.rpc_timeout if timeout is None else timeout
        )

    # -- shard surface -------------------------------------------------
    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> None:
        self._call("register", session_id, key, value)

    def mutate_session(self, session_id: str, mutation) -> None:
        self._call("mutate", session_id, mutation)

    def close_session(self, session_id: str) -> None:
        self._call("close_session", session_id)

    def set_default_tier(self, tier: str) -> None:
        self._call("set_tier", tier)

    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
    ) -> np.ndarray:
        return self._request("submit", session_id, query, tier).result(timeout)

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
    ) -> np.ndarray:
        futures = [
            self._request("submit", session_id, query, tier)
            for query in np.asarray(queries)
        ]
        return np.stack([future.result(timeout) for future in futures])

    def _finished(self) -> bool:
        with self._lock:
            return self._stopped or self._dead

    def snapshot(self) -> dict:
        if self._finished():
            if self._final is not None:
                return self._final["snapshot"]
            return _empty_shard_snapshot()
        return self._call("snapshot")

    def session_stats(self, session_id: str) -> BackendStats:
        return self._call("session_stats", session_id)

    def merged_backend_stats(self) -> BackendStats:
        if self._finished():
            if self._final is not None:
                return self._final["merged"]
            return BackendStats(keep_traces=False)
        return self._call("merged_stats")

    def latency_samples(self) -> list[float]:
        if self._finished():
            if self._final is not None:
                return self._final["samples"]
            return []
        return self._call("samples")


# ----------------------------------------------------------------------
# the cluster facade
# ----------------------------------------------------------------------


class ClusterCacheView:
    """Read-only stand-in for ``AttentionServer.cache``.

    :class:`~repro.serve.server.ServedBackend` and
    ``KvWorkload.evaluate_served`` only touch three members of the
    cache — ``get``, ``session_stats``, and ``session_ids`` — so this
    view is all a cluster needs to slot in wherever a single server
    did.  ``get`` serves the cluster's own registration record;
    ``session_stats`` is fetched from the owning shard.
    """

    def __init__(self, cluster: "ShardedAttentionServer"):
        self._cluster = cluster

    def get(self, session_id: str) -> Session:
        return self._cluster._get_session(session_id)

    def session_stats(self, session_id: str) -> BackendStats:
        return self._cluster.session_stats(session_id)

    @property
    def session_ids(self) -> list[str]:
        return self._cluster.session_ids


class ShardedAttentionServer:
    """N shard replicas behind consistent-hash session routing.

    The request surface mirrors :class:`AttentionServer` —
    ``register_session`` / ``close_session`` / ``attend`` /
    ``attend_many`` / ``snapshot`` plus a ``cache`` view — so existing
    callers (``ServedBackend``, ``KvWorkload.evaluate_served``, the
    load generator) work against a cluster unchanged.  On top of that
    it adds live topology changes (:meth:`add_shard`,
    :meth:`remove_shard`) with minimal-movement rebalancing.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> cluster = ShardedAttentionServer(ClusterConfig(num_shards=2))
    >>> _ = cluster.register_session(
    ...     "tenant-a", rng.normal(size=(32, 8)), rng.normal(size=(32, 8))
    ... )
    >>> with cluster:
    ...     out = cluster.attend("tenant-a", rng.normal(size=8))
    >>> out.shape
    (8,)
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        backend_factory=None,
    ):
        self.config = config or ClusterConfig()
        if self.config.spawn and backend_factory is not None:
            raise ConfigError(
                "spawned shards cannot ship a backend_factory across "
                "processes; configure the shard's ServerConfig instead"
            )
        self._backend_factory = backend_factory
        self._lock = threading.RLock()
        self._shards: dict[str, ThreadShard | ProcessShard] = {}
        self._next_shard_index = 0
        self.router = ConsistentHashRouter(
            virtual_nodes=self.config.virtual_nodes
        )
        self._sessions: dict[str, Session] = {}
        self._assignment: dict[str, str] = {}
        self._retired_shards: list[dict] = []
        self._moved_selection = BackendStats(keep_traces=False)
        self._default_tier = self.config.shard.default_tier
        self._started = False
        self._stopped = False
        self.cache = ClusterCacheView(self)
        for _ in range(self.config.num_shards):
            shard_id, handle = self._new_shard()
            self._shards[shard_id] = handle
            self.router.add_shard(shard_id)

    def _new_shard(self) -> tuple[str, ThreadShard | ProcessShard]:
        shard_id = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        if self.config.spawn:
            handle = ProcessShard(
                shard_id,
                self.config.shard,
                rpc_timeout=self.config.rpc_timeout_seconds,
            )
        else:
            handle = ThreadShard(
                shard_id, self.config.shard, self._backend_factory
            )
        return shard_id, handle

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedAttentionServer":
        with self._lock:
            if self._started:
                raise RuntimeError("cluster already started")
            self._started = True
            for handle in self._shards.values():
                handle.start()
        return self

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self._shards.values())
        for handle in handles:
            handle.stop(timeout, drain=drain)

    def __enter__(self) -> "ShardedAttentionServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    @property
    def shard_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    @property
    def num_shards(self) -> int:
        with self._lock:
            return len(self._shards)

    # ------------------------------------------------------------------
    # session registry and routing
    # ------------------------------------------------------------------
    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> Session:
        """Register (or replace) a session, placing it on its shard."""
        key, value = validate_memory(key, value)
        session = Session(
            session_id=session_id,
            key=key,
            value=value,
            fingerprint=KeyFingerprint.of(key),
        )
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            shard_id = self.router.route(session_id)
            # The shard keeps its own defensive copy (the cache's
            # contract); the parent copy in `session` is what rebalance
            # ships to a session's next home.
            self._shards[shard_id].register_session(session_id, key, value)
            self._sessions[session_id] = session
            self._assignment[session_id] = shard_id
        return session

    def close_session(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)
            shard_id = self._assignment.pop(session_id, None)
            handle = self._shards.get(shard_id) if shard_id else None
        if handle is not None:
            handle.close_session(session_id)

    def mutate_session(self, session_id: str, mutation) -> Session:
        """Apply one session mutation cluster-wide, consistently.

        Runs under the cluster lock, like rebalancing — so a mutation
        and a topology change serialize.  The mutation is validated and
        applied to the parent-side session record *and* forwarded to
        the owning shard as one step; a rebalance that later moves the
        session re-registers the parent copy, which therefore already
        contains every applied mutation — the new shard serves the
        mutated memory from its first request (item 4 of the
        :mod:`repro.serve.mutator` ordering contract).
        """
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(
                    f"session {session_id!r} is not registered"
                )
            # Validate parent-side first: a bad mutation must fail
            # before anything is shipped to (or applied on) the shard.
            new_key, new_value = mutation.apply(session.key, session.value)
            self._shards[self._assignment[session_id]].mutate_session(
                session_id, mutation
            )
            session.replace_memory(
                new_key, new_value, KeyFingerprint.of(new_key)
            )
        return session

    def mutator(self, session_id: str) -> SessionMutator:
        """A :class:`~repro.serve.mutator.SessionMutator` bound to one
        session; mutations follow the session across rebalances."""
        self._get_session(session_id)  # fail fast on unknown sessions
        return SessionMutator(self, session_id)

    def _get_session(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"session {session_id!r} is not registered"
            )
        return session

    @property
    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def session_shard(self, session_id: str) -> str:
        """The shard currently hosting ``session_id``."""
        with self._lock:
            shard_id = self._assignment.get(session_id)
        if shard_id is None:
            raise UnknownSessionError(
                f"session {session_id!r} is not registered"
            )
        return shard_id

    def _route_handle(
        self, session_id: str
    ) -> ThreadShard | ProcessShard:
        with self._lock:
            shard_id = self._assignment.get(session_id)
            if shard_id is None:
                raise UnknownSessionError(
                    f"session {session_id!r} is not registered"
                )
            return self._shards[shard_id]

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None = 30.0,
        tier: str | None = None,
    ) -> np.ndarray:
        """Route one query to its session's shard and block for the row.

        ``tier`` rides the RPC unchanged: the owning shard resolves
        ``None`` against its own live default (kept cluster-consistent
        by :meth:`set_default_tier`) and pins explicit tiers exactly as
        a single server would.
        """
        handle = self._route_handle(session_id)
        if isinstance(handle, ProcessShard):
            # Fail bad queries parent-side instead of shipping them over
            # the pipe; thread shards validate inside submit() already.
            query = self._get_session(session_id).validate_query(query)
        try:
            return handle.attend(session_id, query, timeout, tier=tier)
        except (UnknownSessionError, ServerClosedError, ShardError):
            # The session moved between routing and dispatch (an
            # explicit rebalance won the race): retry on its new home.
            return self._route_handle(session_id).attend(
                session_id, query, timeout, tier=tier
            )

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None = 30.0,
        tier: str | None = None,
    ) -> np.ndarray:
        """Route a caller-side batch to the session's shard and gather."""
        handle = self._route_handle(session_id)
        if isinstance(handle, ProcessShard):
            session = self._get_session(session_id)
            queries = np.stack(
                [session.validate_query(q) for q in np.asarray(queries)]
            )
        try:
            return handle.attend_many(session_id, queries, timeout, tier=tier)
        except (UnknownSessionError, ServerClosedError, ShardError):
            return self._route_handle(session_id).attend_many(
                session_id, queries, timeout, tier=tier
            )

    # ------------------------------------------------------------------
    # quality tiers
    # ------------------------------------------------------------------
    @property
    def default_tier(self) -> str:
        """The live default tier applied cluster-wide."""
        with self._lock:
            return self._default_tier

    def set_default_tier(self, tier: str) -> str:
        """Move every shard's live default tier, atomically with respect
        to topology changes (runs under the cluster lock, like
        rebalancing, so a shard added concurrently can never miss the
        change — :meth:`add_shard` applies the current default to new
        replicas).  Returns the previous cluster-wide default.

        The recorded cluster default is updated *before* the per-shard
        fan-out and every shard is attempted even if one fails, so a
        dead replica cannot leave the cluster silently split-tier: the
        survivors and the recorded default stay consistent (and future
        :meth:`add_shard` joins inherit the intended tier), while the
        first shard failure is re-raised to the caller.
        """
        tier_rank(tier)  # raises ConfigError on unknown tiers
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            previous = self._default_tier
            if tier != previous:
                self._default_tier = tier
                failure = None
                for handle in self._shards.values():
                    try:
                        handle.set_default_tier(tier)
                    except ShardError as exc:
                        failure = failure or exc
                if failure is not None:
                    raise failure
        return previous

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def add_shard(self) -> tuple[str, list[str]]:
        """Join a new replica; move exactly the sessions it now owns.

        Returns ``(shard_id, moved_session_ids)``.  Consistent hashing
        guarantees every moved session's new route *is* the new shard —
        the property test pins that down.

        Rebalancing is a stop-the-world control-plane operation: the
        cluster lock is held while the moved sessions' key/value
        matrices are re-registered (for spawned shards, piped to the
        child), so concurrent attends stall for the duration.  In
        exchange, no request can ever observe a half-moved topology.
        """
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            shard_id, handle = self._new_shard()
            self._shards[shard_id] = handle
            if self._started:
                handle.start()
            if self._default_tier != self.config.shard.default_tier:
                # The cluster's live default was moved (e.g. by an SLO
                # controller); a replica joining mid-degradation must
                # not serve best-effort traffic at the stale ceiling.
                handle.set_default_tier(self._default_tier)
            self.router.add_shard(shard_id)
            moved = self._rebalance()
        return shard_id, moved

    def remove_shard(
        self, shard_id: str, timeout: float | None = 10.0
    ) -> list[str]:
        """Retire a replica; move exactly the sessions it hosted.

        The handle is drained (in-flight requests finish) after its
        sessions have been re-registered elsewhere.  Returns the moved
        session ids.  Like :meth:`add_shard`, the re-registration runs
        under the cluster lock (stop-the-world; see there).
        """
        with self._lock:
            if shard_id not in self._shards:
                raise ConfigError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ConfigError("cannot remove the last shard")
            self.router.remove_shard(shard_id)
            handle = self._shards.pop(shard_id)
            moved = self._rebalance()
        handle.stop(timeout, drain=True)
        # Preserve the retired replica's telemetry (after the drain, so
        # its last batches are counted): cluster-wide totals must never
        # shrink because the topology changed.
        retired = {
            "snapshot": handle.snapshot(),
            "samples": handle.latency_samples(),
            "merged": handle.merged_backend_stats(),
        }
        with self._lock:
            self._retired_shards.append(retired)
        return moved

    def _rebalance(self) -> list[str]:
        """Re-register every session whose route changed; returns them.

        Registration on the new shard happens *before* the assignment
        flip and the close on the old shard, so a concurrent ``attend``
        either still finds the session on its old home or already finds
        it on the new one — the request-path retry covers the gap.
        """
        moved = []
        for session_id, session in self._sessions.items():
            target = self.router.route(session_id)
            current = self._assignment[session_id]
            if target == current:
                continue
            self._shards[target].register_session(
                session_id, session.key, session.value
            )
            self._assignment[session_id] = target
            old = self._shards.get(current)
            if old is not None:  # absent when rebalancing after a removal
                # Closing the session on its old shard drops its
                # selection history there; bank it first so the
                # cluster-wide aggregate survives the move.
                self._moved_selection.merge(old.session_stats(session_id))
                old.close_session(session_id)
            moved.append(session_id)
        return moved

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def session_stats(self, session_id: str) -> BackendStats:
        """One session's selection counters, fetched from its shard."""
        return self._route_handle(session_id).session_stats(session_id)

    def shard_snapshots(self) -> dict[str, dict]:
        """Each shard's own :meth:`AttentionServer.snapshot`."""
        with self._lock:
            handles = dict(self._shards)
        return {
            shard_id: handle.snapshot()
            for shard_id, handle in sorted(handles.items())
        }

    def snapshot(self) -> dict:
        """Cluster-wide aggregate plus the per-shard snapshots.

        Percentiles are recomputed from the pooled per-shard latency
        samples (percentiles don't average); ``load_imbalance`` is the
        max/mean ratio of completed requests per shard — 1.0 means the
        router spread the load perfectly, ``num_shards`` means one
        shard took everything.
        """
        with self._lock:
            handles = dict(self._shards)
            retired = list(self._retired_shards)
            moved_selection = BackendStats(keep_traces=False)
            moved_selection.merge(self._moved_selection)
            sessions_per_shard = {shard_id: 0 for shard_id in handles}
            for shard_id in self._assignment.values():
                if shard_id in sessions_per_shard:
                    sessions_per_shard[shard_id] += 1
        shards = {
            shard_id: handle.snapshot()
            for shard_id, handle in sorted(handles.items())
        }
        # Removed replicas contribute their preserved totals/samples so
        # the cluster aggregate never shrinks on a topology change; the
        # live per-shard views (and load imbalance) stay topology-only.
        counter_sources = list(shards.values()) + [
            r["snapshot"] for r in retired
        ]
        samples: list[float] = []
        for handle in handles.values():
            samples.extend(handle.latency_samples())
        merged = BackendStats(keep_traces=False)
        merged.merge(moved_selection)
        for handle in handles.values():
            merged.merge(handle.merged_backend_stats())
        for entry in retired:
            samples.extend(entry["samples"])
            merged.merge(entry["merged"])
        completed = [snap["completed"] for snap in shards.values()]
        mean_completed = (
            sum(completed) / len(completed) if completed else 0.0
        )
        cluster = {
            "num_shards": len(shards),
            "retired_shards": len(retired),
            "sessions": len(self._sessions),
            "sessions_per_shard": sessions_per_shard,
            "completed_per_shard": {
                shard_id: snap["completed"]
                for shard_id, snap in shards.items()
            },
            "load_imbalance": (
                max(completed) / mean_completed if mean_completed else 1.0
            ),
            "latency_seconds": latency_summary(samples),
            "selection": {
                "calls": merged.calls,
                "candidate_fraction": merged.candidate_fraction,
                "kept_fraction": merged.kept_fraction,
            },
        }
        cluster["default_tier"] = self._default_tier
        for counter in ("submitted", "rejected", "completed", "failed", "batches"):
            cluster[counter] = sum(snap[counter] for snap in counter_sources)
        # Per-tier admission/outcome counters pooled across live and
        # retired shards (latency summaries stay per shard: percentiles
        # don't sum, and the tier reservoirs aren't shipped home).
        tiers: dict[str, dict[str, int]] = {}
        for snap in counter_sources:
            for tier, cell in snap.get("tiers", {}).items():
                agg = tiers.setdefault(
                    tier, {"submitted": 0, "completed": 0, "failed": 0}
                )
                for stat in agg:
                    agg[stat] += cell[stat]
        cluster["tiers"] = dict(sorted(tiers.items()))
        # Same key set as the single-server "quality" dict, so readers
        # of the flat counters work uniformly.  Counters are summed
        # across shards; a cluster-wide set_default_tier moves every
        # shard, so one cluster-level transition counts once per shard.
        cluster["quality"] = {
            stat: sum(
                snap.get("quality", {}).get(stat, 0)
                for snap in counter_sources
            )
            for stat in (
                "downgraded_requests", "tier_downgrades", "tier_upgrades",
            )
        }
        cluster["cache"] = {
            stat: sum(snap["cache"][stat] for snap in counter_sources)
            for stat in ("hits", "misses", "evictions")
        }
        lookups = cluster["cache"]["hits"] + cluster["cache"]["misses"]
        # 0.0, not 1.0, when nothing was looked up: an idle cluster has
        # no evidence of cache effectiveness (same convention as
        # CacheStats.hit_rate — the old 1.0 made an idle cluster report
        # a perfect cache).
        cluster["cache"]["hit_rate"] = (
            cluster["cache"]["hits"] / lookups if lookups else 0.0
        )
        # The flat counters double as the AttentionServer.snapshot()
        # surface, so load generators can read either uniformly.
        cluster["mean_batch_size"] = (
            cluster["completed"] / cluster["batches"]
            if cluster["batches"]
            else 0.0
        )
        return {"cluster": cluster, "shards": shards}


def _empty_shard_snapshot() -> dict:
    """The zero-traffic snapshot shape of a shard that never served.

    Built from the real stats objects so the structure can never drift
    from :meth:`AttentionServer.snapshot`.
    """
    return ServerStats().snapshot(
        cache_stats=CacheStats(), backend=BackendStats(keep_traces=False)
    )


