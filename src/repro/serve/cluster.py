"""Sharded multi-replica attention serving.

The paper's accelerator scales throughput by replicating approximate-
attention units and streaming independent queries through them
(Section V); one :class:`~repro.serve.server.AttentionServer` is the
software analogue of a single unit — one scheduler, one backend stack,
one core's worth of dispatch.  :class:`ShardedAttentionServer` is the
replicated version: N shard replicas, each running its **own**
:class:`~repro.serve.sessions.KeyCacheManager` /
:class:`~repro.serve.batcher.DynamicBatcher` /
:class:`~repro.serve.scheduler.Scheduler` stack, with sessions placed
onto shards by a stable
:class:`~repro.serve.router.ConsistentHashRouter`.

Two shard flavors share one method surface:

* :class:`ThreadShard` — the replica is an in-process
  ``AttentionServer``.  Cheap, shares the GIL; distinct shards overlap
  only as far as NumPy releases the GIL (and not at all on one core).
* :class:`ProcessShard` — the replica lives in a ``multiprocessing``
  *spawn* child that runs a full ``AttentionServer`` behind a pipe
  protocol, giving true multi-core parallelism.  Requests are submitted
  asynchronously (sequence-numbered messages, a reader thread resolving
  parent-side futures), so many queries stay in flight per shard and
  the child's dynamic batcher still gets to group them.

Placement changes are **explicit**: :meth:`ShardedAttentionServer.add_shard`
and :meth:`~ShardedAttentionServer.remove_shard` rebalance by moving
exactly the sessions whose consistent-hash route changed (the router
guarantees that set is minimal), re-registering each moved session's
key/value on its new shard before dropping it from the old one.

Shard *death*, by contrast, is handled automatically.  With a
replication factor R > 1 every session lives on the R shards of its
ring :meth:`~repro.serve.router.ConsistentHashRouter.preference_list`
(writes — registration, mutation, tier moves — fan out to all
replicas; reads are served by the primary, the list's head).  When a
shard is declared dead — by a
:class:`~repro.serve.health.HeartbeatMonitor`, by the request path
hitting a :class:`ShardUnavailableError`, or explicitly via
:meth:`ShardedAttentionServer.report_shard_failure` — failover runs as
one atomic control-plane step: the shard leaves the ring, each of its
sessions promotes the next surviving replica to primary, and lost
redundancy is rebuilt by replaying each affected session's
:class:`~repro.serve.mutation_log.MutationLog` (registration snapshot
plus ordered mutations) onto the next healthy shard of its preference
list.  In-flight requests against the dead shard fail parent-side with
the *retryable* :class:`ShardUnavailableError`, and the request path
retries them on the promoted primary (bounded attempts with backoff) —
so a shard crash loses no requests, only the dead replica's local
telemetry.

The cluster aggregates telemetry across shards:
:meth:`~ShardedAttentionServer.snapshot` reports per-shard snapshots
plus cluster-wide percentiles recomputed from the pooled latency
samples, summed counters, and a load-imbalance metric
(max/mean completed requests per shard; 1.0 is perfectly balanced).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.core.artifacts import ArtifactBuffer
from repro.core.backends import BackendStats, KeyFingerprint
from repro.core.config import tier_rank
from repro.core.efficient_search import PreprocessedKey
from repro.errors import ConfigError
from repro.serve.health import FaultInjector, HeartbeatMonitor
from repro.serve.mutation_log import MutationLog
from repro.serve.mutator import SessionMutator
from repro.serve.observability import MetricsRegistry
from repro.serve.request import ServeError, ServerClosedError, UnknownSessionError
from repro.serve.router import ConsistentHashRouter
from repro.serve.server import AttentionServer, ServerConfig
from repro.serve.sessions import CacheStats, Session, validate_memory
from repro.serve.stats import ServerStats, latency_summary
from repro.serve.tracing import TraceContext, Tracer

__all__ = [
    "ClusterConfig",
    "SegmentStore",
    "ShardError",
    "ShardUnavailableError",
    "ShardedAttentionServer",
    "ThreadShard",
    "ProcessShard",
]


class SegmentStore:
    """Parent-side registry of shared-memory artifact segments.

    When shards are spawn processes, the cluster front door prepares a
    session's key **once** — one column sort, one
    :class:`~repro.core.artifacts.ArtifactBuffer` packed into a
    ``/dev/shm`` segment holding the prepared planes plus the value
    matrix — and every replica adopts the segment *by name*: the
    register/replication fan-out and failover log replay ship a
    ~100-byte handle instead of R pickled array copies, and no child
    ever re-sorts.

    Lifecycle ownership is strict: the store (the parent) is the sole
    owner of every segment it packs.  Segments are refcounted via
    :meth:`ArtifactBuffer.release` and unlinked when dropped — on
    session close, on re-registration with new memory, and wholesale at
    cluster stop — which children tolerate because their established
    mappings survive an unlink (a SIGKILL'd child's mappings are freed
    by the kernel).  Reuse is keyed on *array identity*: a lease for
    the same ``(key, value)`` objects returns the existing segment (the
    common case — the mutation log records the very registration
    arrays), while different arrays repack.  All calls run under the
    cluster lock.
    """

    def __init__(self) -> None:
        self._records: dict[
            str, tuple[ArtifactBuffer, np.ndarray, np.ndarray]
        ] = {}

    def lease(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> ArtifactBuffer:
        """The session's segment for exactly these memory arrays,
        packing one (sort + copy) only when none exists yet."""
        record = self._records.get(session_id)
        if record is not None:
            artifact, base_key, base_value = record
            if base_key is key and base_value is value:
                return artifact
            self.drop(session_id)  # stale memory: repack below
        pre = PreprocessedKey.build(key)
        artifact = ArtifactBuffer.pack(pre, value, storage="shm")
        self._records[session_id] = (artifact, key, value)
        return artifact

    def drop(self, session_id: str) -> None:
        """Release (and, as owner, unlink) the session's segment."""
        record = self._records.pop(session_id, None)
        if record is not None:
            record[0].release()

    def close_all(self) -> None:
        """Drop every segment — the stop path's leak guarantee."""
        for session_id in list(self._records):
            self.drop(session_id)

    @property
    def segment_names(self) -> list[str]:
        return [record[0].name for record in self._records.values()]


class ShardError(ServeError):
    """A shard replica failed a request for a *shard-level* reason.

    The base class is **fatal** from the retry path's point of view:
    an error the shard's own backend raised while actually processing
    the request (a poisoned batch, a protocol violation) would fail
    identically on any replica, so retrying it elsewhere just burns a
    healthy shard's time — the failover retry loop only ever retries
    :class:`ShardUnavailableError`.
    """


class ShardUnavailableError(ShardError):
    """The shard died or became unreachable before answering — retryable.

    Raised when the child process is gone, the control pipe broke, or a
    fault injector simulates either.  The request itself was never
    refused on its merits, so the cluster's request path may safely
    re-dispatch it to a surviving replica (the backends are
    deterministic: a retried read returns the bit-identical row).
    """


@dataclass(frozen=True)
class ClusterConfig:
    """Everything tunable about one :class:`ShardedAttentionServer`.

    Attributes
    ----------
    num_shards:
        Initial replica count (shards can be added/removed live).
    shard:
        Per-shard :class:`~repro.serve.server.ServerConfig`; every
        replica runs an identical stack.
    spawn:
        ``True`` backs each shard with a ``multiprocessing`` spawn child
        (true parallelism, default backend factory only); ``False``
        keeps shards as in-process thread stacks.
    virtual_nodes:
        Consistent-hash ring points per shard (see
        :class:`~repro.serve.router.ConsistentHashRouter`).
    rpc_timeout_seconds:
        Patience for control-plane calls (register, stats, stop) to a
        spawned shard before declaring it dead.
    replication:
        Replica count R per session: writes fan out to the R shards of
        the session's ring preference list, reads go to the primary
        (the list's head), and a shard death promotes the next
        surviving replica.  R = 1 (the default) is the pre-failover
        behavior: sessions live on exactly one shard, and a shard
        death recovers them by mutation-log replay alone.  R larger
        than the live shard count degrades gracefully to every shard.
    failover_attempts:
        Request-path retry budget: how many times one ``attend`` may be
        re-dispatched after a retryable shard failure before the error
        propagates.  Bounds the time a request can chase a collapsing
        cluster.
    failover_backoff_seconds:
        Base of the linear backoff between request-path retries
        (attempt ``k`` sleeps ``k * failover_backoff_seconds``), giving
        the control plane time to finish a failover the request lost a
        race with.
    heartbeat_interval_seconds / heartbeat_misses:
        Defaults for :meth:`ShardedAttentionServer.monitor`: probe
        cadence and the consecutive-miss count that declares a shard
        dead.
    log_compact_above:
        Mutation-log compaction threshold per session (see
        :class:`~repro.serve.mutation_log.MutationLog`); ``None``
        disables compaction.
    """

    num_shards: int = 2
    shard: ServerConfig = field(default_factory=ServerConfig)
    spawn: bool = False
    virtual_nodes: int = 64
    rpc_timeout_seconds: float = 60.0
    replication: int = 1
    failover_attempts: int = 3
    failover_backoff_seconds: float = 0.05
    heartbeat_interval_seconds: float = 0.25
    heartbeat_misses: int = 3
    log_compact_above: int | None = 256

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.replication < 1:
            raise ConfigError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.failover_attempts < 1:
            raise ConfigError(
                f"failover_attempts must be >= 1, got {self.failover_attempts}"
            )
        if self.failover_backoff_seconds < 0:
            raise ConfigError(
                "failover_backoff_seconds must be >= 0, got "
                f"{self.failover_backoff_seconds}"
            )


# ----------------------------------------------------------------------
# thread-backed shard
# ----------------------------------------------------------------------


class ThreadShard:
    """A shard replica as an in-process :class:`AttentionServer`.

    Thread shards consult an optional :class:`FaultInjector` on every
    RPC-surface call and every heartbeat, so tests can crash, partition,
    or slow a shard deterministically — the thread-mode analogue of a
    spawned child dying.  Telemetry reads and ``stop`` bypass the
    injector: a "crashed" shard's parent-side handle can still be
    reaped and its banked counters read, just as a real dead child's
    cached ``_final`` telemetry can.
    """

    #: Thread shards share the parent's address space — passing array
    #: references is already zero-copy, so segment adoption would only
    #: add lifecycle bookkeeping.  The fan-out pickles... nothing, and
    #: falls back to plain registration.
    supports_adopt = False

    def __init__(
        self,
        shard_id: str,
        config: ServerConfig,
        backend_factory=None,
        injector: FaultInjector | None = None,
    ):
        self.shard_id = shard_id
        self.server = AttentionServer(config, backend_factory)
        self.injector = injector

    def _check(self) -> None:
        if self.injector is not None:
            self.injector.check(self.shard_id)

    def start(self) -> None:
        if not self.server.running:
            self.server.start()

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        self.server.stop(timeout, drain=drain)

    def ping(self, timeout: float | None = None) -> bool:
        """Liveness probe: injector verdict plus the server's own state."""
        if self.injector is not None and not self.injector.heartbeat_ok(
            self.shard_id
        ):
            return False
        return self.server.running

    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> None:
        self._check()
        self.server.register_session(session_id, key, value)

    def close_session(self, session_id: str) -> None:
        self._check()
        self.server.close_session(session_id)

    def mutate_session(self, session_id: str, mutation) -> None:
        self._check()
        self.server.mutate_session(session_id, mutation)

    def set_default_tier(self, tier: str) -> None:
        self._check()
        self.server.set_default_tier(tier)

    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> np.ndarray:
        self._check()
        return self.server.attend(
            session_id, query, timeout=timeout, tier=tier, trace_ctx=trace_ctx
        )

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
    ) -> np.ndarray:
        self._check()
        return self.server.attend_many(
            session_id, queries, timeout=timeout, tier=tier
        )

    def snapshot(self) -> dict:
        return self.server.snapshot()

    def session_stats(self, session_id: str) -> BackendStats:
        return self.server.cache.session_stats(session_id)

    def merged_backend_stats(self) -> BackendStats:
        return self.server.cache.merged_backend_stats()

    def latency_samples(self) -> list[float]:
        return self.server.stats.latency_samples()

    def trace_spans(self) -> list[dict]:
        return self.server.trace_spans()

    def metrics_samples(self) -> list[dict]:
        return self.server.metrics_samples()


# ----------------------------------------------------------------------
# process-backed shard
# ----------------------------------------------------------------------


def _reply(outbox: queue.Queue, seq: int, future) -> None:
    """Forward one resolved request future to the shard's sender thread."""
    exc = None
    try:
        exc = future.exception(0)
    except BaseException as raised:  # noqa: BLE001 — cancelled/timeout
        exc = raised
    if exc is not None:
        outbox.put((seq, "err", exc))
    else:
        outbox.put((seq, "ok", future.result(0)))


def _shard_main(conn, config: ServerConfig) -> None:
    """Entry point of a spawned shard: one ``AttentionServer`` behind a
    pipe.  Requests are answered out of order via sequence numbers; a
    dedicated sender thread serializes writes to the pipe."""
    server = AttentionServer(config)
    server.start()
    outbox: queue.Queue = queue.Queue()

    def send_replies() -> None:
        while True:
            item = outbox.get()
            if item is None:
                return
            try:
                conn.send(item)
            except (BrokenPipeError, OSError):
                return

    sender = threading.Thread(target=send_replies, daemon=True)
    sender.start()

    stopping = False
    while not stopping:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Parent vanished: stop serving, nobody is listening.
            server.stop(timeout=5.0)
            break
        op, seq, *args = message
        try:
            if op == "submit":
                session_id, query, tier, ctx = args
                request = server.submit(
                    session_id, query, tier=tier, trace_ctx=ctx
                )
                request.future.add_done_callback(
                    lambda f, seq=seq: _reply(outbox, seq, f)
                )
                continue  # replied asynchronously
            if op == "ping":
                payload = "pong"
            elif op == "set_tier":
                (tier,) = args
                server.set_default_tier(tier)
                payload = None
            elif op == "register":
                session_id, key, value = args
                server.register_session(session_id, key, value)
                payload = None
            elif op == "adopt":
                session_id, segment_name, fingerprint = args
                server.adopt_session(session_id, segment_name, fingerprint)
                payload = None
            elif op == "mutate":
                session_id, mutation = args
                server.mutate_session(session_id, mutation)
                payload = None
            elif op == "close_session":
                (session_id,) = args
                server.close_session(session_id)
                payload = None
            elif op == "snapshot":
                payload = server.snapshot()
            elif op == "session_stats":
                (session_id,) = args
                payload = server.cache.session_stats(session_id)
            elif op == "merged_stats":
                payload = server.cache.merged_backend_stats()
            elif op == "samples":
                payload = server.stats.latency_samples()
            elif op == "spans":
                payload = server.trace_spans()
            elif op == "metrics":
                payload = server.metrics_samples()
            elif op == "stop":
                timeout, drain = args
                server.stop(timeout, drain=drain)
                # Reply with the final telemetry so the parent can keep
                # answering snapshot() after this process is gone — and
                # so requests completed *during* the drain are counted.
                payload = {
                    "snapshot": server.snapshot(),
                    "samples": server.stats.latency_samples(),
                    "merged": server.cache.merged_backend_stats(),
                    "spans": server.trace_spans(),
                    "metrics": server.metrics_samples(),
                }
                stopping = True
            else:  # pragma: no cover — protocol bug
                raise ShardError(f"unknown shard op {op!r}")
        except BaseException as exc:  # noqa: BLE001 — forwarded to parent
            outbox.put((seq, "err", exc))
        else:
            outbox.put((seq, "ok", payload))
    outbox.put(None)
    sender.join(timeout=5.0)
    conn.close()


class ProcessShard:
    """A shard replica in a ``multiprocessing`` spawn child.

    The parent side keeps a sequence-numbered table of in-flight
    :class:`~concurrent.futures.Future` objects; a reader thread drains
    the pipe and resolves them, so any number of requests can be in
    flight concurrently over one connection.  Only the default backend
    factory is supported (factories don't pickle).
    """

    #: Spawn children adopt shared-memory artifact segments by name:
    #: the fan-out ships a handle + fingerprint over the pipe instead
    #: of pickled key/value/prepared arrays.
    supports_adopt = True

    def __init__(
        self,
        shard_id: str,
        config: ServerConfig,
        rpc_timeout: float = 60.0,
    ):
        self.shard_id = shard_id
        self.config = config
        self.rpc_timeout = rpc_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._conn = None
        self._process = None
        self._reader: threading.Thread | None = None
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._seq = 0
        self._dead = False
        self._stopped = False
        self._final: dict | None = None  # post-stop telemetry cache

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._ensure_started()

    def _ensure_started(self) -> None:
        with self._lock:
            if self._process is not None:
                if self._dead:
                    raise ShardUnavailableError(
                        f"shard {self.shard_id!r} has died"
                    )
                return
            parent_conn, child_conn = self._ctx.Pipe()
            self._process = self._ctx.Process(
                target=_shard_main,
                args=(child_conn, self.config),
                name=f"repro-shard-{self.shard_id}",
                daemon=True,
            )
            self._process.start()
            child_conn.close()
            self._conn = parent_conn
            self._reader = threading.Thread(
                target=self._read_replies,
                name=f"repro-shard-{self.shard_id}-reader",
                daemon=True,
            )
            self._reader.start()

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        with self._lock:
            process = self._process
            self._stopped = True
        if process is None:
            return
        try:
            # The stop reply carries the child's final telemetry (taken
            # *after* the drain), so the cluster can keep answering
            # snapshot() once `with cluster:` exits, with drained
            # requests counted.  A TimeoutError here must not escape:
            # the join/terminate below still has to reap the child.
            # The stop RPC's patience is bounded by the caller's stop
            # timeout (plus slack for the reply), never the full
            # rpc_timeout: a wedged child must not stall shutdown for a
            # minute when the caller asked for a 10-second stop.
            stop_patience = (
                self.rpc_timeout
                if timeout is None
                else min(self.rpc_timeout, timeout + 5.0)
            )
            self._final = self._call(
                "stop", timeout, drain, timeout=stop_patience
            )
        except (ShardError, TimeoutError):
            pass  # dead or wedged; fall through to the join/terminate
        process.join(timeout)
        if process.is_alive():  # unresponsive child: don't leak it
            process.terminate()
            process.join(5.0)
        with self._lock:
            self._dead = True
        self._fail_pending(
            ShardUnavailableError(f"shard {self.shard_id!r} stopped")
        )

    def kill(self) -> None:
        """SIGKILL the child immediately — no drain, no stop protocol.

        The chaos path: the reader thread sees the pipe break and fails
        every pending future with :class:`ShardUnavailableError`, same
        as a shard that crashed on its own.
        """
        with self._lock:
            process = self._process
        if process is not None:
            process.kill()

    def ping(self, timeout: float | None = None) -> bool:
        """Liveness probe: process alive *and* answering its pipe.

        Process liveness alone isn't health — a wedged child is alive
        but useless — so the probe round-trips an echo RPC, bounded by
        ``timeout``.  Never raises: any failure is ``False``.
        """
        with self._lock:
            process = self._process
            if self._dead or self._stopped:
                return False
        if process is None or not process.is_alive():
            return False
        try:
            return self._call("ping", timeout=timeout) == "pong"
        except Exception:  # noqa: BLE001 — probes report, never raise
            return False

    # -- request plumbing ----------------------------------------------
    def _read_replies(self) -> None:
        # The try/finally is load-bearing: conn.recv() can raise beyond
        # EOFError/OSError (e.g. unpickling a forwarded payload fails),
        # and an exit path that skipped _fail_pending would leak every
        # in-flight future as a permanent hang.  However the reader
        # dies, pending futures get resolved.
        try:
            while True:
                try:
                    seq, status, payload = self._conn.recv()
                except (EOFError, OSError):
                    break
                with self._lock:
                    future = self._pending.pop(seq, None)
                if future is None:
                    continue
                if status == "ok":
                    future.set_result(payload)
                else:
                    future.set_exception(payload)
        finally:
            # The child is gone (clean stop or crash): every outstanding
            # request gets an explicit retryable error instead of a hang.
            with self._lock:
                self._dead = True
            self._fail_pending(
                ShardUnavailableError(f"shard {self.shard_id!r} died")
            )

    def _fail_pending(self, error: ShardError) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    def _request(self, op: str, *args) -> Future:
        self._ensure_started()
        future: Future = Future()
        with self._lock:
            if self._dead:
                raise ShardUnavailableError(
                    f"shard {self.shard_id!r} has died"
                )
            seq = self._seq
            self._seq += 1
            self._pending[seq] = future
            try:
                self._conn.send((op, seq, *args))
            except (BrokenPipeError, OSError) as exc:
                self._pending.pop(seq, None)
                self._dead = True
                raise ShardUnavailableError(
                    f"shard {self.shard_id!r} is unreachable"
                ) from exc
        return future

    def _call(self, op: str, *args, timeout: float | None = None):
        return self._request(op, *args).result(
            self.rpc_timeout if timeout is None else timeout
        )

    # -- shard surface -------------------------------------------------
    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> None:
        self._call("register", session_id, key, value)

    def adopt_session(
        self, session_id: str, segment_name: str, fingerprint
    ) -> None:
        """Register by shared-memory adoption: the child attaches the
        named segment and verifies ``fingerprint`` against its content."""
        self._call("adopt", session_id, segment_name, fingerprint)

    def mutate_session(self, session_id: str, mutation) -> None:
        self._call("mutate", session_id, mutation)

    def close_session(self, session_id: str) -> None:
        self._call("close_session", session_id)

    def set_default_tier(self, tier: str) -> None:
        self._call("set_tier", tier)

    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> np.ndarray:
        return self._request(
            "submit", session_id, query, tier, trace_ctx
        ).result(timeout)

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None,
        tier: str | None = None,
    ) -> np.ndarray:
        futures = [
            self._request("submit", session_id, query, tier, None)
            for query in np.asarray(queries)
        ]
        return np.stack([future.result(timeout) for future in futures])

    def _finished(self) -> bool:
        with self._lock:
            return self._stopped or self._dead

    def snapshot(self) -> dict:
        if self._finished():
            if self._final is not None:
                return self._final["snapshot"]
            return _empty_shard_snapshot()
        return self._call("snapshot")

    def session_stats(self, session_id: str) -> BackendStats:
        return self._call("session_stats", session_id)

    def merged_backend_stats(self) -> BackendStats:
        if self._finished():
            if self._final is not None:
                return self._final["merged"]
            return BackendStats(keep_traces=False)
        return self._call("merged_stats")

    def latency_samples(self) -> list[float]:
        if self._finished():
            if self._final is not None:
                return self._final["samples"]
            return []
        return self._call("samples")

    def trace_spans(self) -> list[dict]:
        if self._finished():
            if self._final is not None:
                # Spans are drained (returned at most once), matching
                # the live path's Tracer.drain semantics.
                return self._final.pop("spans", [])
            return []
        return self._call("spans")

    def metrics_samples(self) -> list[dict]:
        if self._finished():
            if self._final is not None:
                return self._final.get("metrics", [])
            return []
        return self._call("metrics")


# ----------------------------------------------------------------------
# the cluster facade
# ----------------------------------------------------------------------


class ClusterCacheView:
    """Read-only stand-in for ``AttentionServer.cache``.

    :class:`~repro.serve.server.ServedBackend` and
    ``KvWorkload.evaluate_served`` only touch three members of the
    cache — ``get``, ``session_stats``, and ``session_ids`` — so this
    view is all a cluster needs to slot in wherever a single server
    did.  ``get`` serves the cluster's own registration record;
    ``session_stats`` is fetched from the owning shard.
    """

    def __init__(self, cluster: "ShardedAttentionServer"):
        self._cluster = cluster

    def get(self, session_id: str) -> Session:
        return self._cluster._get_session(session_id)

    def session_stats(self, session_id: str) -> BackendStats:
        return self._cluster.session_stats(session_id)

    @property
    def session_ids(self) -> list[str]:
        return self._cluster.session_ids


class ShardedAttentionServer:
    """N shard replicas behind consistent-hash session routing.

    The request surface mirrors :class:`AttentionServer` —
    ``register_session`` / ``close_session`` / ``attend`` /
    ``attend_many`` / ``snapshot`` plus a ``cache`` view — so existing
    callers (``ServedBackend``, ``KvWorkload.evaluate_served``, the
    load generator) work against a cluster unchanged.  On top of that
    it adds live topology changes (:meth:`add_shard`,
    :meth:`remove_shard`) with minimal-movement rebalancing.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> cluster = ShardedAttentionServer(ClusterConfig(num_shards=2))
    >>> _ = cluster.register_session(
    ...     "tenant-a", rng.normal(size=(32, 8)), rng.normal(size=(32, 8))
    ... )
    >>> with cluster:
    ...     out = cluster.attend("tenant-a", rng.normal(size=8))
    >>> out.shape
    (8,)
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        backend_factory=None,
        fault_injector: FaultInjector | None = None,
    ):
        self.config = config or ClusterConfig()
        if self.config.spawn and backend_factory is not None:
            raise ConfigError(
                "spawned shards cannot ship a backend_factory across "
                "processes; configure the shard's ServerConfig instead"
            )
        self._backend_factory = backend_factory
        self.fault_injector = fault_injector or FaultInjector()
        self._lock = threading.RLock()
        self._shards: dict[str, ThreadShard | ProcessShard] = {}
        self._next_shard_index = 0
        self.router = ConsistentHashRouter(
            virtual_nodes=self.config.virtual_nodes
        )
        self._sessions: dict[str, Session] = {}
        #: session id -> its replica shard ids, primary first (always
        #: the session's live ring preference list).
        self._replicas: dict[str, list[str]] = {}
        self.mutation_log = MutationLog(
            auto_compact_above=self.config.log_compact_above
        )
        #: Shared-memory segments for zero-copy seeding of spawn shards
        #: (idle for thread clusters — nothing leases unless a shard
        #: advertises adoption support).
        self._segments = SegmentStore()
        self._down_shards: dict[str, str] = {}  # shard id -> reason
        self._failovers = 0
        self._replica_retries = 0
        self._replayed_sessions = 0
        self._replayed_mutations = 0
        self._retired_shards: list[dict] = []
        self._moved_selection = BackendStats(keep_traces=False)
        self._default_tier = self.config.shard.default_tier
        self._started = False
        self._stopped = False
        # The cluster-side tracer shares the shard ServerConfig's knobs:
        # one sample decision is taken here per attend, and a sampled
        # request's context rides the RPC so the owning shard's span
        # tree parents under the cluster's rpc span.
        self.tracer = Tracer(
            sample_rate=self.config.shard.trace_sample_rate,
            max_spans=self.config.shard.trace_max_spans,
        )
        self.cache = ClusterCacheView(self)
        self._service = None
        self._service_lock = threading.Lock()
        for _ in range(self.config.num_shards):
            shard_id, handle = self._new_shard()
            self._shards[shard_id] = handle
            self.router.add_shard(shard_id)

    def _new_shard(self) -> tuple[str, ThreadShard | ProcessShard]:
        shard_id = f"shard-{self._next_shard_index}"
        self._next_shard_index += 1
        if self.config.spawn:
            handle = ProcessShard(
                shard_id,
                self.config.shard,
                rpc_timeout=self.config.rpc_timeout_seconds,
            )
        else:
            handle = ThreadShard(
                shard_id,
                self.config.shard,
                self._backend_factory,
                injector=self.fault_injector,
            )
        return shard_id, handle

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedAttentionServer":
        with self._lock:
            if self._started:
                raise RuntimeError("cluster already started")
            self._started = True
            for handle in self._shards.values():
                handle.start()
        return self

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self._shards.values())
        for handle in handles:
            handle.stop(timeout, drain=drain)
        # After every child is stopped (or reaped), destroy all segment
        # names: this is what guarantees zero /dev/shm residue — even
        # for segments a SIGKILL'd shard was mapping (the kernel freed
        # its mappings; the parent owns the names).
        with self._lock:
            self._segments.close_all()

    def __enter__(self) -> "ShardedAttentionServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    @property
    def shard_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    @property
    def num_shards(self) -> int:
        with self._lock:
            return len(self._shards)

    # ------------------------------------------------------------------
    # session registry and routing
    # ------------------------------------------------------------------
    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> Session:
        """Register (or replace) a session on its R preference shards.

        The write fans out to every replica of the session's ring
        preference list and is recorded in the mutation log (the
        session's recovery snapshot).  A replica dying mid-fan-out is
        failed over inline and the fan-out restarts against the shrunk
        ring — registration is idempotent per shard, so re-touching a
        survivor is harmless.
        """
        key, value = validate_memory(key, value)
        session = Session(
            session_id=session_id,
            key=key,
            value=value,
            fingerprint=KeyFingerprint.of(key),
        )
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            while True:
                if not self._shards:
                    raise ShardUnavailableError("cluster has no live shards")
                targets = self.router.preference_list(
                    session_id, self.config.replication
                )
                failed = None
                for shard_id in targets:
                    # Spawn shards adopt one shared segment by name
                    # (packed at most once per fan-out); thread shards
                    # keep their own defensive copy (the cache's
                    # contract).  The parent copy in `session` is what
                    # rebalance ships to a session's next home.
                    try:
                        self._seed_session(
                            self._shards[shard_id],
                            session_id,
                            key,
                            value,
                            session.fingerprint,
                        )
                    except ShardUnavailableError:
                        failed = shard_id
                        break
                if failed is None:
                    break
                self.report_shard_failure(
                    failed, reason="registration fan-out failed"
                )
            self._sessions[session_id] = session
            self._replicas[session_id] = targets
            self.mutation_log.record_register(session_id, key, value)
        return session

    def _segment_exporter(
        self, session_id: str, base_key: np.ndarray, base_value: np.ndarray
    ):
        """Log-replay hook: lease a segment for a session's base
        snapshot so failover rebuilds also seed by adoption.  Returns
        ``(segment_name, fingerprint)``, or ``None`` to make the replay
        fall back to pickled registration."""
        try:
            artifact = self._segments.lease(session_id, base_key, base_value)
        except OSError:
            return None
        return artifact.name, KeyFingerprint.of(base_key)

    def _seed_session(
        self,
        handle,
        session_id: str,
        key: np.ndarray,
        value: np.ndarray,
        fingerprint: KeyFingerprint,
    ) -> None:
        """Ship one session's memory to a shard: shared-memory segment
        adoption for shards that support it (one parent-side sort, a
        name over the pipe), pickled arrays otherwise.  A segment that
        cannot be packed (e.g. ``/dev/shm`` exhausted) falls back to
        the pickle path rather than failing the registration."""
        if getattr(handle, "supports_adopt", False):
            try:
                artifact = self._segments.lease(session_id, key, value)
            except OSError:
                artifact = None
            if artifact is not None:
                handle.adopt_session(session_id, artifact.name, fingerprint)
                return
        handle.register_session(session_id, key, value)

    def close_session(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)
            targets = self._replicas.pop(session_id, ())
            handles = [
                self._shards[shard_id]
                for shard_id in targets
                if shard_id in self._shards
            ]
            self.mutation_log.forget(session_id)
            self._segments.drop(session_id)
        for handle in handles:
            try:
                handle.close_session(session_id)
            except ShardUnavailableError:
                pass  # a dying replica holds nothing worth closing

    def mutate_session(self, session_id: str, mutation) -> Session:
        """Apply one session mutation cluster-wide, consistently.

        Runs under the cluster lock, like rebalancing — so a mutation
        and a topology change serialize.  The mutation is validated
        parent-side, **logged**, fanned out to every replica, and
        applied to the parent-side session record as one step; a
        rebalance that later moves the session re-registers the parent
        copy, which therefore already contains every applied mutation —
        the new shard serves the mutated memory from its first request
        (item 4 of the :mod:`repro.serve.mutator` ordering contract).

        The log append happens *before* the fan-out: if a replica dies
        mid-fan-out, the failover replay that rebuilds redundancy
        includes this mutation, while the survivors already received it
        directly — exactly-once everywhere, because replay only ever
        targets shards that were never in the session's replica set.
        """
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(
                    f"session {session_id!r} is not registered"
                )
            # Validate parent-side first: a bad mutation must fail
            # before anything is logged or shipped to any shard.
            new_key, new_value = mutation.apply(session.key, session.value)
            self.mutation_log.record_mutation(session_id, mutation)
            dead: list[str] = []
            for shard_id in list(self._replicas[session_id]):
                try:
                    self._shards[shard_id].mutate_session(session_id, mutation)
                except ShardUnavailableError:
                    dead.append(shard_id)
            session.replace_memory(
                new_key, new_value, KeyFingerprint.of(new_key)
            )
            for shard_id in dead:
                self.report_shard_failure(
                    shard_id, reason="mutation fan-out failed"
                )
        return session

    def mutator(self, session_id: str) -> SessionMutator:
        """A :class:`~repro.serve.mutator.SessionMutator` bound to one
        session; mutations follow the session across rebalances."""
        self._get_session(session_id)  # fail fast on unknown sessions
        return SessionMutator(self, session_id)

    def _get_session(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"session {session_id!r} is not registered"
            )
        return session

    @property
    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def session_shard(self, session_id: str) -> str:
        """The session's *primary* shard (its preference-list head)."""
        return self.session_replicas(session_id)[0]

    def session_replicas(self, session_id: str) -> list[str]:
        """The session's replica shard ids, primary first."""
        with self._lock:
            replicas = self._replicas.get(session_id)
        if replicas is None:
            raise UnknownSessionError(
                f"session {session_id!r} is not registered"
            )
        if not replicas:
            raise ShardUnavailableError(
                f"session {session_id!r} has no live replicas"
            )
        return list(replicas)

    def _route_handle(
        self, session_id: str
    ) -> tuple[str, ThreadShard | ProcessShard]:
        with self._lock:
            replicas = self._replicas.get(session_id)
            if replicas is None:
                raise UnknownSessionError(
                    f"session {session_id!r} is not registered"
                )
            if not replicas:
                raise ShardUnavailableError(
                    f"session {session_id!r} has no live replicas"
                )
            return replicas[0], self._shards[replicas[0]]

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def _dispatch(
        self, session_id: str, op: str, payload, timeout, tier,
        trace_root=None,
    ):
        """Run one read against the session's primary, failing over on
        retryable errors.

        The retry ladder (bounded by ``failover_attempts``, linear
        backoff between attempts):

        * :class:`ShardUnavailableError` — the primary died before
          answering.  Report the failure (promoting the next surviving
          replica) and re-dispatch there; the backends are
          deterministic, so the retried read returns the bit-identical
          row.  Counted in ``replica_retries``.
        * :class:`UnknownSessionError` / ``ServerClosedError`` — the
          session moved between routing and dispatch (an explicit
          rebalance or a failover won the race): retry on its new home.
        * Any other :class:`ShardError` is **fatal** — the shard
          actually processed the request and refused it; every replica
          would refuse identically, so it propagates immediately.

        ``trace_root`` (a sampled cluster-side root span) makes each
        attempt an ``rpc`` child span whose context is shipped with the
        request, so the shard-side span tree links under it.
        """
        last_error: Exception | None = None
        for attempt in range(self.config.failover_attempts):
            if attempt:
                time.sleep(self.config.failover_backoff_seconds * attempt)
            shard_id, handle = self._route_handle(session_id)
            rpc = None
            kwargs = {"tier": tier}
            if trace_root is not None:
                rpc = self.tracer.start_span(
                    "rpc",
                    trace_id=trace_root.trace_id,
                    parent_id=trace_root.span_id,
                    attrs={"shard": shard_id, "attempt": attempt},
                )
                kwargs["trace_ctx"] = rpc.context()
            try:
                result = getattr(handle, op)(
                    session_id, payload, timeout, **kwargs
                )
            except ShardUnavailableError as exc:
                last_error = exc
                if rpc is not None:
                    rpc.attrs["error"] = type(exc).__name__
                    self.tracer.record(rpc)
                self.report_shard_failure(
                    shard_id, reason="request dispatch failed"
                )
                with self._lock:
                    self._replica_retries += 1
            except (UnknownSessionError, ServerClosedError) as exc:
                last_error = exc
                if rpc is not None:
                    rpc.attrs["error"] = type(exc).__name__
                    self.tracer.record(rpc)
            else:
                if rpc is not None:
                    self.tracer.record(rpc)
                return result
        assert last_error is not None
        raise last_error

    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None = 30.0,
        tier: str | None = None,
    ) -> np.ndarray:
        """Route one query to its session's primary and block for the
        row, failing over to a surviving replica if the primary dies
        (see :meth:`_dispatch`).

        ``tier`` rides the RPC unchanged: the owning shard resolves
        ``None`` against its own live default (kept cluster-consistent
        by :meth:`set_default_tier`) and pins explicit tiers exactly as
        a single server would.
        """
        if self.config.spawn:
            # Fail bad queries parent-side instead of shipping them over
            # the pipe; thread shards validate inside submit() already.
            query = self._get_session(session_id).validate_query(query)
        root = None
        if self.tracer.enabled and self.tracer.sample():
            root = self.tracer.start_span(
                "cluster_request", attrs={"session": session_id}
            )
        try:
            result = self._dispatch(
                session_id, "attend", query, timeout, tier, trace_root=root
            )
        except BaseException as exc:
            if root is not None:
                root.attrs["error"] = type(exc).__name__
                self.tracer.record(root)
            raise
        if root is not None:
            self.tracer.record(root)
        return result

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None = 30.0,
        tier: str | None = None,
    ) -> np.ndarray:
        """Route a caller-side batch to the session's primary and
        gather, with the same failover ladder as :meth:`attend`."""
        if self.config.spawn:
            session = self._get_session(session_id)
            queries = np.stack(
                [session.validate_query(q) for q in np.asarray(queries)]
            )
        return self._dispatch(
            session_id, "attend_many", queries, timeout, tier
        )

    def service(self):
        """This cluster's :class:`~repro.serve.service.AttentionService`
        — the same transport-agnostic typed-op dispatch surface a single
        server exposes, so a network frontend (or any op-speaking
        caller) targets either interchangeably (cached)."""
        from repro.serve.service import AttentionService

        with self._service_lock:
            if self._service is None:
                self._service = AttentionService(self)
            return self._service

    # ------------------------------------------------------------------
    # quality tiers
    # ------------------------------------------------------------------
    @property
    def default_tier(self) -> str:
        """The live default tier applied cluster-wide."""
        with self._lock:
            return self._default_tier

    def set_default_tier(self, tier: str) -> str:
        """Move every shard's live default tier, atomically with respect
        to topology changes (runs under the cluster lock, like
        rebalancing, so a shard added concurrently can never miss the
        change — :meth:`add_shard` applies the current default to new
        replicas).  Returns the previous cluster-wide default.

        The recorded cluster default is updated *before* the per-shard
        fan-out and every shard is attempted even if one fails, so a
        dead replica cannot leave the cluster silently split-tier: the
        survivors and the recorded default stay consistent (and future
        :meth:`add_shard` joins inherit the intended tier), while the
        first shard failure is re-raised to the caller.
        """
        tier_rank(tier)  # raises ConfigError on unknown tiers
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            previous = self._default_tier
            if tier != previous:
                self._default_tier = tier
                failure = None
                dead: list[str] = []
                for shard_id, handle in list(self._shards.items()):
                    try:
                        handle.set_default_tier(tier)
                    except ShardUnavailableError:
                        # The replica is gone, not split-tier: fail it
                        # over (below) instead of failing the caller.
                        dead.append(shard_id)
                    except ShardError as exc:
                        failure = failure or exc
                for shard_id in dead:
                    self.report_shard_failure(
                        shard_id, reason="tier fan-out failed"
                    )
                if failure is not None:
                    raise failure
        return previous

    # ------------------------------------------------------------------
    # failure detection and failover
    # ------------------------------------------------------------------
    def ping_shard(self, shard_id: str, timeout: float | None = None) -> bool:
        """One liveness probe of one shard (the heartbeat primitive).

        Spawned shards answer with process liveness *plus* an echo RPC
        bounded by ``timeout``; thread shards consult the fault
        injector and their server state.  Unknown (already failed-over)
        shards are simply dead.  Never raises.
        """
        with self._lock:
            handle = self._shards.get(shard_id)
        if handle is None:
            return False
        try:
            return bool(handle.ping(timeout=timeout))
        except Exception:  # noqa: BLE001 — probes report, never raise
            return False

    def kill_shard(self, shard_id: str) -> None:
        """Crash a shard, the chaos hook: ``SIGKILL`` for spawned
        shards, an injected kill for thread shards.

        Deliberately does *not* run failover — that is the job of the
        :class:`~repro.serve.health.HeartbeatMonitor` or the request
        path's retry, which is exactly what a chaos test wants to
        exercise.
        """
        with self._lock:
            handle = self._shards.get(shard_id)
        if handle is None:
            raise ConfigError(f"unknown shard {shard_id!r}")
        if isinstance(handle, ProcessShard):
            handle.kill()
        else:
            self.fault_injector.kill(shard_id)

    def monitor(self) -> HeartbeatMonitor:
        """A :class:`~repro.serve.health.HeartbeatMonitor` for this
        cluster, configured from :class:`ClusterConfig` (not started)."""
        return HeartbeatMonitor(
            self,
            interval_seconds=self.config.heartbeat_interval_seconds,
            misses=self.config.heartbeat_misses,
        )

    def report_shard_failure(
        self, shard_id: str, reason: str = "reported down"
    ) -> bool:
        """Declare a shard dead and fail its sessions over.  Idempotent.

        Every detection path converges here — the heartbeat monitor,
        the request path's :class:`ShardUnavailableError`, fan-out
        failures, and operators.  Under the cluster lock (atomic with
        respect to requests' routing reads and other control-plane
        work):

        1. the shard leaves the ring and the live shard map; its
           remaining telemetry is banked best-effort and the handle is
           reaped;
        2. every session it replicated promotes its next surviving
           replica to primary (survivors keep preference order — ring
           removal preserves the relative order of the remaining
           shards);
        3. lost redundancy is rebuilt by replaying each affected
           session's mutation log onto the next live shards of its
           preference list, until the session is back to
           ``min(R, live_shards)`` replicas.  Replay drives the same
           register + incremental-mutate path live traffic uses, so
           the rebuilt prepared state is bit-identical.

        A replica that dies *during* step 3 is failed over recursively
        once this pass finishes.  Returns ``True`` if this call
        performed the failover, ``False`` if the shard was already gone
        (a lost race, not an error).
        """
        cascade: list[str] = []
        with self._lock:
            handle = self._shards.pop(shard_id, None)
            if handle is None:
                return False
            self.router.remove_shard(shard_id)
            self._down_shards[shard_id] = reason
            self._failovers += 1
            self._bank_dead_shard(handle)
            r = self.config.replication
            for session_id in list(self._replicas):
                current = [
                    s
                    for s in self._replicas[session_id]
                    if s in self._shards
                ]
                # Write the filtered list back even when no rebuild is
                # needed: the dead shard must never linger as a routable
                # replica.
                self._replicas[session_id] = current
                if not self._shards:
                    continue
                preference = self.router.preference_list(session_id, r)
                if current == preference:
                    continue
                # Ring removal keeps the survivors' relative order, so
                # the filtered `current` is already a prefix-subsequence
                # of `preference`; missing members are rebuilt by
                # replaying the session's log.
                rebuilt = [s for s in preference if s in current]
                for target in preference:
                    if target in rebuilt:
                        continue
                    try:
                        replayed = self.mutation_log.replay_onto(
                            session_id,
                            self._shards[target],
                            exporter=self._segment_exporter,
                        )
                    except ShardUnavailableError:
                        if target not in cascade:
                            cascade.append(target)
                        continue
                    self._replayed_sessions += 1
                    self._replayed_mutations += replayed
                    rebuilt.append(target)
                self._replicas[session_id] = rebuilt
            for dead in cascade:
                self.report_shard_failure(
                    dead, reason="died during failover replay"
                )
        return True

    def _bank_dead_shard(self, handle: ThreadShard | ProcessShard) -> None:
        """Reap a dead shard's handle and preserve what telemetry it
        can still give.

        A thread shard "killed" by the injector still has its counters
        in memory, so nothing is lost; a crashed child process takes
        its local telemetry with it (the one thing a shard death does
        lose) and contributes an empty snapshot.
        """
        try:
            handle.stop(1.0)
        except Exception:  # noqa: BLE001 — reaping is best-effort
            pass
        try:
            self._retired_shards.append(
                {
                    "shard_id": handle.shard_id,
                    "snapshot": handle.snapshot(),
                    "samples": handle.latency_samples(),
                    "merged": handle.merged_backend_stats(),
                    "spans": _reap_spans(handle),
                    "metrics": _reap_metrics(handle),
                }
            )
        except Exception:  # noqa: BLE001 — telemetry died with the shard
            pass

    @property
    def down_shards(self) -> dict[str, str]:
        """Shards declared dead, with the reason each was failed over."""
        with self._lock:
            return dict(self._down_shards)

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def add_shard(self) -> tuple[str, list[str]]:
        """Join a new replica; move exactly the sessions it now owns.

        Returns ``(shard_id, moved_session_ids)``.  Consistent hashing
        guarantees every moved session's new route *is* the new shard —
        the property test pins that down.

        Rebalancing is a stop-the-world control-plane operation: the
        cluster lock is held while the moved sessions' key/value
        matrices are re-registered (for spawned shards, piped to the
        child), so concurrent attends stall for the duration.  In
        exchange, no request can ever observe a half-moved topology.
        """
        with self._lock:
            if self._stopped:
                raise ServerClosedError("cluster is stopped")
            shard_id, handle = self._new_shard()
            self._shards[shard_id] = handle
            if self._started:
                handle.start()
            if self._default_tier != self.config.shard.default_tier:
                # The cluster's live default was moved (e.g. by an SLO
                # controller); a replica joining mid-degradation must
                # not serve best-effort traffic at the stale ceiling.
                handle.set_default_tier(self._default_tier)
            self.router.add_shard(shard_id)
            moved = self._rebalance()
        return shard_id, moved

    def remove_shard(
        self, shard_id: str, timeout: float | None = 10.0
    ) -> list[str]:
        """Retire a replica; move exactly the sessions it hosted.

        The handle is drained (in-flight requests finish) after its
        sessions have been re-registered elsewhere.  Returns the moved
        session ids.  Like :meth:`add_shard`, the re-registration runs
        under the cluster lock (stop-the-world; see there).
        """
        with self._lock:
            if shard_id not in self._shards:
                raise ConfigError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ConfigError("cannot remove the last shard")
            self.router.remove_shard(shard_id)
            handle = self._shards.pop(shard_id)
            moved = self._rebalance()
        handle.stop(timeout, drain=True)
        # Preserve the retired replica's telemetry (after the drain, so
        # its last batches are counted): cluster-wide totals must never
        # shrink because the topology changed.
        retired = {
            "shard_id": shard_id,
            "snapshot": handle.snapshot(),
            "samples": handle.latency_samples(),
            "merged": handle.merged_backend_stats(),
            "spans": _reap_spans(handle),
            "metrics": _reap_metrics(handle),
        }
        with self._lock:
            self._retired_shards.append(retired)
        return moved

    def _rebalance(self) -> list[str]:
        """Re-register every session whose replica set changed; returns
        them.

        Planned topology changes (unlike failover) still hold the
        session's current parent-side memory, so new replicas are
        seeded from it directly rather than by log replay.
        Registration on the new shards happens *before* the replica
        flip and the close on the old shards, so a concurrent
        ``attend`` either still finds the session on its old home or
        already finds it on the new one — the request-path retry
        covers the gap.
        """
        moved = []
        r = self.config.replication
        for session_id, session in self._sessions.items():
            target = self.router.preference_list(session_id, r)
            current = self._replicas[session_id]
            if target == current:
                continue
            for shard_id in target:
                if shard_id not in current:
                    self._seed_session(
                        self._shards[shard_id],
                        session_id,
                        session.key,
                        session.value,
                        session.fingerprint,
                    )
            self._replicas[session_id] = target
            for shard_id in current:
                if shard_id in target:
                    continue
                old = self._shards.get(shard_id)
                if old is not None:  # absent when rebalancing a removal
                    # Closing the session on its old shard drops its
                    # selection history there; bank it first so the
                    # cluster-wide aggregate survives the move.
                    self._moved_selection.merge(
                        old.session_stats(session_id)
                    )
                    old.close_session(session_id)
            moved.append(session_id)
        return moved

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def session_stats(self, session_id: str) -> BackendStats:
        """One session's selection counters, from its primary shard.

        Fails over like :meth:`_dispatch`: a dead primary is reported
        and the next surviving replica answers.  The dead shard's own
        counters are banked into the *cluster* aggregate, not the
        per-session stats — a crash can shrink a session's reported
        selection history, never its served answers.
        """
        last_error: Exception | None = None
        for attempt in range(self.config.failover_attempts):
            if attempt:
                time.sleep(self.config.failover_backoff_seconds * attempt)
            shard_id, handle = self._route_handle(session_id)
            try:
                return handle.session_stats(session_id)
            except ShardUnavailableError as exc:
                last_error = exc
                self.report_shard_failure(
                    shard_id, reason="session-stats dispatch failed"
                )
            except (UnknownSessionError, ServerClosedError) as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def shard_snapshots(self) -> dict[str, dict]:
        """Each shard's own :meth:`AttentionServer.snapshot`."""
        with self._lock:
            handles = dict(self._shards)
        return {
            shard_id: handle.snapshot()
            for shard_id, handle in sorted(handles.items())
        }

    def snapshot(self) -> dict:
        """Cluster-wide aggregate plus the per-shard snapshots.

        Percentiles are recomputed from the pooled per-shard latency
        samples (percentiles don't average); ``load_imbalance`` is the
        max/mean ratio of completed requests per shard — 1.0 means the
        router spread the load perfectly, ``num_shards`` means one
        shard took everything.
        """
        with self._lock:
            handles = dict(self._shards)
            retired = list(self._retired_shards)
            moved_selection = BackendStats(keep_traces=False)
            moved_selection.merge(self._moved_selection)
            # Primaries only: replicas are redundancy, not load (reads
            # go to the primary), so the per-shard session count — and
            # the "sums to len(sessions)" invariant — stays primary-based.
            sessions_per_shard = {shard_id: 0 for shard_id in handles}
            for replicas in self._replicas.values():
                if replicas and replicas[0] in sessions_per_shard:
                    sessions_per_shard[replicas[0]] += 1
            down_shards = dict(self._down_shards)
            failover = {
                "failovers": self._failovers,
                "down_shards": sorted(down_shards),
                "replica_retries": self._replica_retries,
                "replayed_sessions": self._replayed_sessions,
                "replayed_mutations": self._replayed_mutations,
            }
        shards = {
            shard_id: handle.snapshot()
            for shard_id, handle in sorted(handles.items())
        }
        # Removed replicas contribute their preserved totals/samples so
        # the cluster aggregate never shrinks on a topology change; the
        # live per-shard views (and load imbalance) stay topology-only.
        counter_sources = list(shards.values()) + [
            r["snapshot"] for r in retired
        ]
        samples: list[float] = []
        for handle in handles.values():
            samples.extend(handle.latency_samples())
        merged = BackendStats(keep_traces=False)
        merged.merge(moved_selection)
        for handle in handles.values():
            merged.merge(handle.merged_backend_stats())
        for entry in retired:
            samples.extend(entry["samples"])
            merged.merge(entry["merged"])
        completed = [snap["completed"] for snap in shards.values()]
        mean_completed = (
            sum(completed) / len(completed) if completed else 0.0
        )
        cluster = {
            "num_shards": len(shards),
            "retired_shards": len(retired),
            "sessions": len(self._sessions),
            "sessions_per_shard": sessions_per_shard,
            "completed_per_shard": {
                shard_id: snap["completed"]
                for shard_id, snap in shards.items()
            },
            "load_imbalance": (
                max(completed) / mean_completed if mean_completed else 1.0
            ),
            "latency_seconds": latency_summary(samples),
            "selection": {
                "calls": merged.calls,
                "candidate_fraction": merged.candidate_fraction,
                "kept_fraction": merged.kept_fraction,
            },
        }
        cluster["default_tier"] = self._default_tier
        cluster["replication"] = self.config.replication
        cluster["liveness"] = {
            **{shard_id: True for shard_id in shards},
            **{shard_id: False for shard_id in sorted(down_shards)},
        }
        cluster["failover"] = failover
        for counter in ("submitted", "rejected", "completed", "failed", "batches"):
            cluster[counter] = sum(snap[counter] for snap in counter_sources)
        # Per-tier admission/outcome counters pooled across live and
        # retired shards (latency summaries stay per shard: percentiles
        # don't sum, and the tier reservoirs aren't shipped home).
        tiers: dict[str, dict[str, int]] = {}
        for snap in counter_sources:
            for tier, cell in snap.get("tiers", {}).items():
                agg = tiers.setdefault(
                    tier, {"submitted": 0, "completed": 0, "failed": 0}
                )
                for stat in agg:
                    agg[stat] += cell[stat]
        cluster["tiers"] = dict(sorted(tiers.items()))
        # Same key set as the single-server "quality" dict, so readers
        # of the flat counters work uniformly.  Counters are summed
        # across shards; a cluster-wide set_default_tier moves every
        # shard, so one cluster-level transition counts once per shard.
        cluster["quality"] = {
            stat: sum(
                snap.get("quality", {}).get(stat, 0)
                for snap in counter_sources
            )
            for stat in (
                "downgraded_requests", "tier_downgrades", "tier_upgrades",
            )
        }
        cluster["cache"] = {
            stat: sum(snap["cache"].get(stat, 0) for snap in counter_sources)
            for stat in ("hits", "misses", "evictions", "spills", "promotes")
        }
        lookups = cluster["cache"]["hits"] + cluster["cache"]["misses"]
        # 0.0, not 1.0, when nothing was looked up: an idle cluster has
        # no evidence of cache effectiveness (same convention as
        # CacheStats.hit_rate — the old 1.0 made an idle cluster report
        # a perfect cache).
        cluster["cache"]["hit_rate"] = (
            cluster["cache"]["hits"] / lookups if lookups else 0.0
        )
        # The flat counters double as the AttentionServer.snapshot()
        # surface, so load generators can read either uniformly.
        cluster["mean_batch_size"] = (
            cluster["completed"] / cluster["batches"]
            if cluster["batches"]
            else 0.0
        )
        return {"cluster": cluster, "shards": shards}

    def trace_spans(self) -> list[dict]:
        """Drain the cluster's finished spans: cluster-side roots/rpc
        spans, every live shard's spans (fetched over the pipe for
        spawned shards), and spans banked from retired shards.  Each
        span is returned at most once."""
        with self._lock:
            handles = dict(self._shards)
            banked: list[dict] = []
            for entry in self._retired_shards:
                reaped = entry.pop("spans", None)
                if reaped:
                    banked.extend(reaped)
        spans = self.tracer.drain()
        spans.extend(banked)
        for handle in sorted(handles.values(), key=lambda h: h.shard_id):
            try:
                spans.extend(handle.trace_spans())
            except Exception:  # noqa: BLE001 — telemetry is best-effort
                pass
        return spans

    def metrics_registry(self) -> MetricsRegistry:
        """One merged :class:`~repro.serve.observability.MetricsRegistry`:
        every live shard's samples (labelled with its shard id), retired
        shards' banked samples, and the cluster's own failover/liveness
        counters."""
        registry = MetricsRegistry()
        with self._lock:
            handles = dict(self._shards)
            retired = [
                (entry.get("shard_id", "retired"), entry.get("metrics"))
                for entry in self._retired_shards
            ]
            down = dict(self._down_shards)
            failover = {
                "failovers": self._failovers,
                "replica_retries": self._replica_retries,
                "replayed_sessions": self._replayed_sessions,
                "replayed_mutations": self._replayed_mutations,
            }
            sessions = len(self._sessions)
        for shard_id, handle in sorted(handles.items()):
            try:
                samples = handle.metrics_samples()
            except Exception:  # noqa: BLE001 — telemetry is best-effort
                continue
            registry.absorb(samples, extra_labels={"shard": shard_id})
        for shard_id, samples in retired:
            if samples:
                registry.absorb(samples, extra_labels={"shard": shard_id})
        registry.gauge(
            "repro_cluster_shards", "Live shard replicas."
        ).set(len(handles))
        registry.gauge(
            "repro_cluster_sessions", "Registered sessions."
        ).set(sessions)
        up = registry.gauge(
            "repro_cluster_shard_up",
            "Shard liveness (1 live, 0 declared down).",
            labelnames=("shard",),
        )
        for shard_id in sorted(handles):
            up.labels(shard=shard_id).set(1)
        for shard_id in sorted(down):
            up.labels(shard=shard_id).set(0)
        events = registry.counter(
            "repro_cluster_failover_events_total",
            "Failover machinery counters by event.",
            labelnames=("event",),
        )
        for event, value in sorted(failover.items()):
            events.labels(event=event).inc(value)
        return registry

    def metrics_text(self) -> str:
        """Prometheus text exposition of the merged cluster metrics."""
        return self.metrics_registry().expose()


def _reap_spans(handle) -> list[dict]:
    """A dying/retiring shard's remaining spans, best-effort."""
    try:
        return handle.trace_spans()
    except Exception:  # noqa: BLE001 — telemetry died with the shard
        return []


def _reap_metrics(handle) -> list[dict]:
    """A dying/retiring shard's final metric samples, best-effort."""
    try:
        return handle.metrics_samples()
    except Exception:  # noqa: BLE001 — telemetry died with the shard
        return []


def _empty_shard_snapshot() -> dict:
    """The zero-traffic snapshot shape of a shard that never served.

    Built from the real stats objects so the structure can never drift
    from :meth:`AttentionServer.snapshot`.
    """
    return ServerStats().snapshot(
        cache_stats=CacheStats(), backend=BackendStats(keep_traces=False)
    )


