"""SLO-aware quality degradation: trade accuracy for latency, not
availability.

The paper's central lever is the accuracy/latency dial of approximate
attention (conservative vs. aggressive thresholds).  This module puts
that dial under closed-loop control: when a server is overloaded, the
usual backpressure options are to reject traffic or let latency blow
through the SLO — but an approximate-attention server has a third
option the paper makes cheap, *serve the same queries at a lower
quality tier*.  :class:`AdaptiveQualityController` samples the server's
telemetry on a fixed interval and walks the live default tier down the
degradation ladder (:data:`repro.core.config.TIERS`) under sustained
overload, then back up once the server has recovered — so tagged
best-effort traffic keeps its answers (cheaper ones) instead of
receiving ``ServerOverloadedError``, while requests pinned to a tier
(``tier="exact"`` in particular) are never touched: the controller only
moves the default used for unpinned submissions.

The feedback signal is the **windowed** p95 latency (the requests
completed since the previous tick, via
:meth:`~repro.serve.stats.ServerStats.take_recent_latencies`) plus the
instantaneous queue depth, compared against the configured SLO.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TIERS, tier_rank
from repro.errors import ConfigError

__all__ = ["QualityPolicy", "TierTransition", "AdaptiveQualityController"]


@dataclass(frozen=True)
class QualityPolicy:
    """The SLO and the hysteresis knobs of one quality controller.

    Attributes
    ----------
    slo_p95_seconds:
        The latency objective: the windowed p95 a tick must exceed to
        count as overloaded.
    interval_seconds:
        Controller tick period (also the latency window length).
    queue_depth_high:
        Optional second overload signal: a tick whose queue depth is at
        or above this counts as overloaded even without latency samples
        (a saturated server may complete too few requests per window to
        produce a meaningful p95).  ``None`` disables it.
    overload_ticks:
        Consecutive overloaded ticks required before one downgrade step.
    recovery_ticks:
        Consecutive healthy ticks required before one upgrade step.
        Kept larger than ``overload_ticks`` by default: recovering
        quality too eagerly re-triggers the overload and flaps.
    min_window_samples:
        Ticks with fewer completed requests than this don't evaluate
        the p95 latency signal (a tiny sample's p95 is noise).  Such a
        tick is classified three ways: *overloaded* if the queue-depth
        signal trips; *healthy* when the server is genuinely idle
        (empty window and empty queue) **or** every sample in the
        small window meets the SLO (the max needs no sample-count
        confidence, and light steady traffic must still earn
        recovery); otherwise *neutral* — a saturated server trickling
        out a few over-SLO completions per interval is not evidence of
        health, so neutral ticks advance neither streak.
    floor_tier:
        The lowest tier the controller may degrade to (default: the
        bottom of the ladder, ``"aggressive"``).
    """

    slo_p95_seconds: float
    interval_seconds: float = 0.05
    queue_depth_high: int | None = None
    overload_ticks: int = 3
    recovery_ticks: int = 6
    min_window_samples: int = 4
    floor_tier: str = "aggressive"

    def __post_init__(self) -> None:
        if self.slo_p95_seconds <= 0:
            raise ConfigError(
                f"slo_p95_seconds must be > 0, got {self.slo_p95_seconds}"
            )
        if self.interval_seconds <= 0:
            raise ConfigError(
                f"interval_seconds must be > 0, got {self.interval_seconds}"
            )
        if self.overload_ticks < 1 or self.recovery_ticks < 1:
            raise ConfigError(
                "overload_ticks and recovery_ticks must be >= 1"
            )
        if self.min_window_samples < 1:
            # 0 would classify an *empty* window as a valid latency
            # signal and crash the percentile; the daemon thread would
            # die silently and the operator would believe SLO control
            # is still active.
            raise ConfigError(
                f"min_window_samples must be >= 1, got "
                f"{self.min_window_samples}"
            )
        if self.queue_depth_high is not None and self.queue_depth_high < 1:
            raise ConfigError(
                f"queue_depth_high must be >= 1 or None, got "
                f"{self.queue_depth_high}"
            )
        tier_rank(self.floor_tier)  # raises ConfigError on unknown tiers


@dataclass(frozen=True)
class TierTransition:
    """One recorded default-tier move (telemetry / tests)."""

    at_monotonic: float
    from_tier: str
    to_tier: str
    reason: str  # "overload" | "recovery"
    window_p95_seconds: float
    queue_depth: int


@dataclass
class _ControllerState:
    hot_ticks: int = 0
    cool_ticks: int = 0
    transitions: list[TierTransition] = field(default_factory=list)


class AdaptiveQualityController:
    """Feedback loop degrading (and restoring) a server's default tier.

    Works against anything exposing the :class:`AttentionServer`
    control surface this loop touches: ``stats``
    (:meth:`~repro.serve.stats.ServerStats.take_recent_latencies`),
    ``batcher.depth``, ``default_tier``, ``set_default_tier``, and
    ``config.default_tier`` (the configured ceiling it restores to).

    **Stability contract** (hysteresis, no flapping).  The controller
    moves the default tier at most one ladder step at a time, and only
    on *sustained* evidence: a downgrade requires
    ``policy.overload_ticks`` consecutive overloaded ticks, an upgrade
    ``policy.recovery_ticks`` consecutive healthy ticks, and every
    transition (in either direction) resets both streak counters to
    zero.  Consequently (a) two consecutive transitions are always at
    least ``min(overload_ticks, recovery_ticks)`` intervals apart, (b)
    a downgrade⇄upgrade oscillation needs a full
    ``overload_ticks + recovery_ticks`` intervals per cycle even under
    an adversarial load right at the SLO boundary, and (c) with
    ``recovery_ticks > overload_ticks`` (the default) the loop is
    biased toward staying degraded until the overload is convincingly
    gone.  The ladder is bounded by ``policy.floor_tier`` below and the
    server's *configured* default above — the controller never upgrades
    past what the operator asked for, and never touches pinned
    requests (pinning bypasses the default entirely).

    Use as a context manager or via :meth:`start`/:meth:`stop`; or call
    :meth:`tick` directly for deterministic stepping in tests.
    """

    def __init__(self, server, policy: QualityPolicy):
        self.server = server
        self.policy = policy
        ceiling = server.config.default_tier
        if tier_rank(policy.floor_tier) < tier_rank(ceiling):
            raise ConfigError(
                f"floor_tier {policy.floor_tier!r} is better quality than "
                f"the server's configured default {ceiling!r}"
            )
        self._ceiling = ceiling
        self._state = _ControllerState()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AdaptiveQualityController":
        if self._thread is not None:
            raise RuntimeError("controller already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-quality-controller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, restore: bool = True) -> None:
        """Stop the loop; by default restore the configured tier so a
        stopped controller never leaves the server degraded forever."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if restore and self.server.default_tier != self._ceiling:
            self.server.set_default_tier(self._ceiling)

    def __enter__(self) -> "AdaptiveQualityController":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_event.wait(self.policy.interval_seconds):
            self.tick()

    # ------------------------------------------------------------------
    # the control step
    # ------------------------------------------------------------------
    @property
    def current_tier(self) -> str:
        return self.server.default_tier

    @property
    def transitions(self) -> list[TierTransition]:
        """Every default-tier move this controller made (oldest first)."""
        return list(self._state.transitions)

    def publish_metrics(self, registry, labels=None) -> None:
        """Publish the controller's degradation telemetry into a
        :class:`~repro.serve.observability.MetricsRegistry`."""
        extra = dict(labels or {})
        names = tuple(extra)
        transitions = registry.counter(
            "repro_serve_controller_transitions_total",
            "Default-tier moves by direction.",
            labelnames=("reason", *names),
        )
        moves = {"overload": 0, "recovery": 0}
        for transition in self._state.transitions:
            moves[transition.reason] = moves.get(transition.reason, 0) + 1
        for reason, count in sorted(moves.items()):
            transitions.labels(reason=reason, **extra).inc(count)
        registry.gauge(
            "repro_serve_controller_tier_info",
            "The controller's current default tier "
            "(value 1 on the active tier).",
            labelnames=("tier", *names),
        ).labels(tier=self.current_tier, **extra).set(1)

    def tick(self) -> TierTransition | None:
        """Evaluate one control interval; returns the transition made,
        if any.  Thread-hostile by design: call from the controller
        thread or from a test, never both."""
        policy = self.policy
        window = self.server.stats.take_recent_latencies()
        queue_depth = self.server.batcher.depth
        latency_valid = len(window) >= policy.min_window_samples
        p95 = (
            float(np.percentile(np.asarray(window), 95))
            if latency_valid
            else 0.0
        )
        overloaded = bool(
            (latency_valid and p95 > policy.slo_p95_seconds)
            or (policy.queue_depth_high is not None
                and queue_depth >= policy.queue_depth_high)
        )
        # Classify ticks whose window is too small for a trustworthy
        # p95.  Genuinely idle (nothing completed, nothing queued) is
        # healthy, and so is a small window whose *every* sample meets
        # the SLO (max <= SLO is stricter than any percentile, so no
        # sample-count confidence is needed) — light steady traffic
        # must still earn recovery.  What must NOT earn it is a
        # saturated server trickling out a few over-SLO completions
        # per interval: that tick is *neutral* and advances neither
        # streak.
        idle = not window and queue_depth == 0
        small_but_meeting_slo = bool(window) and not latency_valid and (
            max(window) <= policy.slo_p95_seconds
        )
        healthy = not overloaded and (
            latency_valid or idle or small_but_meeting_slo
        )
        state = self._state
        if overloaded:
            state.hot_ticks += 1
            state.cool_ticks = 0
        elif healthy:
            state.cool_ticks += 1
            state.hot_ticks = 0
        else:
            return None

        current = self.server.default_tier
        rank = tier_rank(current)
        if (
            overloaded
            and state.hot_ticks >= policy.overload_ticks
            and rank < tier_rank(policy.floor_tier)
        ):
            return self._transition(
                TIERS[rank + 1], "overload", p95, queue_depth
            )
        if (
            not overloaded
            and state.cool_ticks >= policy.recovery_ticks
            and rank > tier_rank(self._ceiling)
        ):
            return self._transition(
                TIERS[rank - 1], "recovery", p95, queue_depth
            )
        return None

    def _transition(
        self, to_tier: str, reason: str, p95: float, queue_depth: int
    ) -> TierTransition:
        from_tier = self.server.set_default_tier(to_tier)
        transition = TierTransition(
            at_monotonic=time.monotonic(),
            from_tier=from_tier,
            to_tier=to_tier,
            reason=reason,
            window_p95_seconds=p95,
            queue_depth=queue_depth,
        )
        state = self._state
        state.transitions.append(transition)
        state.hot_ticks = 0
        state.cool_ticks = 0
        return transition
