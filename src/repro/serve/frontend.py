"""Asyncio socket front end over the transport-agnostic service core.

:class:`NetworkFrontend` puts a network on an
:class:`~repro.serve.server.AttentionServer` or
:class:`~repro.serve.cluster.ShardedAttentionServer`:

* **persistent connections** — one TCP connection carries any number of
  concurrent requests, each stamped with a caller-chosen correlation id
  (:mod:`repro.serve.protocol` framing);
* **out-of-order responses** — a per-connection read loop decodes each
  frame into a typed service op and starts it immediately; responses go
  out in *completion* order.  Attend ops feed the target's existing
  :class:`~repro.serve.batcher.DynamicBatcher` through
  :meth:`~repro.serve.service.AttentionService.submit_attend`, so
  network traffic batches (and cross-session fuses) with everyone
  else's under the same policy, and a request's
  :class:`~repro.serve.tracing.TraceContext` rides the frame so its
  server-side span tree parents under the remote caller's span;
* **typed wire errors** — backpressure rejects, shutdown, unknown
  sessions, shard loss, invalid inputs, and framing violations each map
  to a distinct :data:`~repro.serve.protocol.OP_ERROR` code.  A frame
  with a bad version or an oversized declaration is answered and
  *skipped* (the connection survives); only an unsyncable stream (bad
  magic) closes the connection;
* **graceful drain** — :meth:`stop` first stops accepting, then
  resolves every in-flight correlated request — served if the target
  can still serve it, a typed :class:`~repro.serve.request.ServerClosedError`
  frame otherwise — and only then closes the sockets.  A client blocked
  on a response during shutdown always gets an answer, never a dead
  socket.  :meth:`install_signal_handlers` wires ``SIGTERM``/``SIGINT``
  to that same path.

The event loop runs on a dedicated daemon thread, so the synchronous
serving stack (and tests) can drive the frontend without owning an
event loop.  The frontend never starts or stops the target unless
constructed with ``own_target=True`` (the ``serving_demo --listen``
convenience).
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro.serve import protocol
from repro.serve.request import ServerClosedError
from repro.serve.service import AttendOp, AttentionService, PingOp
from repro.serve.tracing import TraceContext

__all__ = ["NetworkFrontend"]

_DISCARD_CHUNK = 1 << 16


class _Connection:
    """Loop-thread-only state of one client connection."""

    __slots__ = (
        "reader", "writer", "pending", "outbox", "draining", "closed",
        "peer",
    )

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        #: correlation id -> in-flight service Future
        self.pending: dict[int, Future] = {}
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.draining = False
        self.closed = False
        try:
            self.peer = writer.get_extra_info("peername")
        except Exception:  # noqa: BLE001 — telemetry only
            self.peer = None


class NetworkFrontend:
    """A TCP front door for one serving target.

    Parameters
    ----------
    target:
        An :class:`AttentionServer`, :class:`ShardedAttentionServer`,
        or a prebuilt :class:`~repro.serve.service.AttentionService`.
    host / port:
        Bind address; port ``0`` picks a free port (read it back from
        :attr:`address` / :attr:`port` after :meth:`start`).
    max_payload_bytes:
        Per-frame payload bound; larger declarations are answered with
        a typed :class:`~repro.serve.protocol.FrameTooLargeError` and
        skipped.
    drain_timeout_seconds:
        Patience of the drain phase of :meth:`stop` (and of the
        best-effort drain when a client disconnects with requests in
        flight).  In-flight requests still unresolved when it expires
        are answered with typed ``ServerClosedError`` frames.
    own_target:
        When ``True``, :meth:`start`/:meth:`stop` also start/stop the
        wrapped target (stop drains the target first, so queued
        requests resolve with results rather than rejects).
    """

    def __init__(
        self,
        target,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_payload_bytes: int = protocol.MAX_PAYLOAD_BYTES,
        drain_timeout_seconds: float = 10.0,
        own_target: bool = False,
    ):
        if isinstance(target, AttentionService):
            self.service = target
        else:
            self.service = AttentionService(target)
        self._host = host
        self._port = port
        self.max_payload_bytes = max_payload_bytes
        self.drain_timeout_seconds = drain_timeout_seconds
        self.own_target = own_target
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._bound: tuple[str, int] | None = None
        self._stopped = threading.Event()
        self._started = False
        # One admission thread, deliberately: attend admission may
        # *block* under the batcher's overload="block" policy, and a
        # blocked event loop would head-of-line-stall every connection.
        # A single thread keeps admission FIFO in frame-arrival order.
        self._admission = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-frontend-admit"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "NetworkFrontend":
        if self._started:
            raise RuntimeError("frontend already started")
        self._started = True
        if self.own_target and hasattr(self.service.target, "start"):
            if not getattr(self.service.target, "running", False):
                self.service.target.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-frontend", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._started = False
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle, self._host, self._port)
            )
        except BaseException as exc:  # noqa: BLE001 — surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        sock = self._server.sockets[0]
        self._bound = sock.getsockname()[:2]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.close()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._bound is None:
            raise RuntimeError("frontend is not started")
        return self._bound

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def running(self) -> bool:
        return (
            self._started
            and not self._stopped.is_set()
            and self._startup_error is None
        )

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting, drain in-flight requests, close the sockets.

        Every request that was correlated on any connection when the
        stop landed resolves **before its socket closes**: with its
        result if the target serves it (``own_target`` stops drain the
        target first, resolving its whole backlog), with a typed error
        frame otherwise.  ``drain=False`` skips waiting and converts
        all in-flight requests to typed ``ServerClosedError`` frames
        immediately.  Idempotent.
        """
        if not self._started or self._stopped.is_set():
            return
        self._stopped.set()
        patience = (
            self.drain_timeout_seconds if timeout is None else timeout
        )
        loop = self._loop
        if loop is not None and not loop.is_closed():
            shutdown = asyncio.run_coroutine_threadsafe(
                self._shutdown(drain, patience), loop
            )
            try:
                shutdown.result(patience + 10.0)
            except Exception:  # noqa: BLE001 — best-effort shutdown
                pass
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(10.0)
        self._admission.shutdown(wait=False)
        self.service.close()

    def __enter__(self) -> "NetworkFrontend":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)):
        """Route ``SIGTERM``/``SIGINT`` to a graceful drain-stop.

        Call from the main thread (the only thread allowed to set
        signal handlers).  The handler runs :meth:`stop` on a fresh
        thread — signal context must not block — and restores the
        previous handler so a second signal force-exits.
        """
        previous = {}

        def handle(signum, frame):
            for sig, old in previous.items():
                signal.signal(sig, old)
            threading.Thread(
                target=self.stop, name="repro-frontend-sigstop", daemon=True
            ).start()

        for sig in signals:
            previous[sig] = signal.signal(sig, handle)
        return previous

    async def _shutdown(self, drain: bool, patience: float) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        connections = list(self._connections)
        for conn in connections:
            conn.draining = True
        if self.own_target and hasattr(self.service.target, "stop"):
            # Stopping the target resolves every admitted request's
            # future (the server's deterministic-shutdown contract), so
            # the waits below finish promptly with real answers.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None,
                lambda: self.service.target.stop(patience, drain=drain),
            )
        deadline = asyncio.get_running_loop().time() + (
            patience if drain else 0.0
        )
        for conn in connections:
            await self._finish_connection(conn, deadline)

    async def _finish_connection(self, conn: _Connection, deadline) -> None:
        """Resolve everything in flight on one connection, then close it."""
        loop = asyncio.get_running_loop()
        while conn.pending and loop.time() < deadline:
            await asyncio.sleep(0.005)
        # Whatever is still unresolved gets a typed error — the client
        # is never left holding a correlation id that just goes dark.
        for corr_id in list(conn.pending):
            conn.pending.pop(corr_id, None)
            self._enqueue(
                conn,
                protocol.encode_error(
                    ServerClosedError("server stopped before dispatch"),
                    corr_id,
                ),
            )
        await self._close_connection(conn)

    async def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        try:
            while not conn.outbox.empty():
                conn.writer.write(conn.outbox.get_nowait())
            await conn.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        sender = asyncio.create_task(self._send_loop(conn))
        try:
            await self._read_loop(conn)
            if not conn.draining:
                # Client went away (EOF/goodbye/bad frame) on its own:
                # give in-flight work a bounded chance to answer, then
                # fail the rest — same contract as a frontend stop.
                deadline = (
                    asyncio.get_running_loop().time()
                    + self.drain_timeout_seconds
                )
                await self._finish_connection(conn, deadline)
        finally:
            await self._close_connection(conn)
            sender.cancel()

    async def _send_loop(self, conn: _Connection) -> None:
        try:
            while True:
                frame = await conn.outbox.get()
                conn.writer.write(frame)
                await conn.writer.drain()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass

    def _enqueue(self, conn: _Connection, frame: bytes) -> None:
        if not conn.closed:
            conn.outbox.put_nowait(frame)

    async def _read_loop(self, conn: _Connection) -> None:
        reader = conn.reader
        while not conn.draining:
            try:
                header = await reader.readexactly(protocol.HEADER.size)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            try:
                op, corr_id, length = protocol.decode_header(
                    header, self.max_payload_bytes
                )
            except protocol.BadFrameError as exc:
                # The stream cannot be resynchronized: answer (corr id
                # unknown — 0 is the protocol's "no correlation") and
                # close this connection.  Other connections, and the
                # read loops serving them, are untouched.
                self._enqueue(conn, protocol.encode_error(exc, 0))
                return
            except (
                protocol.FrameTooLargeError,
                protocol.UnsupportedVersionError,
            ) as exc:
                # The header layout (and so the frame boundary) is the
                # versioned contract — skip exactly this frame's
                # payload and keep serving the connection.
                declared = getattr(exc, "payload_length", None)
                if declared is None:
                    declared = int.from_bytes(header[14:18], "big")
                corr = int.from_bytes(header[6:14], "big")
                self._enqueue(conn, protocol.encode_error(exc, corr))
                if not await self._discard(reader, declared):
                    return
                continue
            try:
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if op == protocol.OP_GOODBYE:
                return
            try:
                service_op, trace_ctx = protocol.decode_op(op, payload)
            except protocol.ProtocolError as exc:
                # Payload-level garbage: the boundary was sound, so the
                # connection loop survives — typed error, next frame.
                self._enqueue(conn, protocol.encode_error(exc, corr_id))
                continue
            self._start_op(conn, corr_id, service_op, trace_ctx)

    async def _discard(self, reader, count: int) -> bool:
        """Read and drop ``count`` payload bytes of a rejected frame."""
        remaining = count
        while remaining > 0:
            try:
                chunk = await reader.read(min(remaining, _DISCARD_CHUNK))
            except (ConnectionError, OSError):
                return False
            if not chunk:
                return False
            remaining -= len(chunk)
        return True

    def _start_op(
        self,
        conn: _Connection,
        corr_id: int,
        service_op,
        trace_ctx: TraceContext | None,
    ) -> None:
        if corr_id in conn.pending:
            self._enqueue(
                conn,
                protocol.encode_error(
                    protocol.BadFrameError(
                        f"correlation id {corr_id} is already in flight"
                    ),
                    corr_id,
                ),
            )
            return
        loop = asyncio.get_running_loop()
        try:
            if isinstance(service_op, AttendOp):
                # The hot path: queries go into the target's dynamic
                # batcher off-loop (admission may block under
                # overload="block"); the gather future resolves there
                # too.  Rejects arrive as typed error frames.
                future = self._admit(service_op, trace_ctx)
            elif isinstance(service_op, PingOp):
                self._enqueue(
                    conn, protocol.encode_result(self.service.call(service_op), corr_id)
                )
                return
            else:
                # Control ops block (registration sorts the key): run
                # them on the default executor, tracked like attends so
                # the drain covers them too.
                future = _as_concurrent(
                    loop.run_in_executor(
                        None, self.service.call, service_op
                    )
                )
        except BaseException as exc:  # noqa: BLE001 — typed reject
            self._enqueue(conn, protocol.encode_error(exc, corr_id))
            return
        conn.pending[corr_id] = future
        future.add_done_callback(
            lambda f: _threadsafe(
                loop, self._complete, conn, corr_id, f
            )
        )

    def _admit(self, op: AttendOp, trace_ctx: TraceContext | None) -> Future:
        """Run ``submit_attend`` on the admission thread, flattened to
        one Future that resolves with the attend's result (or its
        admission/dispatch error)."""
        outer: Future = Future()

        def admit() -> None:
            try:
                inner = self.service.submit_attend(op, trace_ctx=trace_ctx)
            except BaseException as exc:  # noqa: BLE001 — typed reject
                outer.set_exception(exc)
                return

            def copy(done) -> None:
                error = done.exception()
                if error is not None:
                    outer.set_exception(error)
                else:
                    outer.set_result(done.result())

            inner.add_done_callback(copy)

        try:
            self._admission.submit(admit)
        except RuntimeError as exc:  # pool shut down by stop()
            outer.set_exception(ServerClosedError(str(exc)))
        return outer

    def _complete(self, conn: _Connection, corr_id: int, future) -> None:
        if conn.pending.pop(corr_id, None) is None:
            return  # already answered by the drain path
        error = future.exception()
        try:
            if error is not None:
                frame = protocol.encode_error(error, corr_id)
            else:
                frame = protocol.encode_result(future.result(), corr_id)
        except BaseException as exc:  # noqa: BLE001 — encoding failed
            frame = protocol.encode_error(exc, corr_id)
        self._enqueue(conn, frame)


def _threadsafe(loop, callback, *args) -> None:
    try:
        loop.call_soon_threadsafe(callback, *args)
    except RuntimeError:
        pass  # loop already closed; the drain path answered everyone


def _as_concurrent(task) -> Future:
    """Wrap an asyncio awaitable's completion in a concurrent Future.

    Keeps :meth:`_start_op`'s pending table homogeneous — everything in
    flight is a :class:`concurrent.futures.Future`.
    """
    future: Future = Future()

    def copy(done) -> None:
        if done.cancelled():
            future.set_exception(
                ServerClosedError("server stopped before dispatch")
            )
            return
        error = done.exception()
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(done.result())

    task.add_done_callback(copy)
    return future
