"""Shard health: heartbeat failure detection and the fault-injection seam.

Production serving fabrics treat node death as routine: a failure
*detector* decides a replica is gone, and the cluster's failover
machinery does the rest.  This module is that detector for
:class:`~repro.serve.cluster.ShardedAttentionServer`, plus the
deterministic fault-injection hooks the thread-mode tests use to
exercise every failure path without real processes dying.

:class:`HeartbeatMonitor` pings every live shard on an interval
(``ShardedAttentionServer.ping_shard`` — process liveness plus an RPC
echo for spawned shards, an injector-aware liveness probe for thread
shards) and declares a shard **down** after ``misses`` consecutive
failed beats, invoking the cluster's ``report_shard_failure`` — the
same entry point the request path's retry-with-reroute uses, so
detection by heartbeat and detection by failed RPC converge on one
failover implementation.  Detection is intentionally conservative: one
slow beat (a shard busy preparing a large key) never triggers
failover; only ``misses`` beats in a row do.

:class:`FaultInjector` is the seam.  Thread-backed shards consult it on
every RPC-surface call and every heartbeat, so tests (and the demo)
can deterministically

* ``kill`` — the shard raises
  :class:`~repro.serve.cluster.ShardUnavailableError` on every call, as
  a crashed process would;
* ``drop_heartbeats`` — the shard keeps serving but its beats fail (a
  partition between the monitor and a healthy shard: failover must
  still be lossless because the "dead" shard was actually fine);
* ``delay`` — every call sleeps first (a slow shard: must *not* be
  declared dead by fewer than ``misses`` beats).

Spawn-mode chaos uses real ``SIGKILL`` via
``ShardedAttentionServer.kill_shard`` instead — the injector cannot
reach across the process boundary, and shouldn't: the point of the
chaos test is that the real child-death path behaves like the injected
one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["FaultInjector", "HeartbeatMonitor", "ShardDownEvent"]


class FaultInjector:
    """Deterministic fault injection for thread-backed shards.

    All methods key on the shard id; ``restore`` clears every injected
    fault for a shard.  Thread-safe.  The error raised for a killed
    shard is constructed lazily (imported at call time) to keep this
    module import-light and cycle-free with :mod:`repro.serve.cluster`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._killed: set[str] = set()
        self._dropped: set[str] = set()
        self._delays: dict[str, float] = {}

    # -- fault controls ------------------------------------------------
    def kill(self, shard_id: str) -> None:
        """Simulate a crash: every subsequent call on the shard raises
        ``ShardUnavailableError`` and its heartbeats fail."""
        with self._lock:
            self._killed.add(shard_id)

    def drop_heartbeats(self, shard_id: str) -> None:
        """Fail the shard's heartbeats while leaving its RPCs working
        (a monitor-side partition / false-positive scenario)."""
        with self._lock:
            self._dropped.add(shard_id)

    def delay(self, shard_id: str, seconds: float) -> None:
        """Make every call on the shard sleep ``seconds`` first."""
        if seconds < 0:
            raise ConfigError(f"delay must be >= 0, got {seconds}")
        with self._lock:
            self._delays[shard_id] = seconds

    def restore(self, shard_id: str) -> None:
        """Clear every injected fault for the shard."""
        with self._lock:
            self._killed.discard(shard_id)
            self._dropped.discard(shard_id)
            self._delays.pop(shard_id, None)

    # -- hooks the shards consult --------------------------------------
    def check(self, shard_id: str) -> None:
        """Gate one RPC-surface call: raise if killed, sleep if delayed."""
        with self._lock:
            killed = shard_id in self._killed
            delay = self._delays.get(shard_id, 0.0)
        if killed:
            from repro.serve.cluster import ShardUnavailableError

            raise ShardUnavailableError(
                f"shard {shard_id!r} is down (injected fault)"
            )
        if delay > 0:
            time.sleep(delay)

    def heartbeat_ok(self, shard_id: str) -> bool:
        """Whether the shard's heartbeat should succeed."""
        with self._lock:
            if shard_id in self._killed or shard_id in self._dropped:
                return False
            delay = self._delays.get(shard_id, 0.0)
        if delay > 0:
            time.sleep(delay)
        return True


@dataclass(frozen=True)
class ShardDownEvent:
    """One failover decision taken by the monitor."""

    shard_id: str
    missed_beats: int
    at_monotonic: float


class HeartbeatMonitor:
    """Periodic shard liveness probing driving automatic failover.

    Parameters
    ----------
    cluster:
        The :class:`~repro.serve.cluster.ShardedAttentionServer` to
        watch; only needs ``shard_ids``, ``ping_shard`` and
        ``report_shard_failure``.
    interval_seconds:
        Time between probe rounds.
    misses:
        Consecutive failed beats before a shard is declared down.  A
        beat fails when ``ping_shard`` returns falsy, raises, or takes
        longer than ``ping_timeout_seconds``.
    ping_timeout_seconds:
        Patience per probe (forwarded to ``ping_shard``; spawned shards
        bound their echo RPC by it).  Defaults to ``interval_seconds``.

    The monitor is a context manager::

        with HeartbeatMonitor(cluster, interval_seconds=0.1) as monitor:
            ...  # traffic; dead shards are failed over automatically
        monitor.events  # the ShardDownEvents it acted on

    One declaration per shard: once reported, the shard's counter is
    retired — the cluster removes the shard from ``shard_ids`` anyway,
    and a second report would be a no-op there.
    """

    def __init__(
        self,
        cluster,
        interval_seconds: float = 0.25,
        misses: int = 3,
        ping_timeout_seconds: float | None = None,
    ):
        if interval_seconds <= 0:
            raise ConfigError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        if misses < 1:
            raise ConfigError(f"misses must be >= 1, got {misses}")
        self.cluster = cluster
        self.interval_seconds = interval_seconds
        self.misses = misses
        self.ping_timeout_seconds = (
            interval_seconds
            if ping_timeout_seconds is None
            else ping_timeout_seconds
        )
        self.events: list[ShardDownEvent] = []
        self._missed: dict[str, int] = {}
        self._reported: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "HeartbeatMonitor":
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "HeartbeatMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- telemetry -----------------------------------------------------
    def publish_metrics(self, registry, labels=None) -> None:
        """Publish the monitor's probe state into a
        :class:`~repro.serve.observability.MetricsRegistry`: per-shard
        consecutive-miss gauges and the down declarations it fired."""
        extra = dict(labels or {})
        names = tuple(extra)
        registry.counter(
            "repro_serve_heartbeat_down_events_total",
            "Shards this monitor declared down.",
            labelnames=names,
        ).labels(**extra).inc(len(self.events))
        missed = registry.gauge(
            "repro_serve_heartbeat_consecutive_misses",
            "Consecutive failed beats per probed shard.",
            labelnames=("shard", *names),
        )
        for shard_id, count in sorted(self._missed.items()):
            missed.labels(shard=shard_id, **extra).set(count)

    # -- probing -------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.probe_once()

    def probe_once(self) -> list[ShardDownEvent]:
        """One probe round over the cluster's live shards.

        Exposed for deterministic tests (drive rounds by hand instead
        of sleeping against the wall clock).  Returns the failover
        events this round produced.
        """
        fired: list[ShardDownEvent] = []
        for shard_id in self.cluster.shard_ids:
            if shard_id in self._reported:
                continue
            try:
                alive = self.cluster.ping_shard(
                    shard_id, timeout=self.ping_timeout_seconds
                )
            except Exception:  # noqa: BLE001 — any probe failure is a miss
                alive = False
            if alive:
                self._missed[shard_id] = 0
                continue
            missed = self._missed.get(shard_id, 0) + 1
            self._missed[shard_id] = missed
            if missed < self.misses:
                continue
            self._reported.add(shard_id)
            event = ShardDownEvent(
                shard_id=shard_id,
                missed_beats=missed,
                at_monotonic=time.monotonic(),
            )
            self.events.append(event)
            fired.append(event)
            try:
                self.cluster.report_shard_failure(
                    shard_id, reason=f"{missed} missed heartbeats"
                )
            except Exception:  # noqa: BLE001 — never kill the probe loop
                pass
        return fired
