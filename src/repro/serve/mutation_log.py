"""Per-session mutation logs: the cluster's replay-based recovery record.

A replicated cluster survives a shard death by rebuilding the dead
shard's sessions on a healthy replica.  Re-shipping the *current*
memory would work for the parent's own copy, but the durable recovery
contract the serving layer promises is stronger: every session can be
reconstructed from its **registration snapshot plus the ordered
mutation sequence** — exactly the information a write-ahead log would
hold, and exactly what the mutation ordering contract of
:mod:`repro.serve.mutator` makes well-defined (mutations of one session
are serialized; replaying them in recorded order over the registration
memory is bit-identical to the live session, because the incremental
splice itself is bit-identical to a fresh build — the PR 4 property).

:class:`MutationLog` records three events:

* ``record_register`` — a session's base ``(key, value)`` at
  registration (held by reference: mutations never modify arrays in
  place, they build new ones, so the base arrays are immutable once
  logged and cost no copy);
* ``record_mutation`` — one applied
  :class:`~repro.serve.mutator.SessionMutation`, appended in the order
  the cluster applied it;
* ``forget`` — the session closed; drop its record.

Recovery then calls :meth:`replay_onto`, which registers the base
memory on a target shard and replays every mutation through the
shard's ``mutate_session`` — driving the same incremental-splice path
live traffic uses, so the rebuilt prepared artifacts are bit-identical
to the dead replica's.  :meth:`replay_memory` folds the log parent-side
(used by tests to pin log/parent agreement without a shard).

Long-lived streaming sessions would otherwise accumulate unbounded
logs; ``auto_compact_above`` folds a session's log back into a single
registration snapshot once its mutation count passes the threshold.
Compaction is semantically free — replaying a compacted log is one
registration of the folded memory, which the splice bit-identity
property guarantees prepares identically — and turns O(mutations)
replay into O(1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.serve.mutator import SessionMutation
from repro.serve.request import UnknownSessionError

__all__ = ["MutationLog", "SessionLogRecord"]


@dataclass
class SessionLogRecord:
    """One session's recovery record: base memory + ordered mutations."""

    base_key: np.ndarray
    base_value: np.ndarray
    mutations: list[SessionMutation] = field(default_factory=list)
    #: Mutations folded away by compaction (telemetry: total mutations
    #: ever recorded for the session is ``compacted + len(mutations)``).
    compacted: int = 0


class MutationLog:
    """Registration snapshots + ordered mutations, per session.

    Thread-safe on its own lock; the cluster additionally serializes
    writers through its own lock (mutations and topology changes are
    already mutually exclusive there), so the log's lock only has to
    protect against concurrent readers during a replay.

    Parameters
    ----------
    auto_compact_above:
        When a session's recorded mutation count exceeds this bound,
        the log is folded into a single registration snapshot of the
        current memory (see the module docstring).  ``None`` disables
        compaction.
    """

    def __init__(self, auto_compact_above: int | None = 256):
        self._lock = threading.Lock()
        self._records: dict[str, SessionLogRecord] = {}
        self.auto_compact_above = auto_compact_above

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_register(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> None:
        """Start (or restart — re-registration resets) a session's log."""
        with self._lock:
            self._records[session_id] = SessionLogRecord(key, value)

    def record_mutation(
        self, session_id: str, mutation: SessionMutation
    ) -> None:
        """Append one applied mutation to the session's log."""
        with self._lock:
            record = self._require(session_id)
            record.mutations.append(mutation)
            bound = self.auto_compact_above
        if bound is not None and len(record.mutations) > bound:
            self.compact(session_id)

    def forget(self, session_id: str) -> None:
        with self._lock:
            self._records.pop(session_id, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._records)

    def mutation_count(self, session_id: str) -> int:
        """Mutations currently pending replay (post-compaction)."""
        with self._lock:
            return len(self._require(session_id).mutations)

    def mutations(self, session_id: str) -> tuple[SessionMutation, ...]:
        with self._lock:
            return tuple(self._require(session_id).mutations)

    def _require(self, session_id: str) -> SessionLogRecord:
        record = self._records.get(session_id)
        if record is None:
            raise UnknownSessionError(
                f"session {session_id!r} has no mutation log"
            )
        return record

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay_memory(
        self, session_id: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold the log into the session's current ``(key, value)``.

        Pure (no shard involved): applies each recorded mutation over
        the base snapshot in order.  Must always equal the parent-side
        session memory — the invariant the failover tests pin.
        """
        with self._lock:
            record = self._require(session_id)
            key, value = record.base_key, record.base_value
            mutations = tuple(record.mutations)
        for mutation in mutations:
            key, value = mutation.apply(key, value)
        return key, value

    def replay_onto(self, session_id: str, shard, exporter=None) -> int:
        """Rebuild the session on ``shard`` by replaying its log.

        Registers the base memory, then replays every mutation through
        the shard's ``mutate_session`` — the same incremental-splice
        path live mutations take, so the rebuilt prepared state is
        bit-identical to the lost replica's.  Returns the number of
        mutations replayed.  Raises whatever the shard raises (the
        caller decides whether the target itself just died).

        ``exporter`` enables zero-copy seeding of the base snapshot:
        called as ``exporter(session_id, base_key, base_value)`` it
        returns a ``(segment_name, fingerprint)`` pair for the shard to
        adopt via ``adopt_session`` instead of receiving pickled base
        arrays (shards not advertising ``supports_adopt``, and an
        exporter returning ``None``, fall back to plain registration).
        The mutations still replay one by one, so the rebuilt state is
        bit-identical either way.
        """
        with self._lock:
            record = self._require(session_id)
            base_key, base_value = record.base_key, record.base_value
            mutations = tuple(record.mutations)
        seeded = False
        if exporter is not None and getattr(shard, "supports_adopt", False):
            lease = exporter(session_id, base_key, base_value)
            if lease is not None:
                segment_name, fingerprint = lease
                shard.adopt_session(session_id, segment_name, fingerprint)
                seeded = True
        if not seeded:
            shard.register_session(session_id, base_key, base_value)
        for mutation in mutations:
            shard.mutate_session(session_id, mutation)
        return len(mutations)

    def compact(self, session_id: str) -> None:
        """Fold a session's log into one registration snapshot.

        Replay after compaction is a single registration of the folded
        memory; bit-identity to the mutation-by-mutation replay is the
        incremental-splice property (splice == fresh build of the final
        key).
        """
        key, value = self.replay_memory(session_id)
        with self._lock:
            record = self._require(session_id)
            folded = len(record.mutations)
            record.base_key, record.base_value = key, value
            record.mutations.clear()
            record.compacted += folded
