"""Mutable sessions: typed mutations and the ``SessionMutator`` handle.

The serving layer's sessions were immutable until now — a single
appended memory row forced a full re-registration, a cold cache entry,
and a from-scratch column sort.  Real contexts stream: chat sessions
append turns, KV stores delete and replace facts.  This module is the
request-level surface for that:

* three typed, picklable mutation records
  (:class:`AppendRowsMutation`, :class:`DeleteRowsMutation`,
  :class:`ReplaceKeyMutation`) that know how to transform a session's
  ``(key, value)`` pair and how to drive a prepared backend's
  incremental splice hooks (:mod:`repro.core.incremental`);
* :class:`SessionMutator`, a tenant-facing handle bound to one session
  on an :class:`~repro.serve.server.AttentionServer` or
  :class:`~repro.serve.cluster.ShardedAttentionServer`.

**Ordering contract** (the guarantees callers may rely on):

1. *Serialized per session* — mutations of one session apply atomically
   and in the order their calls complete; two concurrent mutator calls
   never interleave their edits (a per-session mutation lock).
2. *Read-your-writes* — every request **submitted after** a mutation
   call returns observes the mutated memory.
3. *No torn reads* — a request in flight while a mutation lands
   observes either the pre- or the post-mutation memory in full, never
   a mix of old key and new value (memory swaps are atomic with respect
   to dispatch).
4. *Migration-safe* — on a sharded cluster, mutations serialize with
   rebalancing: a session moved by ``add_shard``/``remove_shard``
   arrives on its new shard with every previously applied mutation
   already in place, and mutations issued during the move apply after
   it, on the new home.

Mutations across *different* sessions are independent and unordered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends import AttentionBackend
from repro.errors import ShapeError

__all__ = [
    "SessionMutation",
    "AppendRowsMutation",
    "DeleteRowsMutation",
    "ReplaceKeyMutation",
    "SessionMutator",
]


class SessionMutation:
    """One atomic edit of a session's ``(key, value)`` memory.

    Subclasses implement ``apply`` (pure: old arrays in, new arrays
    out, with validation) and ``apply_to_backend`` (drive the prepared
    backend's incremental splice hook, when the backend has one).
    Instances are immutable and picklable, so process-backed shards
    receive them over the RPC pipe unchanged.
    """

    def apply(
        self, key: np.ndarray, value: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def apply_to_backend(self, backend: AttentionBackend) -> None:
        raise NotImplementedError

    @property
    def touched_rows(self) -> int:
        """Rows this mutation edits (telemetry / benchmark bookkeeping)."""
        raise NotImplementedError


def _as_matrix(rows: np.ndarray, what: str) -> np.ndarray:
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows[np.newaxis, :]
    if rows.ndim != 2:
        raise ShapeError(f"{what} must be 2-D (k, d), got {rows.shape}")
    return rows


@dataclass(frozen=True)
class AppendRowsMutation(SessionMutation):
    """Append ``k`` new ``(key, value)`` row pairs at the end of the
    memory; the new rows take indices ``n .. n + k - 1``."""

    key_rows: np.ndarray
    value_rows: np.ndarray

    def apply(self, key, value):
        key_rows = _as_matrix(self.key_rows, "appended key rows")
        value_rows = _as_matrix(self.value_rows, "appended value rows")
        if key_rows.shape[1] != key.shape[1]:
            raise ShapeError(
                f"appended key rows have d={key_rows.shape[1]}, session "
                f"has d={key.shape[1]}"
            )
        if value_rows.shape[1] != value.shape[1]:
            raise ShapeError(
                f"appended value rows have d_v={value_rows.shape[1]}, "
                f"session has d_v={value.shape[1]}"
            )
        if key_rows.shape[0] != value_rows.shape[0]:
            raise ShapeError(
                f"appended {key_rows.shape[0]} key rows but "
                f"{value_rows.shape[0]} value rows"
            )
        if key_rows.shape[0] == 0:
            raise ShapeError("append requires at least one row")
        return (
            np.concatenate([key, key_rows]),
            np.concatenate([value, value_rows]),
        )

    def apply_to_backend(self, backend):
        hook = getattr(backend, "append_rows", None)
        if hook is not None:
            hook(_as_matrix(self.key_rows, "appended key rows"))

    @property
    def touched_rows(self) -> int:
        return int(_as_matrix(self.key_rows, "appended key rows").shape[0])


@dataclass(frozen=True)
class DeleteRowsMutation(SessionMutation):
    """Delete the given memory rows; survivors renumber densely (row
    ``i`` becomes ``i - #deleted_below_i``), exactly as if the session
    had been registered with the shrunken memory."""

    rows: tuple[int, ...]

    def _indices(self, n: int) -> np.ndarray:
        rows = np.asarray(self.rows, dtype=np.int64).ravel()
        if rows.size == 0:
            raise ShapeError("delete requires at least one row index")
        if rows.min() < 0 or rows.max() >= n:
            raise ShapeError(
                f"delete rows must lie in [0, {n}), got {rows.tolist()}"
            )
        if np.unique(rows).size != rows.size:
            raise ShapeError(f"duplicate delete rows: {rows.tolist()}")
        if rows.size >= n:
            raise ShapeError(
                "cannot delete every row; the session memory must stay "
                "non-empty"
            )
        return rows

    def apply(self, key, value):
        rows = self._indices(key.shape[0])
        keep = np.ones(key.shape[0], dtype=bool)
        keep[rows] = False
        return key[keep], value[keep]

    def apply_to_backend(self, backend):
        hook = getattr(backend, "delete_rows", None)
        if hook is not None:
            hook(np.asarray(self.rows, dtype=np.int64))

    @property
    def touched_rows(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class ReplaceKeyMutation(SessionMutation):
    """Replace one row's key vector (and optionally its value row) in
    place; every other row keeps its index."""

    row: int
    key_row: np.ndarray
    value_row: np.ndarray | None = None

    def apply(self, key, value):
        row = int(self.row)
        if not 0 <= row < key.shape[0]:
            raise ShapeError(
                f"replace row must lie in [0, {key.shape[0]}), got {row}"
            )
        key_row = np.asarray(self.key_row, dtype=np.float64).ravel()
        if key_row.shape != (key.shape[1],):
            raise ShapeError(
                f"replacement key row must have shape ({key.shape[1]},), "
                f"got {key_row.shape}"
            )
        new_key = key.copy()
        new_key[row] = key_row
        new_value = value
        if self.value_row is not None:
            value_row = np.asarray(self.value_row, dtype=np.float64).ravel()
            if value_row.shape != (value.shape[1],):
                raise ShapeError(
                    f"replacement value row must have shape "
                    f"({value.shape[1]},), got {value_row.shape}"
                )
            new_value = value.copy()
            new_value[row] = value_row
        return new_key, new_value

    def apply_to_backend(self, backend):
        hook = getattr(backend, "replace_key", None)
        if hook is not None:
            hook(
                int(self.row),
                np.asarray(self.key_row, dtype=np.float64).ravel(),
            )

    @property
    def touched_rows(self) -> int:
        return 1


class SessionMutator:
    """Tenant-facing handle for mutating one session's memory in place.

    Obtained from :meth:`AttentionServer.mutator` or
    :meth:`ShardedAttentionServer.mutator`; each method builds the
    typed mutation and hands it to the server's ``mutate_session``,
    which applies it under the ordering contract in the module
    docstring.  Returns the updated
    :class:`~repro.serve.sessions.Session` record, whose ``n`` reflects
    the new memory size.
    """

    def __init__(self, server, session_id: str):
        self.server = server
        self.session_id = session_id

    def append_rows(self, key_rows: np.ndarray, value_rows: np.ndarray):
        """Append ``(key, value)`` row pairs to the session memory."""
        return self.server.mutate_session(
            self.session_id, AppendRowsMutation(key_rows, value_rows)
        )

    def delete_rows(self, rows):
        """Delete memory rows; surviving rows renumber densely."""
        return self.server.mutate_session(
            self.session_id,
            DeleteRowsMutation(tuple(int(r) for r in np.asarray(rows).ravel())),
        )

    def replace_key(self, row: int, key_row: np.ndarray, value_row=None):
        """Replace one row's key vector (and optionally its value)."""
        return self.server.mutate_session(
            self.session_id, ReplaceKeyMutation(int(row), key_row, value_row)
        )
