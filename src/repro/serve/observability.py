"""Unified serving observability: one clock, one metrics registry.

This module is the telemetry spine of :mod:`repro.serve`:

* :func:`now` — the single serve-path clock.  Every request stamp,
  queue-wait, and service timing in the serving stack reads this one
  monotonic high-resolution clock (``time.perf_counter``), so
  queue-wait + service arithmetic is consistent and per-request span
  durations telescope exactly to the end-to-end latency.
* :class:`MetricsRegistry` — counters, gauges, and histograms with
  labels, rendered in the Prometheus text exposition format.
  Components publish *into* a registry at scrape time
  (``ServerStats.publish_metrics``, ``CacheStats.publish_metrics``,
  ``HeartbeatMonitor.publish_metrics``,
  ``AdaptiveQualityController.publish_metrics``, and the cluster's
  failover counters), so the hot request path records nothing beyond
  what the existing stats objects already track.  Registries merge:
  :meth:`MetricsRegistry.collect` returns a picklable description that
  :meth:`MetricsRegistry.absorb` folds into another registry (summing
  counters and histograms), which is how
  ``ShardedAttentionServer.metrics_registry`` pools per-shard metrics
  — including across the spawn-shard RPC boundary — under a ``shard``
  label.
* :func:`parse_exposition` — a minimal text-format parser used by the
  round-trip test and by anything that wants to scrape the exposition
  without a Prometheus client library.
* :class:`StageProfiler` (re-exported from
  :mod:`repro.core.profiling`) — the kernel-stage profiling hook, and
  :func:`publish_profile` to turn its summary into registry metrics.

Metric naming scheme: ``repro_serve_*`` for serving-layer metrics and
``repro_kernel_*`` for kernel-stage profiling, with ``_total`` suffixes
on counters and base-unit (seconds, bytes) value names, following the
Prometheus conventions.  Label keys in use: ``shard``, ``session``,
``tier``, ``outcome``, ``stage``, ``path``.
"""

from __future__ import annotations

import math
import re
import threading
import time

from repro.core.profiling import StageProfiler, get_hook, set_hook

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "StageProfiler",
    "get_hook",
    "now",
    "parse_exposition",
    "publish_profile",
    "set_hook",
]

#: The single serve-path clock (monotonic, high resolution).  All
#: request stamps and service timings in ``repro.serve`` go through
#: this name so the queue-wait / service / span arithmetic is always
#: on one clock.
now = time.perf_counter

#: Default histogram buckets, in seconds (upper bounds; +Inf implied).
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Counter:
    """A monotonically increasing sample (one label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self.value += amount


class _Gauge:
    """A settable sample (one label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class _Histogram:
    """Cumulative-bucket histogram (one label combination)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    def observe_each(self, values) -> None:
        for value in values:
            self.observe(value)

    def merge(self, counts, total, count) -> None:
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.sum += total
        self.count += count


_KINDS = {"counter": _Counter, "gauge": _Gauge, "histogram": _Histogram}


class _Family:
    """One named metric with a fixed label set; children per label value."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children", "_lock")

    def __init__(self, name, kind, help, labelnames, buckets, lock) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple, object] = {}
        self._lock = lock

    def labels(self, **labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = _Histogram(self.buckets)
                else:
                    child = _KINDS[self.kind]()
                self._children[key] = child
        return child

    # Label-less families act as their own single child.
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_each(self, values) -> None:
        self._solo().observe_each(values)


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Families are created idempotently: asking for an existing name with
    the same kind and label set returns the same family; a conflicting
    redeclaration raises.  ``collect()``/``absorb()`` give a picklable
    merge path (counters and histograms sum; gauges last-write-wins),
    and ``expose()`` renders the Prometheus text format.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def _family(self, name, kind, help, labelnames, buckets=None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if buckets is not None:
            buckets = tuple(float(b) for b in buckets)
            if list(buckets) != sorted(set(buckets)):
                raise ValueError(f"buckets must strictly ascend, got {buckets}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (
                    family.kind != kind
                    or family.labelnames != labelnames
                    or (kind == "histogram" and family.buckets != buckets)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = _Family(name, kind, help, labelnames, buckets, self._lock)
            self._families[name] = family
            return family

    def counter(self, name, help="", labelnames=()) -> _Family:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> _Family:
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        return self._family(name, "histogram", help, labelnames, buckets)

    # ------------------------------------------------------------------
    # collection / merge
    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """A picklable description of every family and sample."""
        out = []
        with self._lock:
            for family in self._families.values():
                if family.kind == "histogram":
                    values = {
                        key: {
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                        for key, child in family._children.items()
                    }
                else:
                    values = {
                        key: child.value
                        for key, child in family._children.items()
                    }
                out.append(
                    {
                        "name": family.name,
                        "kind": family.kind,
                        "help": family.help,
                        "labelnames": family.labelnames,
                        "buckets": family.buckets,
                        "values": values,
                    }
                )
        return out

    def absorb(self, collected, extra_labels=None) -> None:
        """Merge a :meth:`collect` payload into this registry.

        ``extra_labels`` (e.g. ``{"shard": "shard-0"}``) are appended
        to every sample's label set — the cluster merge path.  Counters
        and histograms sum; gauges take the incoming value.
        """
        extra = dict(extra_labels or {})
        extra_names = tuple(extra)
        extra_values = tuple(str(extra[name]) for name in extra_names)
        for spec in collected:
            labelnames = tuple(spec["labelnames"]) + extra_names
            family = self._family(
                spec["name"],
                spec["kind"],
                spec["help"],
                labelnames,
                spec["buckets"],
            )
            for key, value in spec["values"].items():
                labels = dict(zip(labelnames, tuple(key) + extra_values))
                child = family.labels(**labels)
                if spec["kind"] == "counter":
                    child.inc(value)
                elif spec["kind"] == "gauge":
                    child.set(value)
                else:
                    child.merge(value["counts"], value["sum"], value["count"])

    def samples(self) -> list[tuple[str, dict, float]]:
        """Every exposition sample as ``(name, labels, value)``,
        histograms expanded into ``_bucket`` / ``_sum`` / ``_count``."""
        out = []
        with self._lock:
            for family in self._families.values():
                for key, child in sorted(family._children.items()):
                    labels = dict(zip(family.labelnames, key))
                    if family.kind == "histogram":
                        running = 0
                        bounds = [*family.buckets, math.inf]
                        for bound, count in zip(bounds, child.counts):
                            running += count
                            le = "+Inf" if bound == math.inf else _format_value(bound)
                            out.append(
                                (
                                    family.name + "_bucket",
                                    {**labels, "le": le},
                                    float(running),
                                )
                            )
                        out.append((family.name + "_sum", labels, child.sum))
                        out.append(
                            (family.name + "_count", labels, float(child.count))
                        )
                    else:
                        out.append((family.name, labels, float(child.value)))
        return out

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def expose(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            with self._lock:
                children = sorted(family._children.items())
            for key, child in children:
                labelstr = _render_labels(family.labelnames, key)
                if family.kind == "histogram":
                    running = 0
                    bounds = [*family.buckets, math.inf]
                    for bound, count in zip(bounds, child.counts):
                        running += count
                        le = "+Inf" if bound == math.inf else _format_value(bound)
                        bucket_labels = _render_labels(
                            (*family.labelnames, "le"), (*key, le)
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {running}"
                        )
                    lines.append(
                        f"{family.name}_sum{labelstr} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labelstr} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labelstr} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse Prometheus text exposition into families of samples.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels_dict, value), ...]}}`` where histogram
    samples keep their ``_bucket`` / ``_sum`` / ``_count`` suffixes and
    are attributed to the declaring family.  This is deliberately a
    *minimal* parser — enough to scrape this module's own exposition
    (and round-trip it in the tests) without a client library.
    """
    families: dict[str, dict] = {}
    current = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = help_text
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind.strip()
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name = match.group("name")
        labels = {}
        if match.group("labels"):
            for pair in _LABEL_PAIR_RE.finditer(match.group("labels")):
                labels[pair.group("key")] = _unescape_label(pair.group("value"))
        family = name
        if current and name.startswith(current) and name != current:
            suffix = name[len(current) :]
            if suffix in ("_bucket", "_sum", "_count"):
                family = current
        families.setdefault(
            family, {"type": "untyped", "help": "", "samples": []}
        )["samples"].append((name, labels, _parse_value(match.group("value"))))
    return families


def publish_profile(
    registry: MetricsRegistry, profiler: StageProfiler, labels=None
) -> None:
    """Publish a :class:`StageProfiler` summary as kernel metrics.

    Emits ``repro_kernel_stage_calls_total`` and
    ``repro_kernel_stage_seconds_total`` with a ``stage`` label (plus
    any ``labels`` supplied by the caller, e.g. ``shard``).
    """
    extra = dict(labels or {})
    names = tuple(extra)
    calls = registry.counter(
        "repro_kernel_stage_calls_total",
        "Kernel stage invocations recorded by the profiling hook.",
        labelnames=("stage", *names),
    )
    seconds = registry.counter(
        "repro_kernel_stage_seconds_total",
        "Cumulative wall seconds per kernel stage.",
        labelnames=("stage", *names),
    )
    for stage, row in profiler.summary().items():
        calls.labels(stage=stage, **extra).inc(row["calls"])
        seconds.labels(stage=stage, **extra).inc(row["total_seconds"])
