"""The versioned binary wire protocol of the network serving layer.

Every message on a connection is one **frame**::

    0      4        5      6           14          18
    +------+--------+------+-----------+-----------+----------------+
    | A3RP | version|  op  |  corr id  |  length   |    payload     |
    +------+--------+------+-----------+-----------+----------------+
     magic    u8      u8       u64be       u32be      length bytes

* ``magic`` — ``b"A3RP"``; anything else is a framing error (the
  stream cannot be resynchronized, the connection must close).
* ``version`` — :data:`PROTOCOL_VERSION`.  A mismatched version is a
  typed error (:class:`UnsupportedVersionError`); the frame boundary is
  still trusted (the header layout is the versioned contract), so the
  connection survives.
* ``op`` — one code per service op / result kind (``OP_*`` constants).
* ``corr id`` — caller-chosen correlation id echoed on the response, so
  any number of requests can be in flight per connection and responses
  return in completion order, not submission order.
* ``length`` — payload byte count, bounded by the decoder's
  ``max_payload`` (:class:`FrameTooLargeError` beyond it — the reader
  may discard the declared length and keep the connection).

Payloads are **typed binary encodings, never pickle** — not just on the
attend hot path but for every op: strings are length-prefixed UTF-8,
ndarrays travel as raw ``dtype/shape/bytes`` planes (bit-exact for NaN
payloads and ``-0.0`` — the bytes are the array), and the structured
ops (:mod:`repro.serve.service` dataclasses) are field-by-field
compositions of those.  Unpickling attacker-controlled bytes is how
serving front ends get owned; this protocol never gives the payload a
code path to ``pickle.loads``.

Errors are **typed frames**: :data:`OP_ERROR` carries a ``u16`` error
code plus a message, and :func:`decode_error` rebuilds the matching
Python exception — backpressure rejects
(:class:`~repro.serve.request.ServerOverloadedError`), shard loss
(:class:`~repro.serve.cluster.ShardUnavailableError`), unknown
sessions, shutdown, invalid inputs, and the protocol's own framing
errors each map to a distinct code, so remote callers can tell a retryable
condition from a fatal one exactly as in-process callers do.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ConfigError, ReproError, ShapeError
from repro.serve.mutator import (
    AppendRowsMutation,
    DeleteRowsMutation,
    ReplaceKeyMutation,
)
from repro.serve.request import (
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
    UnknownSessionError,
)
from repro.serve.service import (
    AttendOp,
    AttendResult,
    CloseSessionOp,
    MetricsOp,
    MetricsResult,
    MutateSessionOp,
    PingOp,
    Pong,
    RegisterSessionOp,
    SessionInfo,
    SetTierOp,
    SnapshotOp,
    SnapshotResult,
    TierResult,
)
from repro.serve.tracing import TraceContext

__all__ = [
    "PROTOCOL_VERSION",
    "HEADER",
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "ProtocolError",
    "BadFrameError",
    "UnsupportedVersionError",
    "FrameTooLargeError",
    "ConnectionLostError",
    "encode_frame",
    "decode_header",
    "FrameAssembler",
    "encode_op",
    "decode_op",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "error_code_for",
]

MAGIC = b"A3RP"
PROTOCOL_VERSION = 1
HEADER = struct.Struct(">4sBBQI")
#: Default payload bound: generous for key/value registration frames,
#: small enough that a hostile length field cannot balloon memory.
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024

# -- op codes ----------------------------------------------------------
OP_ATTEND = 0x01
OP_REGISTER = 0x02
OP_CLOSE_SESSION = 0x03
OP_MUTATE = 0x04
OP_SET_TIER = 0x05
OP_SNAPSHOT = 0x06
OP_METRICS = 0x07
OP_PING = 0x08
OP_GOODBYE = 0x0F  # client-initiated graceful connection close

OP_RESULT_ROWS = 0x11  # AttendResult: one ndarray plane
OP_RESULT_JSON = 0x12  # structured results (SessionInfo, snapshots, ...)
OP_ERROR = 0x1F

# -- error codes -------------------------------------------------------
ERR_BAD_FRAME = 1
ERR_UNSUPPORTED_VERSION = 2
ERR_FRAME_TOO_LARGE = 3
ERR_OVERLOADED = 4
ERR_CLOSED = 5
ERR_UNKNOWN_SESSION = 6
ERR_SHARD_UNAVAILABLE = 7
ERR_INVALID = 8
ERR_INTERNAL = 9


class ProtocolError(ServeError):
    """Base class for wire-format violations."""


class BadFrameError(ProtocolError):
    """Garbage where a frame should be: bad magic, truncated header or
    payload, or a payload that does not decode as its op demands."""


class UnsupportedVersionError(ProtocolError):
    """The peer speaks a protocol version this build does not."""


class FrameTooLargeError(ProtocolError):
    """A frame declared a payload beyond the decoder's bound.

    ``payload_length`` preserves the declared length so a reader that
    trusts the frame boundary can discard exactly that many bytes and
    keep the connection alive.
    """

    def __init__(self, message: str, payload_length: int = 0):
        super().__init__(message)
        self.payload_length = payload_length


class ConnectionLostError(ServeError):
    """The transport died with requests still in flight."""


def _map_errors():
    # Imported lazily: cluster pulls in the whole serving stack, and
    # protocol must stay importable from it without a cycle.
    from repro.serve.cluster import ShardUnavailableError

    return {
        ERR_BAD_FRAME: BadFrameError,
        ERR_UNSUPPORTED_VERSION: UnsupportedVersionError,
        ERR_FRAME_TOO_LARGE: FrameTooLargeError,
        ERR_OVERLOADED: ServerOverloadedError,
        ERR_CLOSED: ServerClosedError,
        ERR_UNKNOWN_SESSION: UnknownSessionError,
        ERR_SHARD_UNAVAILABLE: ShardUnavailableError,
        ERR_INVALID: ConfigError,
        ERR_INTERNAL: ServeError,
    }


def error_code_for(error: BaseException) -> int:
    """The wire code one exception maps to (most specific class wins)."""
    from repro.serve.cluster import ShardUnavailableError

    if isinstance(error, FrameTooLargeError):
        return ERR_FRAME_TOO_LARGE
    if isinstance(error, UnsupportedVersionError):
        return ERR_UNSUPPORTED_VERSION
    if isinstance(error, BadFrameError):
        return ERR_BAD_FRAME
    if isinstance(error, ServerOverloadedError):
        return ERR_OVERLOADED
    if isinstance(error, ServerClosedError):
        return ERR_CLOSED
    if isinstance(error, UnknownSessionError):
        return ERR_UNKNOWN_SESSION
    if isinstance(error, ShardUnavailableError):
        return ERR_SHARD_UNAVAILABLE
    if isinstance(error, (ConfigError, ShapeError, TypeError, ValueError)):
        return ERR_INVALID
    return ERR_INTERNAL


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(op: int, corr_id: int, payload: bytes = b"") -> bytes:
    return (
        HEADER.pack(MAGIC, PROTOCOL_VERSION, op, corr_id, len(payload))
        + payload
    )


def decode_header(
    header: bytes, max_payload: int = MAX_PAYLOAD_BYTES
) -> tuple[int, int, int]:
    """Validate one 18-byte header → ``(op, corr_id, payload_length)``.

    Raises :class:`BadFrameError` on bad magic (unsyncable — close the
    connection), :class:`UnsupportedVersionError` on a version mismatch
    and :class:`FrameTooLargeError` on an oversized declaration (both
    recoverable: the boundary is still trustworthy).
    """
    if len(header) != HEADER.size:
        raise BadFrameError(
            f"truncated header: {len(header)} of {HEADER.size} bytes"
        )
    magic, version, op, corr_id, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise BadFrameError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise UnsupportedVersionError(
            f"protocol version {version} not supported "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    if length > max_payload:
        raise FrameTooLargeError(
            f"frame declares {length} payload bytes "
            f"(bound is {max_payload})",
            payload_length=length,
        )
    return op, corr_id, length


class FrameAssembler:
    """Incremental frame decoder for stream transports.

    Feed arbitrary byte chunks; complete ``(op, corr_id, payload)``
    triples come out.  Header-level violations raise out of
    :meth:`feed` exactly as :func:`decode_header` classifies them; the
    assembler is then poisoned for :class:`BadFrameError` (the stream
    position is untrustworthy) but continues across version and size
    errors by skipping the declared payload.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD_BYTES):
        self.max_payload = max_payload
        self._buffer = bytearray()
        self._skip = 0  # payload bytes of a rejected frame left to discard
        self._poisoned = False

    def feed(self, data: bytes) -> list[tuple[int, int, bytes]]:
        if self._poisoned:
            raise BadFrameError("stream is unsynchronized; reconnect")
        self._buffer.extend(data)
        frames: list[tuple[int, int, bytes]] = []
        while True:
            if self._skip:
                drop = min(self._skip, len(self._buffer))
                del self._buffer[:drop]
                self._skip -= drop
                if self._skip:
                    return frames
            if len(self._buffer) < HEADER.size:
                return frames
            try:
                op, corr_id, length = decode_header(
                    bytes(self._buffer[: HEADER.size]), self.max_payload
                )
            except BadFrameError:
                self._poisoned = True
                raise
            except FrameTooLargeError as exc:
                del self._buffer[: HEADER.size]
                self._skip = exc.payload_length
                raise
            except UnsupportedVersionError:
                # The versioned contract covers the header layout, so
                # the length field is still trusted for resync.
                length = int.from_bytes(self._buffer[14:18], "big")
                del self._buffer[: HEADER.size]
                self._skip = length
                raise
            if len(self._buffer) < HEADER.size + length:
                return frames
            payload = bytes(
                self._buffer[HEADER.size : HEADER.size + length]
            )
            del self._buffer[: HEADER.size + length]
            frames.append((op, corr_id, payload))


# ----------------------------------------------------------------------
# primitive encodings
# ----------------------------------------------------------------------


def _put_str(out: bytearray, text: str | None) -> None:
    if text is None:
        out.extend((0xFFFF).to_bytes(2, "big"))
        return
    raw = text.encode("utf-8")
    if len(raw) >= 0xFFFF:
        raise ProtocolError(f"string field too long ({len(raw)} bytes)")
    out.extend(len(raw).to_bytes(2, "big"))
    out.extend(raw)


class _Cursor:
    """Bounds-checked reader over one payload."""

    def __init__(self, payload: bytes):
        self.payload = payload
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if count < 0 or end > len(self.payload):
            raise BadFrameError(
                f"payload truncated: wanted {count} bytes at offset "
                f"{self.offset} of {len(self.payload)}"
            )
        chunk = self.payload[self.offset : end]
        self.offset = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def string(self) -> str | None:
        length = self.u16()
        if length == 0xFFFF:
            return None
        raw = self.take(length)
        try:
            return raw.decode("utf-8", errors="strict")
        except UnicodeDecodeError as exc:
            raise BadFrameError(f"undecodable string field: {exc}") from exc

    def done(self) -> None:
        if self.offset != len(self.payload):
            raise BadFrameError(
                f"{len(self.payload) - self.offset} trailing payload bytes"
            )


def _put_array(out: bytearray, array: np.ndarray) -> None:
    """Append one ndarray plane: dtype str, shape, raw little-endian
    C-order bytes.  Bit-exact: NaN payloads and signed zeros survive."""
    array = np.asarray(array)
    if array.dtype.hasobject or array.dtype.kind in "OVU":
        raise ProtocolError(
            f"dtype {array.dtype} is not wire-encodable"
        )
    le = array.dtype.newbyteorder("<")
    data = np.ascontiguousarray(array, dtype=le)
    _put_str(out, data.dtype.str)
    out.append(array.ndim)
    for dim in array.shape:
        out.extend(int(dim).to_bytes(4, "big"))
    out.extend(data.tobytes())


def _take_array(cursor: _Cursor) -> np.ndarray:
    dtype_str = cursor.string()
    if dtype_str is None:
        raise BadFrameError("array plane is missing its dtype")
    try:
        dtype = np.dtype(dtype_str)
    except TypeError as exc:
        raise BadFrameError(f"bad array dtype {dtype_str!r}") from exc
    if dtype.hasobject:
        raise BadFrameError(f"refusing object dtype {dtype_str!r}")
    ndim = cursor.u8()
    if ndim > 8:
        raise BadFrameError(f"array rank {ndim} is implausible")
    shape = tuple(cursor.u32() for _ in range(ndim))
    count = 1
    for dim in shape:
        count *= dim
    nbytes = count * dtype.itemsize
    raw = cursor.take(nbytes)
    try:
        array = np.frombuffer(raw, dtype=dtype).reshape(shape)
        # Native byte order, writable copy: downstream code treats
        # request arrays as ordinary ndarrays it may own.
        return array.astype(dtype.newbyteorder("="), copy=True)
    except (TypeError, ValueError) as exc:
        raise BadFrameError(f"undecodable array plane: {exc}") from exc


def _put_json(out: bytearray, value) -> None:
    out.extend(json.dumps(value, separators=(",", ":")).encode("utf-8"))


# ----------------------------------------------------------------------
# op payloads
# ----------------------------------------------------------------------

_MUT_APPEND = 1
_MUT_DELETE = 2
_MUT_REPLACE = 3


def encode_op(
    op, corr_id: int, trace_ctx: TraceContext | None = None
) -> bytes:
    """One service op (:mod:`repro.serve.service`) → a complete frame."""
    out = bytearray()
    if isinstance(op, AttendOp):
        _put_str(out, op.session_id)
        _put_str(out, op.tier)
        _put_str(out, trace_ctx.trace_id if trace_ctx else None)
        _put_str(out, trace_ctx.span_id if trace_ctx else None)
        _put_array(out, np.atleast_2d(np.asarray(op.queries)))
        return encode_frame(OP_ATTEND, corr_id, bytes(out))
    if isinstance(op, RegisterSessionOp):
        _put_str(out, op.session_id)
        _put_array(out, op.key)
        _put_array(out, op.value)
        return encode_frame(OP_REGISTER, corr_id, bytes(out))
    if isinstance(op, CloseSessionOp):
        _put_str(out, op.session_id)
        return encode_frame(OP_CLOSE_SESSION, corr_id, bytes(out))
    if isinstance(op, MutateSessionOp):
        _put_str(out, op.session_id)
        mutation = op.mutation
        if isinstance(mutation, AppendRowsMutation):
            out.append(_MUT_APPEND)
            _put_array(out, np.atleast_2d(np.asarray(mutation.key_rows)))
            _put_array(out, np.atleast_2d(np.asarray(mutation.value_rows)))
        elif isinstance(mutation, DeleteRowsMutation):
            out.append(_MUT_DELETE)
            _put_array(out, np.asarray(mutation.rows, dtype=np.int64))
        elif isinstance(mutation, ReplaceKeyMutation):
            out.append(_MUT_REPLACE)
            out.extend(int(mutation.row).to_bytes(4, "big"))
            _put_array(out, np.asarray(mutation.key_row, dtype=np.float64))
            if mutation.value_row is None:
                out.append(0)
            else:
                out.append(1)
                _put_array(
                    out, np.asarray(mutation.value_row, dtype=np.float64)
                )
        else:
            raise ProtocolError(
                f"mutation {type(mutation).__name__} is not wire-encodable"
            )
        return encode_frame(OP_MUTATE, corr_id, bytes(out))
    if isinstance(op, SetTierOp):
        _put_str(out, op.tier)
        return encode_frame(OP_SET_TIER, corr_id, bytes(out))
    if isinstance(op, SnapshotOp):
        return encode_frame(OP_SNAPSHOT, corr_id)
    if isinstance(op, MetricsOp):
        return encode_frame(OP_METRICS, corr_id)
    if isinstance(op, PingOp):
        return encode_frame(OP_PING, corr_id)
    raise ProtocolError(f"op {type(op).__name__} is not wire-encodable")


def decode_op(
    opcode: int, payload: bytes
) -> tuple[object, TraceContext | None]:
    """One request frame → ``(service op, trace context or None)``."""
    cursor = _Cursor(payload)
    if opcode == OP_ATTEND:
        session_id = _require_session(cursor)
        tier = cursor.string()
        trace_id = cursor.string()
        span_id = cursor.string()
        queries = _take_array(cursor)
        cursor.done()
        if queries.ndim != 2:
            raise BadFrameError(
                f"attend queries must be 2-D, got shape {queries.shape}"
            )
        ctx = None
        if trace_id is not None and span_id is not None:
            ctx = TraceContext(trace_id=trace_id, span_id=span_id)
        return AttendOp(session_id=session_id, queries=queries, tier=tier), ctx
    if opcode == OP_REGISTER:
        session_id = _require_session(cursor)
        key = _take_array(cursor)
        value = _take_array(cursor)
        cursor.done()
        return (
            RegisterSessionOp(session_id=session_id, key=key, value=value),
            None,
        )
    if opcode == OP_CLOSE_SESSION:
        session_id = _require_session(cursor)
        cursor.done()
        return CloseSessionOp(session_id=session_id), None
    if opcode == OP_MUTATE:
        session_id = _require_session(cursor)
        kind = cursor.u8()
        if kind == _MUT_APPEND:
            key_rows = _take_array(cursor)
            value_rows = _take_array(cursor)
            mutation = AppendRowsMutation(
                key_rows=key_rows, value_rows=value_rows
            )
        elif kind == _MUT_DELETE:
            rows = _take_array(cursor)
            mutation = DeleteRowsMutation(
                rows=tuple(int(r) for r in rows.ravel())
            )
        elif kind == _MUT_REPLACE:
            row = cursor.u32()
            key_row = _take_array(cursor)
            value_row = _take_array(cursor) if cursor.u8() else None
            mutation = ReplaceKeyMutation(
                row=row, key_row=key_row, value_row=value_row
            )
        else:
            raise BadFrameError(f"unknown mutation kind {kind}")
        cursor.done()
        return MutateSessionOp(session_id=session_id, mutation=mutation), None
    if opcode == OP_SET_TIER:
        tier = cursor.string()
        cursor.done()
        if tier is None:
            raise BadFrameError("set-tier frame is missing the tier")
        return SetTierOp(tier=tier), None
    if opcode == OP_SNAPSHOT:
        cursor.done()
        return SnapshotOp(), None
    if opcode == OP_METRICS:
        cursor.done()
        return MetricsOp(), None
    if opcode == OP_PING:
        cursor.done()
        return PingOp(), None
    raise BadFrameError(f"unknown request op 0x{opcode:02x}")


def _require_session(cursor: _Cursor) -> str:
    session_id = cursor.string()
    if session_id is None:
        raise BadFrameError("frame is missing the session id")
    return session_id


# ----------------------------------------------------------------------
# result payloads
# ----------------------------------------------------------------------


def encode_result(result, corr_id: int) -> bytes:
    """One service result → a complete response frame."""
    if isinstance(result, AttendResult):
        out = bytearray()
        _put_array(out, result.outputs)
        return encode_frame(OP_RESULT_ROWS, corr_id, bytes(out))
    out = bytearray()
    if isinstance(result, SessionInfo):
        _put_json(
            out,
            {
                "kind": "session",
                "session_id": result.session_id,
                "n": result.n,
                "d": result.d,
                "d_v": result.d_v,
            },
        )
    elif isinstance(result, TierResult):
        _put_json(out, {"kind": "tier", "previous": result.previous})
    elif isinstance(result, SnapshotResult):
        _put_json(out, {"kind": "snapshot", "snapshot": result.snapshot})
    elif isinstance(result, MetricsResult):
        _put_json(out, {"kind": "metrics", "text": result.text})
    elif isinstance(result, Pong):
        _put_json(out, {"kind": "pong"})
    else:
        raise ProtocolError(
            f"result {type(result).__name__} is not wire-encodable"
        )
    return encode_frame(OP_RESULT_JSON, corr_id, bytes(out))


def decode_result(opcode: int, payload: bytes):
    """One response frame → the typed service result (or raises the
    decoded exception for :data:`OP_ERROR` frames)."""
    if opcode == OP_ERROR:
        raise decode_error(payload)
    if opcode == OP_RESULT_ROWS:
        cursor = _Cursor(payload)
        outputs = _take_array(cursor)
        cursor.done()
        return AttendResult(outputs=outputs)
    if opcode == OP_RESULT_JSON:
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadFrameError(f"undecodable JSON result: {exc}") from exc
        kind = record.get("kind") if isinstance(record, dict) else None
        if kind == "session":
            return SessionInfo(
                session_id=record["session_id"],
                n=int(record["n"]),
                d=int(record["d"]),
                d_v=int(record["d_v"]),
            )
        if kind == "tier":
            return TierResult(previous=record["previous"])
        if kind == "snapshot":
            return SnapshotResult(snapshot=record["snapshot"])
        if kind == "metrics":
            return MetricsResult(text=record["text"])
        if kind == "pong":
            return Pong()
        raise BadFrameError(f"unknown JSON result kind {kind!r}")
    raise BadFrameError(f"unknown response op 0x{opcode:02x}")


def encode_error(error: BaseException, corr_id: int) -> bytes:
    out = bytearray()
    out.extend(error_code_for(error).to_bytes(2, "big"))
    _put_str(out, f"{type(error).__name__}: {error}"[:4096])
    return encode_frame(OP_ERROR, corr_id, bytes(out))


def decode_error(payload: bytes) -> Exception:
    cursor = _Cursor(payload)
    code = cursor.u16()
    message = cursor.string() or ""
    cursor.done()
    cls = _map_errors().get(code)
    if cls is None:
        return ReproError(f"unknown wire error code {code}: {message}")
    if cls is FrameTooLargeError:
        return FrameTooLargeError(message)
    return cls(message)
