"""Request objects and error types of the serving layer.

A request is one query against one registered session.  Its lifecycle:
``AttentionServer.submit`` stamps it with an id and an enqueue time and
hands it to the :class:`~repro.serve.batcher.DynamicBatcher`; a scheduler
worker later dispatches a whole same-session group through one
``attend_many`` call and resolves every request's future with its output
row.  Timestamps are kept at each hop so :class:`~repro.serve.stats.ServerStats`
can split latency into queue wait and service time.
"""

from __future__ import annotations

from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.serve.observability import now

if TYPE_CHECKING:
    from repro.serve.tracing import Span

__all__ = [
    "AttentionRequest",
    "ServeError",
    "ServerClosedError",
    "ServerOverloadedError",
    "UnknownSessionError",
    "resolve_request",
]


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class ServerClosedError(ServeError):
    """The server is stopped (or stopping) and accepts no new requests."""


class ServerOverloadedError(ServeError):
    """Admission control rejected a request (queue full / wait timed out)."""


class UnknownSessionError(ServeError):
    """A request referenced a session id that was never registered."""


@dataclass(eq=False)  # identity semantics; ndarray fields break __eq__
class AttentionRequest:
    """One single-query attention request bound to a session.

    Attributes
    ----------
    session_id:
        The registered session whose key/value memory the query attends
        over; together with ``tier`` it forms the batcher's grouping key.
    query:
        ``(d,)`` float64 query vector.
    tier:
        Quality tier this request is dispatched at — one of
        :data:`repro.core.config.TIERS`.  Resolved at submission time:
        callers either pin a tier explicitly (``pinned=True``) or leave
        it to the server's current default, which an
        :class:`~repro.serve.controller.AdaptiveQualityController` may
        have degraded under load.  The resolved tier never changes once
        the request is admitted — a queued request is dispatched at the
        quality it was promised.
    pinned:
        Whether the caller named the tier explicitly.  Pinned requests
        are exempt from SLO-driven degradation by construction (the
        controller only moves the *default* used for unpinned traffic).
    request_id:
        Server-assigned monotonically increasing id (submission order).
    future:
        Resolves to the ``(d_v,)`` attended output row, or to the
        exception the dispatch raised.
    enqueued_at / admitted_at / claimed_at / dispatched_at:
        :func:`repro.serve.observability.now` stamps taken at
        submission, at admission into the batcher's queue (later than
        submission when the backpressure policy blocked), when a worker
        first takes the request into a forming batch, and at the moment
        the worker starts dispatching the batch that contains this
        request.  All four (and the scheduler's service timing) read the
        same clock, so queue-wait + service arithmetic and the trace
        span stages are consistent.  Latency telemetry is measured from
        ``enqueued_at`` so admission blocking shows up in the
        percentiles; the batcher's max-wait deadline runs from
        ``admitted_at``.
    span:
        The sampled root trace span covering this request, or ``None``
        when the request is untraced (the default).  Set by
        ``AttentionServer.submit``; the scheduler emits the per-stage
        child spans and finishes the root at resolve time.
    """

    session_id: str
    query: np.ndarray
    tier: str = "conservative"
    pinned: bool = False
    request_id: int = -1
    future: Future = field(default_factory=Future, repr=False)
    enqueued_at: float = field(default_factory=now)
    admitted_at: float | None = None
    claimed_at: float | None = None
    dispatched_at: float | None = None
    span: "Span | None" = field(default=None, repr=False)

    @property
    def group_key(self) -> tuple[str, str]:
        """The batcher's grouping key: one dispatch is one session at
        one tier, so every ``attend_many`` stays single-config and the
        per-tier outputs remain bit-identical to direct evaluation."""
        return (self.session_id, self.tier)

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the attended output is available."""
        return self.future.result(timeout)


def resolve_request(
    request: AttentionRequest, result=None, error=None
) -> None:
    """Resolve a request's future **at most once**, tolerating races.

    Two resolvers can race on one future: a dispatching worker failing
    a poisoned batch while ``close(drain=True)``/``stop`` converts the
    remaining queue to rejects, or a caller cancelling after a result
    timeout.  Whichever side loses the ``done()`` check race hits
    ``InvalidStateError`` — swallowed here, so the first resolution
    stands and neither a worker thread nor ``stop()`` blows up.  Every
    path that resolves a request's future must go through this helper.
    """
    try:
        if not request.future.done():
            if error is not None:
                request.future.set_exception(error)
            else:
                request.future.set_result(result)
    except InvalidStateError:  # resolved/cancelled between check and set
        pass
