"""Request objects and error types of the serving layer.

A request is one query against one registered session.  Its lifecycle:
``AttentionServer.submit`` stamps it with an id, an enqueue time, and a
:class:`BatchKey` and hands it to the
:class:`~repro.serve.batcher.DynamicBatcher`; a scheduler worker later
dispatches a whole fusion-compatible group — one session, or several
sessions fused under one cross-session key — through one ``attend_many``
or ``attend_many_ragged`` call and resolves every request's future with
its output row.  Timestamps are kept at each hop so :class:`~repro.serve.stats.ServerStats`
can split latency into queue wait and service time.
"""

from __future__ import annotations

from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.serve.observability import now

if TYPE_CHECKING:
    from repro.serve.tracing import Span

__all__ = [
    "AttentionRequest",
    "BatchKey",
    "ServeError",
    "ServerClosedError",
    "ServerOverloadedError",
    "UnknownSessionError",
    "resolve_request",
]


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class ServerClosedError(ServeError):
    """The server is stopped (or stopping) and accepts no new requests."""


class ServerOverloadedError(ServeError):
    """Admission control rejected a request (queue full / wait timed out)."""


class UnknownSessionError(ServeError):
    """A request referenced a session id that was never registered."""


@dataclass(frozen=True)
class BatchKey:
    """Fusion-compatibility key under which the batcher groups requests.

    Two requests may share one dispatched batch exactly when their keys
    compare equal.  A key either names a single session (``session_id``
    set, the conservative per-session grouping) or describes a
    *cross-session fusable* class (``session_id`` ``None``): any mix of
    sessions whose requests agree on tier, effective approximation
    config, query width, and dtype can then fuse into one ragged
    multi-key dispatch.  Keeping every criterion an explicit field means
    future fusion criteria extend this dataclass instead of rippling
    through the batcher, scheduler, and stats consumers.

    Attributes
    ----------
    tier:
        Quality tier of the dispatch — one of
        :data:`repro.core.config.TIERS`.  A batch is always a
        single-tier dispatch.
    session_id:
        The one session this key admits, or ``None`` for a
        cross-session fusable group.
    fingerprint:
        The effective :class:`~repro.core.config.ApproximationConfig`
        of the tier (hashable since the config dataclass is frozen), or
        ``None`` when ``session_id`` pins the group.  Two sessions fuse
        only when their tier resolves to the identical operating point.
    d / dtype:
        Query width and memory dtype of the sessions this key admits —
        segments of one ragged dispatch must share the query slab.
    """

    tier: str
    session_id: str | None = None
    fingerprint: object | None = None
    d: int | None = None
    dtype: str | None = None

    @property
    def fused(self) -> bool:
        """Whether this key admits requests from multiple sessions."""
        return self.session_id is None


@dataclass(eq=False)  # identity semantics; ndarray fields break __eq__
class AttentionRequest:
    """One single-query attention request bound to a session.

    Attributes
    ----------
    session_id:
        The registered session whose key/value memory the query attends
        over; together with ``tier`` it forms the batcher's grouping key.
    query:
        ``(d,)`` float64 query vector.
    tier:
        Quality tier this request is dispatched at — one of
        :data:`repro.core.config.TIERS`.  Resolved at submission time:
        callers either pin a tier explicitly (``pinned=True``) or leave
        it to the server's current default, which an
        :class:`~repro.serve.controller.AdaptiveQualityController` may
        have degraded under load.  The resolved tier never changes once
        the request is admitted — a queued request is dispatched at the
        quality it was promised.
    pinned:
        Whether the caller named the tier explicitly.  Pinned requests
        are exempt from SLO-driven degradation by construction (the
        controller only moves the *default* used for unpinned traffic).
    request_id:
        Server-assigned monotonically increasing id (submission order).
    future:
        Resolves to the ``(d_v,)`` attended output row, or to the
        exception the dispatch raised.
    enqueued_at / admitted_at / claimed_at / dispatched_at:
        :func:`repro.serve.observability.now` stamps taken at
        submission, at admission into the batcher's queue (later than
        submission when the backpressure policy blocked), when a worker
        first takes the request into a forming batch, and at the moment
        the worker starts dispatching the batch that contains this
        request.  All four (and the scheduler's service timing) read the
        same clock, so queue-wait + service arithmetic and the trace
        span stages are consistent.  Latency telemetry is measured from
        ``enqueued_at`` so admission blocking shows up in the
        percentiles; the batcher's max-wait deadline runs from
        ``admitted_at``.
    span:
        The sampled root trace span covering this request, or ``None``
        when the request is untraced (the default).  Set by
        ``AttentionServer.submit``; the scheduler emits the per-stage
        child spans and finishes the root at resolve time.
    """

    session_id: str
    query: np.ndarray
    tier: str = "conservative"
    pinned: bool = False
    request_id: int = -1
    future: Future = field(default_factory=Future, repr=False)
    enqueued_at: float = field(default_factory=now)
    admitted_at: float | None = None
    claimed_at: float | None = None
    dispatched_at: float | None = None
    span: "Span | None" = field(default=None, repr=False)
    batch_key: "BatchKey | None" = None

    @property
    def group_key(self) -> BatchKey:
        """The batcher's grouping key (a :class:`BatchKey`).

        ``AttentionServer.submit`` assigns ``batch_key`` at admission —
        a cross-session fusable key when the server's backend supports
        ragged dispatch, else a per-session key.  Requests constructed
        without one (direct batcher usage in tests and tools) default
        lazily to the conservative per-session grouping, under which
        every dispatch stays single-session/single-config exactly as
        before cross-session fusion existed.
        """
        key = self.batch_key
        if key is None:
            key = BatchKey(tier=self.tier, session_id=self.session_id)
            self.batch_key = key
        return key

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the attended output is available."""
        return self.future.result(timeout)


def resolve_request(
    request: AttentionRequest, result=None, error=None
) -> None:
    """Resolve a request's future **at most once**, tolerating races.

    Two resolvers can race on one future: a dispatching worker failing
    a poisoned batch while ``close(drain=True)``/``stop`` converts the
    remaining queue to rejects, or a caller cancelling after a result
    timeout.  Whichever side loses the ``done()`` check race hits
    ``InvalidStateError`` — swallowed here, so the first resolution
    stands and neither a worker thread nor ``stop()`` blows up.  Every
    path that resolves a request's future must go through this helper.
    """
    try:
        if not request.future.done():
            if error is not None:
                request.future.set_exception(error)
            else:
                request.future.set_result(result)
    except InvalidStateError:  # resolved/cancelled between check and set
        pass
