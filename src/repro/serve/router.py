"""Consistent-hash session routing for the sharded serving layer.

The paper scales by replicating approximate-attention units and
streaming independent queries through them; the serving-layer analogue
is a set of shard replicas, each running its own prepare-cache /
batcher / scheduler stack, with *sessions* as the unit of placement
(a session's prepared key artifacts live on exactly one shard, so every
request of the session must land there).

:class:`ConsistentHashRouter` implements the classic fixed-point hash
ring with virtual nodes:

* **stable** — the mapping is a pure function of the shard ids and the
  virtual-node count (SHA-1 based, never Python's randomized ``hash``),
  so the same session routes to the same shard across server restarts;
* **minimal movement** — adding a shard only moves the sessions that
  now route to it; removing a shard only moves the sessions that lived
  on it.  Every other session keeps its placement, which is exactly
  what keeps a rebalance from invalidating every shard's prepared-key
  cache at once.

The router is deliberately unaware of shard handles, processes, or
sessions — it maps strings to shard ids.  Placement bookkeeping (and
the actual key/value movement) lives in
:class:`~repro.serve.cluster.ShardedAttentionServer`.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.errors import ConfigError

__all__ = ["ConsistentHashRouter"]


def _ring_point(label: str) -> int:
    """A stable 64-bit position on the ring for ``label``."""
    digest = hashlib.sha1(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRouter:
    """Maps session ids onto shard ids via a consistent-hash ring.

    Parameters
    ----------
    shard_ids:
        Initial shard ids (order-insensitive; the ring depends only on
        the *set* of ids).
    virtual_nodes:
        Ring points per shard.  More points smooth the key-range split
        between shards (64 keeps the max/mean load ratio within a few
        tens of percent for realistic shard counts) at a small cost in
        ring size.
    """

    def __init__(self, shard_ids: Iterable[str] = (), virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ConfigError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._shard_ids: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> list[str]:
        """The member shard ids, sorted for reproducible iteration."""
        return sorted(self._shard_ids)

    def __len__(self) -> int:
        return len(self._shard_ids)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shard_ids

    def add_shard(self, shard_id: str) -> None:
        """Insert a shard's virtual nodes into the ring."""
        if shard_id in self._shard_ids:
            raise ConfigError(f"shard {shard_id!r} is already routed")
        self._shard_ids.add(shard_id)
        for point in self._shard_points(shard_id):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Remove a shard's virtual nodes from the ring."""
        if shard_id not in self._shard_ids:
            raise ConfigError(f"shard {shard_id!r} is not routed")
        self._shard_ids.discard(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def _shard_points(self, shard_id: str) -> list[int]:
        return [
            _ring_point(f"{shard_id}#{replica}")
            for replica in range(self.virtual_nodes)
        ]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, session_id: str) -> str:
        """The shard owning ``session_id``: the first virtual node at or
        after the session's ring point, wrapping at the top."""
        if not self._points:
            raise ConfigError("router has no shards")
        index = bisect.bisect_left(self._points, _ring_point(session_id))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference_list(self, session_id: str, r: int) -> list[str]:
        """The session's replica set: the next ``r`` *distinct* shards
        clockwise from its ring point, primary first.

        ``preference_list(sid, 1)[0] == route(sid)`` by construction,
        so replication factor 1 degenerates to plain routing.  When
        ``r`` exceeds the number of live shards the list degrades
        gracefully to every shard exactly once (still preference
        order) rather than failing — a cluster shrunk below its
        replication factor keeps serving at reduced redundancy.

        The walk skips over already-collected owners, so removing a
        shard that is *not* in the list never changes it (the other
        shards' virtual nodes keep their relative order), and removing
        one that *is* simply splices it out and appends the next
        distinct successor — the same minimal-movement property the
        single-owner route has, extended to replica sets.
        """
        if r < 1:
            raise ConfigError(f"replication factor must be >= 1, got {r}")
        if not self._points:
            raise ConfigError("router has no shards")
        start = bisect.bisect_left(self._points, _ring_point(session_id))
        replicas: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == r:
                    break
        return replicas

    def table(self, session_ids: Iterable[str]) -> dict[str, str]:
        """Route many ids at once: ``{session_id: shard_id}``."""
        return {sid: self.route(sid) for sid in session_ids}
