"""Worker pool that drains the batcher into backend dispatches.

Each worker loops: claim the next same-session group from the
:class:`~repro.serve.batcher.DynamicBatcher`, check out the session's
prepared backend from the :class:`~repro.serve.sessions.KeyCacheManager`,
run one ``attend_many`` over the stacked queries under the session's
dispatch lock, and resolve every request's future with its output row.
A dispatch failure resolves the whole group's futures with the
exception instead of killing the worker, so one poisoned batch cannot
take the server down.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve.batcher import DynamicBatcher
from repro.serve.observability import now
from repro.serve.request import AttentionRequest, resolve_request as _resolve
from repro.serve.sessions import KeyCacheManager
from repro.serve.stats import ServerStats
from repro.serve.tracing import Tracer

__all__ = ["Scheduler"]


class Scheduler:
    """Threaded dispatch loop between the batcher and the backends."""

    def __init__(
        self,
        batcher: DynamicBatcher,
        cache: KeyCacheManager,
        stats: ServerStats,
        num_workers: int = 2,
        tracer: Tracer | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.batcher = batcher
        self.cache = cache
        self.stats = stats
        self.num_workers = num_workers
        self.tracer = tracer if tracer is not None else Tracer()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            raise RuntimeError("scheduler already started")
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-serve-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def join(self, timeout: float | None = None) -> None:
        """Wait for the workers to exit (call after closing the batcher).

        ``timeout`` bounds the whole join, not each thread."""
        deadline = None if timeout is None else now() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - now())
            )
            thread.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]

    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            if batch:
                self.dispatch(batch)

    def dispatch(self, batch: list[AttentionRequest]) -> None:
        """Run one same-``(session, tier)`` group through the backend,
        synchronously.  The batcher guarantees the group is single-tier,
        so one ``attend_many`` through the tier's backend view keeps the
        dispatch single-config — per-tier outputs stay bit-identical to
        direct evaluation at that tier."""
        dispatched_at = now()
        for request in batch:
            request.dispatched_at = dispatched_at
        session_id = batch[0].session_id
        tier = batch[0].tier
        queue_depth = self.batcher.depth
        kernel_started = dispatched_at
        kernel_ended = dispatched_at
        entry = None
        try:
            entry = self.cache.checkout(session_id)
            queries = np.stack([request.query for request in batch])
            with entry.lock:
                # One atomic (key, value) snapshot: a concurrent
                # mutation swaps both together, so the pair can never
                # be torn even when this entry is cold-prepared while a
                # mutation lands.
                key, value = entry.session.memory
                backend = self.cache.tier_backend(entry, tier)
                kernel_started = now()
                outputs = backend.attend_many(key, value, queries)
                kernel_ended = now()
        except BaseException as exc:  # noqa: BLE001 — forwarded to callers
            service = now() - dispatched_at
            self._record(batch, session_id, dispatched_at, service,
                         queue_depth, failed=True, tier=tier)
            for request in batch:
                _resolve(request, error=exc)
            self._emit_spans(batch, kernel_started, kernel_ended, error=exc)
            return
        finally:
            if entry is not None:
                self.cache.release(entry)
        done = now()
        service = done - dispatched_at
        # Record before resolving: a caller woken by its future must not
        # be able to read stats that don't include its own batch yet.
        self._record(batch, session_id, dispatched_at, service, queue_depth,
                     failed=False, done=done, tier=tier)
        for i, request in enumerate(batch):
            _resolve(request, result=outputs[i])
        self._emit_spans(batch, kernel_started, kernel_ended)

    def _record(
        self,
        batch: list[AttentionRequest],
        session_id: str,
        dispatched_at: float,
        service: float,
        queue_depth: int,
        failed: bool,
        done: float | None = None,
        tier: str | None = None,
    ) -> None:
        if done is None:
            done = now()
        self.stats.record_batch(
            session_id=session_id,
            request_ids=[request.request_id for request in batch],
            queue_waits=[
                dispatched_at - request.enqueued_at for request in batch
            ],
            latencies=[done - request.enqueued_at for request in batch],
            service_seconds=service,
            queue_depth=queue_depth,
            failed=failed,
            tier=tier,
        )

    def _emit_spans(
        self,
        batch: list[AttentionRequest],
        kernel_started: float,
        kernel_ended: float,
        error: BaseException | None = None,
    ) -> None:
        """Emit the per-stage child spans and finish the root span of
        every traced request in the batch.

        The stage boundaries are the request's own stamps (all taken
        from ``observability.now``), so the children are contiguous:
        their durations telescope exactly to the root span's duration.
        Runs after the futures resolve — span readout is telemetry, not
        part of the request's critical path.
        """
        tracer = self.tracer
        ended = now()
        batch_size = len(batch)
        for request in batch:
            span = request.span
            if span is None:
                continue
            if error is not None:
                span.attrs["error"] = type(error).__name__
                tracer.record(span, ended_at=ended)
                continue
            tid, pid = span.trace_id, span.span_id
            admitted = request.admitted_at
            claimed = request.claimed_at
            dispatched = request.dispatched_at
            tracer.record_stage(
                "submit", trace_id=tid, parent_id=pid,
                started_at=span.started_at, ended_at=admitted,
            )
            tracer.record_stage(
                "queue", trace_id=tid, parent_id=pid,
                started_at=admitted, ended_at=claimed,
            )
            tracer.record_stage(
                "batch_formation", trace_id=tid, parent_id=pid,
                started_at=claimed, ended_at=dispatched,
            )
            tracer.record_stage(
                "dispatch", trace_id=tid, parent_id=pid,
                started_at=dispatched, ended_at=kernel_started,
            )
            tracer.record_stage(
                "kernel", trace_id=tid, parent_id=pid,
                started_at=kernel_started, ended_at=kernel_ended,
                attrs={"batch_size": batch_size},
            )
            tracer.record_stage(
                "resolve", trace_id=tid, parent_id=pid,
                started_at=kernel_ended, ended_at=ended,
            )
            span.attrs["batch_size"] = batch_size
            tracer.record(span, ended_at=ended)
