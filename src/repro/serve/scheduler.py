"""Worker pool that drains the batcher into backend dispatches.

Each worker loops: claim the next same-:class:`~repro.serve.request.BatchKey`
group from the :class:`~repro.serve.batcher.DynamicBatcher`, check out
the prepared backend of every session in the group from the
:class:`~repro.serve.sessions.KeyCacheManager`, run the whole group
under the entries' dispatch locks — one ``attend_many`` for a
single-session group, one fused ``attend_many_ragged`` for a
cross-session group — and resolve every request's future with its
output row.  A dispatch failure resolves the whole group's futures with
the exception instead of killing the worker, so one poisoned batch
cannot take the server down.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack

import numpy as np

from repro.core.backends import attend_many_ragged
from repro.serve.batcher import DynamicBatcher
from repro.serve.observability import now
from repro.serve.request import AttentionRequest, resolve_request as _resolve
from repro.serve.sessions import KeyCacheManager
from repro.serve.stats import ServerStats
from repro.serve.tracing import Tracer

__all__ = ["Scheduler"]


class Scheduler:
    """Threaded dispatch loop between the batcher and the backends."""

    def __init__(
        self,
        batcher: DynamicBatcher,
        cache: KeyCacheManager,
        stats: ServerStats,
        num_workers: int = 2,
        tracer: Tracer | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.batcher = batcher
        self.cache = cache
        self.stats = stats
        self.num_workers = num_workers
        self.tracer = tracer if tracer is not None else Tracer()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            raise RuntimeError("scheduler already started")
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-serve-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def join(self, timeout: float | None = None) -> None:
        """Wait for the workers to exit (call after closing the batcher).

        ``timeout`` bounds the whole join, not each thread."""
        deadline = None if timeout is None else now() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - now())
            )
            thread.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]

    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            if batch:
                self.dispatch(batch)

    def dispatch(self, batch: list[AttentionRequest]) -> None:
        """Run one same-``BatchKey`` group through the backend(s),
        synchronously.  The batcher guarantees the group is single-tier
        and single-config.  A single-session group dispatches exactly as
        before cross-session fusion existed: one ``attend_many`` through
        the tier's backend view under the session entry's lock.  A group
        spanning several sessions checks out every entry, acquires the
        entry locks in sorted-session-id order (one global order, so
        concurrent multi-entry dispatches cannot deadlock against each
        other or against single-entry mutations), and runs one fused
        ``attend_many_ragged`` over the whole slab; when the cache
        cannot resolve a ragged plan, the segments dispatch per session
        under the same claim.  Either way every segment's outputs are
        bit-identical to direct evaluation at its tier."""
        dispatched_at = now()
        for request in batch:
            request.dispatched_at = dispatched_at
        tier = batch[0].tier
        # Per-session segments.  Dict insertion order preserves the
        # first-appearance order of sessions, and each segment keeps its
        # requests in arrival order, so the slab layout is deterministic.
        segments: dict[str, list[AttentionRequest]] = {}
        for request in batch:
            segments.setdefault(request.session_id, []).append(request)
        session_ids = list(segments)
        ordered = [r for sid in session_ids for r in segments[sid]]
        queue_depth = self.batcher.depth
        kernel_started = dispatched_at
        kernel_ended = dispatched_at
        fused_segments = len(session_ids)
        entries: dict[str, object] = {}
        try:
            for sid in session_ids:
                entries[sid] = self.cache.checkout(sid)
            with ExitStack() as stack:
                for sid in sorted(session_ids):
                    stack.enter_context(entries[sid].lock)
                # One atomic (key, value) snapshot per session: a
                # concurrent mutation swaps both together, so a pair can
                # never be torn even when an entry is cold-prepared
                # while a mutation lands.
                memories = {
                    sid: entries[sid].session.memory for sid in session_ids
                }
                if len(session_ids) == 1:
                    sid = session_ids[0]
                    key, value = memories[sid]
                    backend = self.cache.tier_backend(entries[sid], tier)
                    queries = np.stack([r.query for r in batch])
                    kernel_started = now()
                    flat_outputs = backend.attend_many(key, value, queries)
                    kernel_ended = now()
                else:
                    queries = np.stack([r.query for r in ordered])
                    seg_offsets = np.cumsum(
                        [0] + [len(segments[sid]) for sid in session_ids]
                    )
                    keys = [memories[sid][0] for sid in session_ids]
                    vals = [memories[sid][1] for sid in session_ids]
                    plan = self.cache.ragged_plan(
                        [entries[sid] for sid in session_ids], tier
                    )
                    if plan is not None:
                        backends, cfg = plan
                        kernel_started = now()
                        seg_outputs = attend_many_ragged(
                            backends, keys, vals, queries, seg_offsets,
                            config=cfg,
                        )
                        kernel_ended = now()
                    else:
                        # Config-incompatible segments: per-session
                        # dispatches under the same claim and locks (the
                        # fusion is lost; bit-identity never was at
                        # stake).
                        kernel_started = now()
                        seg_outputs = []
                        for s, sid in enumerate(session_ids):
                            backend = self.cache.tier_backend(
                                entries[sid], tier
                            )
                            lo, hi = seg_offsets[s], seg_offsets[s + 1]
                            seg_outputs.append(
                                backend.attend_many(
                                    keys[s], vals[s], queries[lo:hi]
                                )
                            )
                        kernel_ended = now()
                    flat_outputs = [
                        row for out in seg_outputs for row in out
                    ]
        except BaseException as exc:  # noqa: BLE001 — forwarded to callers
            service = now() - dispatched_at
            self._record(ordered, segments, dispatched_at, service,
                         queue_depth, failed=True, tier=tier)
            for request in batch:
                _resolve(request, error=exc)
            self._emit_spans(batch, kernel_started, kernel_ended,
                             fused_segments, error=exc)
            return
        finally:
            for entry in entries.values():
                self.cache.release(entry)
        done = now()
        service = done - dispatched_at
        # Record before resolving: a caller woken by its future must not
        # be able to read stats that don't include its own batch yet.
        self._record(ordered, segments, dispatched_at, service, queue_depth,
                     failed=False, done=done, tier=tier)
        for i, request in enumerate(ordered):
            _resolve(request, result=flat_outputs[i])
        self._emit_spans(batch, kernel_started, kernel_ended, fused_segments)

    def _record(
        self,
        ordered: list[AttentionRequest],
        segments: dict[str, list[AttentionRequest]],
        dispatched_at: float,
        service: float,
        queue_depth: int,
        failed: bool,
        done: float | None = None,
        tier: str | None = None,
    ) -> None:
        if done is None:
            done = now()
        session_ids = list(segments)
        self.stats.record_batch(
            session_id=session_ids[0],
            request_ids=[request.request_id for request in ordered],
            queue_waits=[
                dispatched_at - request.enqueued_at for request in ordered
            ],
            latencies=[done - request.enqueued_at for request in ordered],
            service_seconds=service,
            queue_depth=queue_depth,
            failed=failed,
            tier=tier,
            segments=[
                (sid, [r.request_id for r in segments[sid]])
                for sid in session_ids
            ],
        )

    def _emit_spans(
        self,
        batch: list[AttentionRequest],
        kernel_started: float,
        kernel_ended: float,
        fused_segments: int = 1,
        error: BaseException | None = None,
    ) -> None:
        """Emit the per-stage child spans and finish the root span of
        every traced request in the batch.

        The stage boundaries are the request's own stamps (all taken
        from ``observability.now``), so the children are contiguous:
        their durations telescope exactly to the root span's duration.
        Runs after the futures resolve — span readout is telemetry, not
        part of the request's critical path.
        """
        tracer = self.tracer
        ended = now()
        batch_size = len(batch)
        for request in batch:
            span = request.span
            if span is None:
                continue
            if error is not None:
                span.attrs["error"] = type(error).__name__
                tracer.record(span, ended_at=ended)
                continue
            tid, pid = span.trace_id, span.span_id
            admitted = request.admitted_at
            claimed = request.claimed_at
            dispatched = request.dispatched_at
            tracer.record_stage(
                "submit", trace_id=tid, parent_id=pid,
                started_at=span.started_at, ended_at=admitted,
            )
            tracer.record_stage(
                "queue", trace_id=tid, parent_id=pid,
                started_at=admitted, ended_at=claimed,
            )
            tracer.record_stage(
                "batch_formation", trace_id=tid, parent_id=pid,
                started_at=claimed, ended_at=dispatched,
            )
            tracer.record_stage(
                "dispatch", trace_id=tid, parent_id=pid,
                started_at=dispatched, ended_at=kernel_started,
            )
            tracer.record_stage(
                "kernel", trace_id=tid, parent_id=pid,
                started_at=kernel_started, ended_at=kernel_ended,
                attrs={"batch_size": batch_size,
                       "segments": fused_segments},
            )
            tracer.record_stage(
                "resolve", trace_id=tid, parent_id=pid,
                started_at=kernel_ended, ended_at=ended,
            )
            span.attrs["batch_size"] = batch_size
            span.attrs["segments"] = fused_segments
            tracer.record(span, ended_at=ended)
