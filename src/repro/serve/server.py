"""The synchronous serving facade: sessions in, attended rows out.

:class:`AttentionServer` wires the subsystem together — a
:class:`~repro.serve.sessions.KeyCacheManager` of per-tenant prepared
keys, a :class:`~repro.serve.batcher.DynamicBatcher` with bounded
admission, and a :class:`~repro.serve.scheduler.Scheduler` worker pool
— behind four calls: ``register_session``, ``submit`` (a future),
``attend`` (blocking), and ``stats``.

:class:`ServedBackend` adapts a running server back to the
:class:`~repro.core.backends.AttentionBackend` protocol, so existing
model code (``respond`` / ``respond_many`` / ``encode_inference``) can
route its attention through the server unchanged — each protocol-level
query becomes one server request, and cross-caller batching happens in
the batcher rather than in the model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.backends import ApproximateBackend, AttentionBackend
from repro.core.config import (
    ApproximationConfig,
    aggressive,
    conservative,
    exact,
    tier_rank,
)
from repro.errors import ConfigError
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.mutator import SessionMutation, SessionMutator
from repro.serve.request import (
    AttentionRequest,
    BatchKey,
    ServerClosedError,
    ServerOverloadedError,
    resolve_request,
)
from repro.serve.observability import MetricsRegistry
from repro.serve.scheduler import Scheduler
from repro.serve.sessions import KeyCacheManager, Session
from repro.serve.stats import ServerStats
from repro.serve.tracing import TraceContext, Tracer

__all__ = ["ServerConfig", "AttentionServer", "ServedBackend"]


@dataclass(frozen=True)
class ServerConfig:
    """Everything tunable about one :class:`AttentionServer`.

    Attributes
    ----------
    batch:
        Batching and backpressure policy (see :class:`BatchPolicy`).
    num_workers:
        Dispatch threads.  One worker per *concurrently active session*
        is the sweet spot: a single session cannot use more than one
        (dispatches against one backend are serialized), while extra
        workers let distinct sessions overlap.
    cache_capacity_bytes:
        Prepared-artifact budget of the key cache (``None`` = unbounded).
    cache_disk_capacity_bytes:
        Byte budget of the cache's disk spill tier.  ``None`` (default)
        disables spilling: evictions drop prepared state and the next
        checkout re-sorts.  When set, evicted artifacts spill to disk
        and later misses promote them back by mmap — see
        :class:`~repro.serve.sessions.KeyCacheManager`.
    cache_spill_dir:
        Directory for spill files (``None`` = a private temp dir).
    approximation / engine:
        Operating point and engine of the default
        :class:`~repro.core.backends.ApproximateBackend` factory.
        ``engine="vectorized"`` is the point of the exercise: grouped
        requests hit the whole-batch pipeline.  ``approximation`` is
        also what the ``"conservative"`` quality tier dispatches at, so
        a server configured with a custom operating point keeps serving
        untagged traffic exactly as before tiers existed.
    default_tier:
        Quality tier (one of :data:`repro.core.config.TIERS`) that
        requests without an explicit tier are dispatched at.  This is
        the *configured* default; the live default can be moved by
        :meth:`AttentionServer.set_default_tier` (e.g. by an
        :class:`~repro.serve.controller.AdaptiveQualityController`
        shedding load by degrading quality) and restored on recovery.
    keep_batch_log:
        Retain each batch's composition in the stats (tests, demos).
    keep_selection_traces:
        Whether session backends retain per-query
        :class:`~repro.core.approximate.AttentionTrace` objects.  Off by
        default: a long-lived server only consumes the scalar counters,
        and traces cost kilobytes per request.  Turn on to feed figure
        scripts from served traffic.
    rebuild_dirty_fraction:
        Streaming-session cost knob forwarded to the default backend
        factory: session mutations splice the prepared key structures
        incrementally until the rows touched since the last full column
        sort exceed this fraction of the key, then rebuild once (see
        :class:`~repro.core.backends.ApproximateBackend`).  Purely a
        cost trade-off — either path is bit-identical.
    trace_sample_rate:
        Fraction of requests traced as span trees (see
        :mod:`repro.serve.tracing`), in ``[0, 1]``.  ``0`` (default)
        disables tracing; the request path then performs a single
        boolean check per submit.  Tracing never changes served outputs
        — it only records timestamps.
    trace_max_spans:
        Bound on the tracer's finished-span buffer (oldest spans drop
        once it wraps; the slow-request exemplar ring is kept
        separately and survives wrap-around).
    cross_session_fusion:
        Whether equal-tier traffic from *different* sessions may fuse
        into one ragged multi-key dispatch
        (:func:`~repro.core.backends.attend_many_ragged`).  On by
        default; it only takes effect when the server uses its default
        :class:`~repro.core.backends.ApproximateBackend` factory with
        the vectorized engine (custom backend factories keep the
        conservative per-session grouping).  Fused or not, every
        segment's outputs are bit-identical to a per-session dispatch
        at the same tier — this knob trades batching opportunity
        against dispatch-time lock breadth, never quality.
    """

    batch: BatchPolicy = field(default_factory=BatchPolicy)
    num_workers: int = 2
    cache_capacity_bytes: int | None = 256 * 1024 * 1024
    cache_disk_capacity_bytes: int | None = None
    cache_spill_dir: str | None = None
    approximation: ApproximationConfig = field(default_factory=conservative)
    engine: str = "vectorized"
    default_tier: str = "conservative"
    keep_batch_log: bool = False
    keep_selection_traces: bool = False
    rebuild_dirty_fraction: float | None = 0.5
    trace_sample_rate: float = 0.0
    trace_max_spans: int = 16384
    cross_session_fusion: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        tier_rank(self.default_tier)  # raises ConfigError on unknown tiers
        if (
            self.rebuild_dirty_fraction is not None
            and self.rebuild_dirty_fraction < 0
        ):
            raise ConfigError(
                "rebuild_dirty_fraction must be >= 0 or None, got "
                f"{self.rebuild_dirty_fraction}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigError(
                "trace_sample_rate must lie in [0, 1], got "
                f"{self.trace_sample_rate}"
            )
        if self.trace_max_spans < 1:
            raise ConfigError(
                f"trace_max_spans must be >= 1, got {self.trace_max_spans}"
            )
        if (
            self.cache_disk_capacity_bytes is not None
            and self.cache_disk_capacity_bytes < 0
        ):
            raise ConfigError(
                "cache_disk_capacity_bytes must be >= 0 or None, got "
                f"{self.cache_disk_capacity_bytes}"
            )

    def tier_configs(self) -> dict[str, ApproximationConfig]:
        """Tier name → operating point served at that tier.

        ``"exact"`` and ``"aggressive"`` are the paper's fixed points;
        ``"conservative"`` serves this server's own ``approximation``
        (which defaults to the paper's conservative point), so the
        middle tier always means "this server's baseline quality".
        """
        return {
            "exact": exact(),
            "conservative": self.approximation,
            "aggressive": aggressive(),
        }


class AttentionServer:
    """Dynamic-batching attention service over registered sessions.

    Parameters
    ----------
    config:
        Server configuration; defaults to conservative approximation,
        vectorized engine, batch 64 / 5 ms policy.
    backend_factory:
        Overrides the backend built per cached session — any
        :class:`~repro.core.backends.AttentionBackend` factory works
        (e.g. ``ExactBackend`` for an exact-serving baseline).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> server = AttentionServer()
    >>> _ = server.register_session(
    ...     "tenant-a", rng.normal(size=(32, 8)), rng.normal(size=(32, 8))
    ... )
    >>> with server:
    ...     out = server.attend("tenant-a", rng.normal(size=8))
    >>> out.shape
    (8,)
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        backend_factory: Callable[[], AttentionBackend] | None = None,
    ):
        self.config = config or ServerConfig()
        # Cross-session fusion requires knowing the backend supports
        # ragged dispatch *before* any session exists — only the default
        # factory gives that guarantee (custom factories may hand back
        # anything satisfying the protocol).
        self._fusable = (
            backend_factory is None
            and self.config.engine == "vectorized"
            and self.config.cross_session_fusion
        )
        self._tier_configs = self.config.tier_configs()
        if backend_factory is None:
            cfg = self.config

            def backend_factory() -> ApproximateBackend:
                backend = ApproximateBackend(
                    cfg.approximation,
                    engine=cfg.engine,
                    rebuild_dirty_fraction=cfg.rebuild_dirty_fraction,
                )
                backend.stats.keep_traces = cfg.keep_selection_traces
                return backend
        self.cache = KeyCacheManager(
            backend_factory,
            capacity_bytes=self.config.cache_capacity_bytes,
            tier_configs=self._tier_configs,
            disk_capacity_bytes=self.config.cache_disk_capacity_bytes,
            spill_dir=self.config.cache_spill_dir,
        )
        self.stats = ServerStats(keep_batches=self.config.keep_batch_log)
        self.batcher = DynamicBatcher(self.config.batch)
        self.tracer = Tracer(
            sample_rate=self.config.trace_sample_rate,
            max_spans=self.config.trace_max_spans,
        )
        self.scheduler = Scheduler(
            self.batcher, self.cache, self.stats,
            num_workers=self.config.num_workers,
            tracer=self.tracer,
        )
        self._started = False
        self._stopped = False
        self._next_request_id = 0
        self._id_lock = threading.Lock()
        self._default_tier = self.config.default_tier
        self._service = None
        self._service_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AttentionServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.scheduler.start()
        return self

    def stop(self, timeout: float | None = 10.0, drain: bool = False) -> None:
        """Refuse new requests and stop the workers, deterministically.

        Shutdown semantics are explicit, not a race against thread-join
        timing.  After ``stop`` returns, **every request that was ever
        admitted has a resolved future**:

        * ``drain=False`` (default, reject) — requests still queued when
          the close lands fail with :class:`ServerClosedError`; batches
          a worker had already claimed are dispatched and resolve
          normally.
        * ``drain=True`` — the workers finish the whole backlog before
          exiting, so every admitted request resolves with its result
          (or its dispatch error).  Should the drain exceed ``timeout``,
          the remaining queue is converted to rejects — slow shutdown
          degrades to the reject semantics rather than leaving futures
          dangling.

        A ``submit`` racing with ``stop`` either lands before the close
        (and is served or rejected with the rest of the queue) or raises
        :class:`ServerClosedError` — there is no in-between.
        """
        if self._stopped:
            return
        self._stopped = True
        drained = self.batcher.close(drain=drain)
        self.scheduler.join(timeout)
        if drain and (self.scheduler.running or self.batcher.depth > 0):
            # Stop budget exceeded mid-drain — or there are no workers
            # to drain with (server never started): deterministically
            # reject whatever nobody claimed, rather than leaving the
            # futures dangling.
            drained = self.batcher.close()
        for request in drained:
            # resolve_request, not a bare set_exception: a worker
            # failing a poisoned batch (or a caller cancelling) can race
            # this loop, and the future must end up resolved exactly
            # once without the loser's InvalidStateError escaping stop().
            resolve_request(
                request,
                error=ServerClosedError("server stopped before dispatch"),
            )

    def __enter__(self) -> "AttentionServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    # ------------------------------------------------------------------
    # session registry
    # ------------------------------------------------------------------
    def register_session(
        self, session_id: str, key: np.ndarray, value: np.ndarray
    ) -> Session:
        """Register (or replace) a tenant's key/value memory."""
        return self.cache.register(session_id, key, value)

    def adopt_session(
        self, session_id: str, segment_name: str, fingerprint
    ) -> Session:
        """Register a session by adopting a shared-memory artifact
        segment by name — the zero-copy replication path.

        The segment (packed by :meth:`ApproximateBackend.export_artifact`
        with the value payload) was prepared once by the cluster front
        door; adopting it costs one attach plus an O(n d) fingerprint
        verification instead of re-sorting or unpickling full copies.
        This server never owns the segment: the handle is closed when
        the cached entry retires, and unlinking stays with the creator.
        """
        from repro.core.artifacts import ArtifactBuffer

        artifact = ArtifactBuffer.attach(segment_name)
        try:
            return self.cache.register_prepared(
                session_id, artifact, fingerprint
            )
        except Exception:
            artifact.close()
            raise

    def close_session(self, session_id: str) -> None:
        self.cache.close(session_id)

    def mutate_session(
        self, session_id: str, mutation: SessionMutation
    ) -> Session:
        """Apply one mutation to a session's memory, in place.

        The prepared cache entry survives (incremental splice + byte
        re-accounting instead of evict-and-recreate); see
        :meth:`KeyCacheManager.mutate` and the ordering contract in
        :mod:`repro.serve.mutator`.
        """
        return self.cache.mutate(session_id, mutation)

    def mutator(self, session_id: str) -> SessionMutator:
        """A :class:`~repro.serve.mutator.SessionMutator` handle bound
        to one registered session."""
        self.cache.get(session_id)  # fail fast on unknown sessions
        return SessionMutator(self, session_id)

    # ------------------------------------------------------------------
    # quality tiers
    # ------------------------------------------------------------------
    @property
    def default_tier(self) -> str:
        """The tier currently used for requests submitted without one."""
        return self._default_tier

    def set_default_tier(self, tier: str) -> str:
        """Move the live default tier (the SLO controller's lever).

        Only affects how *future* tier-less submissions resolve; queued
        requests keep the tier they were admitted at, and explicitly
        pinned requests are never touched.  Records the move in the
        stats' quality counters.  Returns the previous default.
        """
        tier_rank(tier)  # raises ConfigError on unknown tiers
        previous = self._default_tier
        if tier != previous:
            self._default_tier = tier
            self.stats.record_tier_change(previous, tier)
        return previous

    def _resolve_tier(self, tier: str | None) -> tuple[str, bool]:
        """Resolve a submission's tier → ``(effective, pinned)``."""
        if tier is None:
            return self._default_tier, False
        tier_rank(tier)  # raises ConfigError on unknown tiers
        return tier, True

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: str,
        query: np.ndarray,
        tier: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> AttentionRequest:
        """Enqueue one query; returns the request whose future resolves
        to the attended ``(d_v,)`` output row.

        ``tier`` pins the request to one quality tier; ``None`` (best
        effort) uses the server's current default, which an SLO
        controller may have degraded below the configured default —
        counted as a downgraded request when it has.

        ``trace_ctx`` is the cluster's trace-context propagation hook:
        when set (and tracing is enabled on this server), the request's
        root span parents under the context's span id instead of
        starting a fresh trace — how a spawn shard's spans link back to
        the cluster-side ``rpc`` span across the pipe.
        """
        if self._stopped:
            raise ServerClosedError("server is stopped")
        session = self.cache.get(session_id)
        query = session.validate_query(query)
        effective, pinned = self._resolve_tier(tier)
        span = None
        if self.tracer.enabled and (
            trace_ctx is not None or self.tracer.sample()
        ):
            span = self.tracer.start_span(
                "request",
                trace_id=trace_ctx.trace_id if trace_ctx else None,
                parent_id=trace_ctx.span_id if trace_ctx else None,
                attrs={"session": session_id, "tier": effective},
            )
        request = AttentionRequest(
            session_id=session_id, query=query, tier=effective, pinned=pinned,
            span=span, batch_key=self._batch_key(session, effective),
        )
        request.request_id = self._claim_request_id()
        try:
            self.batcher.submit(request)
        except ServerOverloadedError:
            self.stats.record_rejected()
            if span is not None:
                span.attrs["error"] = "ServerOverloadedError"
                self.tracer.record(span)
            raise
        self.stats.record_submitted(
            tier=effective,
            downgraded=(
                not pinned
                and tier_rank(effective) > tier_rank(self.config.default_tier)
            ),
        )
        return request

    def _batch_key(self, session: Session, tier: str) -> BatchKey:
        """The :class:`BatchKey` a submission is grouped under.

        Fusable servers stamp a *cross-session* key carrying the tier's
        effective config plus the session's query width and dtype — any
        mix of sessions agreeing on all three fuses into one ragged
        dispatch.  Everything else gets the conservative per-session
        key, which reproduces the historical single-session grouping
        exactly.
        """
        if self._fusable:
            fingerprint = self._tier_configs.get(tier)
            if fingerprint is not None:
                return BatchKey(
                    tier=tier,
                    fingerprint=fingerprint,
                    d=session.d,
                    dtype=str(session.key.dtype),
                )
        return BatchKey(tier=tier, session_id=session.session_id)

    def _claim_request_id(self) -> int:
        with self._id_lock:
            rid = self._next_request_id
            self._next_request_id += 1
        return rid

    def attend(
        self,
        session_id: str,
        query: np.ndarray,
        timeout: float | None = 30.0,
        tier: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> np.ndarray:
        """Submit one query and block until its output is ready."""
        return self.submit(
            session_id, query, tier=tier, trace_ctx=trace_ctx
        ).result(timeout)

    def attend_many(
        self,
        session_id: str,
        queries: np.ndarray,
        timeout: float | None = 30.0,
        tier: str | None = None,
        trace_ctx: TraceContext | None = None,
    ) -> np.ndarray:
        """Submit a caller-side batch as individual requests and gather.

        The requests flow through the same admission/batching path as
        everyone else's, so a large caller batch may be split (or fused
        with other callers' queries) according to the batch policy.
        Routed through :meth:`service` — the same op dispatch a network
        caller's frame lands in, so local and remote batches are one
        code path.
        """
        from repro.serve.service import AttendOp

        op = AttendOp(
            session_id=session_id,
            queries=np.asarray(queries),
            tier=tier,
            timeout=timeout,
        )
        return self.service().call(op, trace_ctx=trace_ctx).outputs

    def service(self):
        """This server's :class:`~repro.serve.service.AttentionService`
        — the transport-agnostic typed-op dispatch surface (cached)."""
        from repro.serve.service import AttentionService

        with self._service_lock:
            if self._service is None:
                self._service = AttentionService(self)
            return self._service

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable stats: serving, cache, and selection."""
        snapshot = self.stats.snapshot(
            cache_stats=self.cache.stats,
            backend=self.cache.merged_backend_stats(),
        )
        snapshot["default_tier"] = self._default_tier
        return snapshot

    def metrics_registry(self) -> MetricsRegistry:
        """A fresh :class:`~repro.serve.observability.MetricsRegistry`
        populated from this server's current state (pull-style: nothing
        extra is recorded on the request path)."""
        registry = MetricsRegistry()
        self.stats.publish_metrics(registry)
        self.cache.stats.publish_metrics(registry)
        self.cache.publish_metrics(registry)
        registry.gauge(
            "repro_serve_default_tier_info",
            "The server's live default tier (value 1 on the active tier).",
            labelnames=("tier",),
        ).labels(tier=self._default_tier).set(1)
        return registry

    def metrics_samples(self) -> list[dict]:
        """The metrics registry in picklable :meth:`MetricsRegistry.collect`
        form — the cluster merge path (including over the spawn pipe)."""
        return self.metrics_registry().collect()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the server's metrics."""
        return self.metrics_registry().expose()

    def trace_spans(self) -> list[dict]:
        """Drain and return the tracer's finished spans as dicts."""
        return self.tracer.drain()


class ServedBackend:
    """An :class:`AttentionBackend` whose attends go through a server.

    Binds one session id; the ``key``/``value`` arguments of the
    protocol are validated against the registered session — shape
    checks by default, plus a :class:`~repro.core.backends.KeyFingerprint`
    content check of the key with ``verify_content=True`` — rather than
    shipped with each request: the server owns the memory, so passing
    arrays that differ from the registration (beyond the checks'
    resolution) is an error on the caller's side, not an update.

    ``tier`` pins every request this adapter submits to one quality
    tier (``None`` rides the server's live default), so model code can
    be evaluated at an explicit operating point without knowing about
    the serving layer's degradation machinery.
    """

    def __init__(
        self,
        server: AttentionServer,
        session_id: str,
        timeout: float | None = 30.0,
        verify_content: bool = False,
        tier: str | None = None,
    ):
        self.server = server
        self.session_id = session_id
        self.timeout = timeout
        self.verify_content = verify_content
        self.tier = tier

    @property
    def name(self) -> str:
        return f"served:{self.session_id}"

    @property
    def stats(self):
        return self.server.cache.session_stats(self.session_id)

    def _check_key(self, key: np.ndarray) -> None:
        session = self.server.cache.get(self.session_id)
        if self.verify_content:
            if not session.fingerprint.matches(key):
                raise ConfigError(
                    f"key does not match session {self.session_id!r} "
                    "registration"
                )
        elif np.asarray(key).shape != session.key.shape:
            raise ConfigError(
                f"key shape {np.asarray(key).shape} does not match session "
                f"{self.session_id!r} registration {session.key.shape}"
            )

    def _check_value(self, value: np.ndarray) -> None:
        session = self.server.cache.get(self.session_id)
        if np.asarray(value).shape != session.value.shape:
            raise ConfigError(
                f"value shape {np.asarray(value).shape} does not match "
                f"session {self.session_id!r} registration "
                f"{session.value.shape}"
            )

    def prepare(self, key: np.ndarray) -> None:
        self._check_key(key)

    def attend(
        self, key: np.ndarray, value: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        self._check_key(key)
        self._check_value(value)
        return self.server.attend(
            self.session_id, query, timeout=self.timeout, tier=self.tier
        )

    def attend_many(
        self, key: np.ndarray, value: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        self._check_key(key)
        self._check_value(value)
        return self.server.attend_many(
            self.session_id, queries, timeout=self.timeout, tier=self.tier
        )
