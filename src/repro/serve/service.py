"""The transport-agnostic service core of the serving stack.

Until now every consumer of :class:`~repro.serve.server.AttentionServer`
and :class:`~repro.serve.cluster.ShardedAttentionServer` spoke to them
through their Python method surfaces.  That is fine in-process, but a
network front end (or any other transport) needs the request surface as
*data*: a closed vocabulary of picklable request dataclasses, one
response type per request, and a single dispatch entry point.  This
module is that vocabulary:

* the **ops** — :class:`AttendOp`, :class:`RegisterSessionOp`,
  :class:`CloseSessionOp`, :class:`MutateSessionOp`, :class:`SetTierOp`,
  :class:`SnapshotOp`, :class:`MetricsOp`, :class:`PingOp` — plain
  frozen dataclasses describing one request each.  Every field is
  picklable and wire-encodable (ndarrays, strings, typed
  :class:`~repro.serve.mutator.SessionMutation` records);
* the **results** — :class:`AttendResult`, :class:`SessionInfo`,
  :class:`TierResult`, :class:`SnapshotResult`, :class:`MetricsResult`,
  :class:`Pong` — equally plain dataclasses;
* :class:`AttentionService` — the one dispatch surface: ``call(op)``
  executes any op against the wrapped target (a single server or a
  sharded cluster) and returns its typed result, raising the serving
  layer's usual exceptions on failure.

**Local and remote callers are the same code path**: an in-process
caller builds an op and hands it to ``AttentionService.call``; a remote
caller builds the *same* op, the wire codec
(:mod:`repro.serve.protocol`) carries it to the
:class:`~repro.serve.frontend.NetworkFrontend`, and the frontend hands
it to the same ``AttentionService.call``.  ``AttentionServer.attend`` /
``attend_many`` themselves route through the service
(:meth:`AttentionServer.service`), so there is exactly one gather/
dispatch implementation to test, trace, and reason about.

The service also exposes the **asynchronous attend seam** the network
front end is built on: :meth:`AttentionService.submit_attend` returns a
:class:`concurrent.futures.Future` instead of blocking.  Against a
single server this feeds the queries straight into the existing
:class:`~repro.serve.batcher.DynamicBatcher` (each query is one
``server.submit``; the result future gathers the rows), so network
traffic batches and fuses with in-process traffic under the exact same
policy.  Against a cluster — whose request path is inherently blocking
RPC with failover — the blocking call runs on a small service-owned
thread pool.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.serve.mutator import SessionMutation
from repro.serve.request import resolve_request
from repro.serve.tracing import TraceContext

__all__ = [
    "AttendOp",
    "RegisterSessionOp",
    "CloseSessionOp",
    "MutateSessionOp",
    "SetTierOp",
    "SnapshotOp",
    "MetricsOp",
    "PingOp",
    "AttendResult",
    "SessionInfo",
    "TierResult",
    "SnapshotResult",
    "MetricsResult",
    "Pong",
    "AttentionService",
]


# ----------------------------------------------------------------------
# ops — one frozen dataclass per request type
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttendOp:
    """Attend ``queries`` (``(q, d)``) over one session's memory.

    ``tier`` pins the quality tier (``None`` rides the target's live
    default).  ``timeout`` bounds the blocking :meth:`AttentionService.call`
    path; the async :meth:`AttentionService.submit_attend` path leaves
    the patience to whoever consumes the future.
    """

    session_id: str
    queries: np.ndarray
    tier: str | None = None
    timeout: float | None = 30.0


@dataclass(frozen=True)
class RegisterSessionOp:
    """Register (or replace) a session's ``(key, value)`` memory."""

    session_id: str
    key: np.ndarray
    value: np.ndarray


@dataclass(frozen=True)
class CloseSessionOp:
    session_id: str


@dataclass(frozen=True)
class MutateSessionOp:
    """Apply one typed :class:`SessionMutation` to a session's memory."""

    session_id: str
    mutation: SessionMutation


@dataclass(frozen=True)
class SetTierOp:
    """Move the target's live default quality tier."""

    tier: str


@dataclass(frozen=True)
class SnapshotOp:
    pass


@dataclass(frozen=True)
class MetricsOp:
    """Prometheus text exposition of the target's metrics."""

    pass


@dataclass(frozen=True)
class PingOp:
    pass


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttendResult:
    """``(q, d_v)`` attended output rows, one per query."""

    outputs: np.ndarray


@dataclass(frozen=True)
class SessionInfo:
    """Shape record of a registered session (post-register/mutate)."""

    session_id: str
    n: int
    d: int
    d_v: int


@dataclass(frozen=True)
class TierResult:
    """The default tier that was in effect before a :class:`SetTierOp`."""

    previous: str


@dataclass(frozen=True)
class SnapshotResult:
    """The target's JSON-serializable telemetry snapshot."""

    snapshot: dict


@dataclass(frozen=True)
class MetricsResult:
    text: str


@dataclass(frozen=True)
class Pong:
    pass


def _gather_rows(futures: list) -> Future:
    """One future resolving to ``np.stack`` of many row futures.

    The first per-row failure fails the gather (matching the blocking
    ``attend_many`` semantics, where the first ``result()`` to raise
    propagates); remaining rows keep their own futures resolved by the
    scheduler, they just aren't waited on.
    """
    gathered: Future = Future()
    remaining = [len(futures)]
    lock = threading.Lock()
    rows: list = [None] * len(futures)

    def on_done(index: int, future) -> None:
        error = future.exception()
        if error is not None:
            if not gathered.done():
                try:
                    gathered.set_exception(error)
                except Exception:  # already resolved by a racing row
                    pass
            return
        rows[index] = future.result()
        with lock:
            remaining[0] -= 1
            finished = remaining[0] == 0
        if finished and not gathered.done():
            try:
                gathered.set_result(np.stack(rows))
            except Exception:  # already resolved by a racing row
                pass

    for index, future in enumerate(futures):
        future.add_done_callback(
            lambda f, index=index: on_done(index, f)
        )
    return gathered


class AttentionService:
    """Typed op dispatch over one serving target.

    Parameters
    ----------
    target:
        An :class:`~repro.serve.server.AttentionServer` or
        :class:`~repro.serve.cluster.ShardedAttentionServer` (anything
        with the shared session/attend/tier/telemetry surface works).
    max_dispatch_threads:
        Size of the fallback thread pool used by
        :meth:`submit_attend` when the target has no non-blocking
        submit path (clusters).  Lazily created.
    """

    def __init__(self, target, max_dispatch_threads: int = 8):
        self.target = target
        self._max_dispatch_threads = max_dispatch_threads
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # A single server exposes submit() returning a per-request
        # future — the seam that feeds the DynamicBatcher directly.
        self._can_submit = hasattr(target, "submit")

    # -- async attend seam ---------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_dispatch_threads,
                    thread_name_prefix="repro-service",
                )
            return self._pool

    def submit_attend(
        self, op: AttendOp, trace_ctx: TraceContext | None = None
    ) -> Future:
        """Begin one attend without blocking; resolves to
        :class:`AttendResult`.

        Single servers: each query row becomes one ``server.submit``
        (admission control, batching, and cross-session fusion apply
        exactly as for in-process traffic; ``trace_ctx`` parents each
        request's span tree under the remote caller's span).  Clusters:
        the blocking ``attend``/``attend_many`` runs on the service's
        thread pool, keeping the failover retry ladder intact.

        Backpressure rejects raise *synchronously* (the admission
        decision is immediate); dispatch failures resolve the future.
        """
        queries = np.asarray(op.queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[np.newaxis, :]
        if self._can_submit:
            requests = []
            try:
                for query in queries:
                    requests.append(
                        self.target.submit(
                            op.session_id,
                            query,
                            tier=op.tier,
                            trace_ctx=trace_ctx,
                        )
                    )
            except BaseException:
                # Partial admission: the already-queued rows dispatch
                # normally, but nobody will wait on them — fail them
                # now so the batch is all-or-nothing from the caller's
                # point of view and no future is left unobserved.
                for request in requests:
                    resolve_request(
                        request,
                        error=RuntimeError("sibling query was rejected"),
                    )
                raise
            gathered = _gather_rows([r.future for r in requests])
        else:
            kwargs = {"tier": op.tier}
            if trace_ctx is not None:
                # Clusters start their own cluster_request root span;
                # a remote caller's context is accepted when the target
                # supports parenting under it.
                kwargs["trace_ctx"] = trace_ctx
            gathered = self._executor().submit(
                self._blocking_attend, op.session_id, queries,
                op.timeout, kwargs,
            )
        result: Future = Future()

        def finish(future) -> None:
            error = future.exception()
            if error is not None:
                result.set_exception(error)
            else:
                outputs = future.result()
                if not isinstance(outputs, AttendResult):
                    outputs = AttendResult(outputs=np.asarray(outputs))
                result.set_result(outputs)

        gathered.add_done_callback(finish)
        return result

    def _blocking_attend(self, session_id, queries, timeout, kwargs):
        try:
            return self.target.attend_many(
                session_id, queries, timeout=timeout, **kwargs
            )
        except TypeError:
            if "trace_ctx" not in kwargs:
                raise
            # Target's attend_many has no trace hook: drop the context
            # rather than the request.
            kwargs = {k: v for k, v in kwargs.items() if k != "trace_ctx"}
            return self.target.attend_many(
                session_id, queries, timeout=timeout, **kwargs
            )

    # -- blocking dispatch ---------------------------------------------
    def call(self, op, trace_ctx: TraceContext | None = None):
        """Execute one op against the target and return its typed result.

        Raises whatever the target raises —
        :class:`~repro.serve.request.ServeError` subclasses,
        :class:`~repro.errors.ConfigError`/:class:`~repro.errors.ShapeError`
        on bad inputs — unchanged; transports map them to typed wire
        errors (:mod:`repro.serve.protocol`), not this layer.
        """
        if isinstance(op, AttendOp):
            return self.submit_attend(op, trace_ctx=trace_ctx).result(
                op.timeout
            )
        if isinstance(op, RegisterSessionOp):
            session = self.target.register_session(
                op.session_id, op.key, op.value
            )
            return _session_info(session)
        if isinstance(op, CloseSessionOp):
            self.target.close_session(op.session_id)
            return Pong()
        if isinstance(op, MutateSessionOp):
            session = self.target.mutate_session(op.session_id, op.mutation)
            return _session_info(session)
        if isinstance(op, SetTierOp):
            previous = self.target.set_default_tier(op.tier)
            return TierResult(previous=previous)
        if isinstance(op, SnapshotOp):
            return SnapshotResult(snapshot=self.target.snapshot())
        if isinstance(op, MetricsOp):
            return MetricsResult(text=self.target.metrics_text())
        if isinstance(op, PingOp):
            return Pong()
        raise TypeError(f"unknown service op {type(op).__name__}")

    def close(self) -> None:
        """Release the fallback dispatch pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)


def _session_info(session) -> SessionInfo:
    return SessionInfo(
        session_id=session.session_id,
        n=int(session.key.shape[0]),
        d=int(session.key.shape[1]),
        d_v=int(session.value.shape[1]),
    )
